#!/usr/bin/env python
"""Semi-matching vs hypergraph partitioning: quality for cost.

Reproduces the paper's novelty claim interactively: both balancers reach
near-lower-bound load balance, but the multilevel hypergraph partitioner
pays orders of magnitude more CPU for it — and the gap widens with task
count. Then both schedules are *executed* on the simulator to show the
end-to-end makespans agree.

Run:  python examples/balancer_showdown.py
"""

import time

from repro.api import ScfProblem, commodity_cluster, format_table, water_cluster
from repro.balance import (
    communication_volume,
    hypergraph_balancer,
    makespan_lower_bound,
    rank_loads,
    semi_matching_balancer,
)
from repro.exec_models import InspectorExecutor
from repro.runtime.garrays import BlockDistribution

N_RANKS = 64


def main() -> None:
    problem = ScfProblem.build(water_cluster(6, seed=0), block_size=6, tau=1.0e-9)
    graph = problem.graph
    dist = BlockDistribution(graph.blocks.n_blocks, N_RANKS)
    lower_bound = makespan_lower_bound(graph.costs, N_RANKS)
    print(f"{graph.n_tasks} tasks, P={N_RANKS}, load lower bound {lower_bound / 1e6:.1f} Mflop\n")

    rows = []
    assignments = {}
    for name, balancer in (
        ("semi_matching", semi_matching_balancer),
        ("hypergraph", hypergraph_balancer),
    ):
        start = time.perf_counter()
        assignment = balancer(graph, N_RANKS, dist)
        elapsed = time.perf_counter() - start
        assignments[name] = assignment
        loads = rank_loads(graph.costs, assignment, N_RANKS)
        rows.append(
            {
                "balancer": name,
                "balancer_time_s": elapsed,
                "max_load/LB": float(loads.max() / lower_bound),
                "comm_MB": communication_volume(graph, assignment, dist) / 1e6,
            }
        )
    print(format_table(rows, title="Balancer quality vs cost"))

    print("\nExecuting both schedules on the simulated cluster:")
    machine = commodity_cluster(N_RANKS)
    for name, assignment in assignments.items():
        model = InspectorExecutor(lambda g, p, d, a=assignment: a, name=f"inspector({name})")
        result = model.run(graph, machine, seed=0)
        print(
            f"  {name:14s} makespan = {result.makespan * 1e3:7.2f} ms, "
            f"utilization = {result.mean_utilization:.3f}"
        )
    ratio = rows[1]["balancer_time_s"] / rows[0]["balancer_time_s"]
    print(
        f"\nsame schedule quality, but the hypergraph partitioner cost "
        f"{ratio:.0f}x more CPU to compute."
    )


if __name__ == "__main__":
    main()
