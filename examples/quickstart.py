#!/usr/bin/env python
"""Quickstart: the whole stack in ~40 lines.

Builds a small water cluster, runs real Hartree-Fock SCF on it, then
replays the same Fock-build task graph through four execution models on a
simulated 64-rank cluster and prints the comparison — the paper's headline
experiment in miniature.

Run:  python examples/quickstart.py
"""

from repro.api import ScfProblem, StudyConfig, format_table, run_study, water_cluster


def main() -> None:
    # 1. A molecule and its Fock-build task graph.
    molecule = water_cluster(4, seed=0)
    problem = ScfProblem.build(molecule, block_size=6, tau=1.0e-10)
    summary = problem.graph.cost_summary()
    print(
        f"water_cluster(4): {problem.basis.n_basis} basis functions, "
        f"{problem.graph.n_tasks} Fock tasks, "
        f"cost skew cv={summary['cv']:.2f}"
    )

    # 2. Real chemistry: converge the SCF.
    from repro.api import run_scf

    scf = run_scf(molecule, problem=problem)
    print(
        f"SCF: E = {scf.energy:.6f} Ha, converged = {scf.converged} "
        f"in {scf.n_iterations} iterations\n"
    )

    # 3. The execution-model study on a simulated 64-rank cluster.
    config = StudyConfig(
        models=("static_block", "static_cyclic", "counter_dynamic", "work_stealing"),
        n_ranks=(64,),
        seed=0,
    )
    report = run_study(config, problem)
    print(
        format_table(
            report.rows(),
            columns=["model", "P", "makespan_ms", "speedup", "utilization", "imbalance"],
            title="Execution models on a simulated 64-rank cluster",
        )
    )
    gain = report.improvement("work_stealing", "static_block", 64)
    print(f"\nwork stealing vs static block: {gain:.2f}x  (paper reports ~1.5x)")


if __name__ == "__main__":
    main()
