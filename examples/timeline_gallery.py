#!/usr/bin/env python
"""Execution timelines: *see* what each execution model does with a machine.

Renders ASCII Gantt charts (one row per rank: # compute, - comm,
o overhead, . idle) for four execution models on the same workload, plus
the task-cost histogram that causes it all, and a numerical validation of
one simulated schedule against the real kernel.

Run:  python examples/timeline_gallery.py
"""

from repro.analysis import ascii_gantt, ascii_histogram, cost_statistics
from repro.api import ScfProblem, commodity_cluster, run_model, water_cluster
from repro.core import validate_run

N_RANKS = 16
MODELS = ("static_block", "static_cyclic", "counter_dynamic", "work_stealing")


def main() -> None:
    problem = ScfProblem.build(water_cluster(4, seed=0), block_size=5, tau=1.0e-10)
    graph = problem.graph
    stats = cost_statistics(graph.costs)
    print(
        f"{graph.n_tasks} tasks; cost gini {stats['gini']:.2f}, "
        f"top-10% of tasks carry {100 * stats['top10_share']:.0f}% of the work\n"
    )
    print("task-cost distribution (flops, log bins):")
    print(ascii_histogram(graph.costs, bins=8, width=40))
    print()

    machine = commodity_cluster(N_RANKS)
    last = None
    for model_name in MODELS:
        result = run_model(model_name, graph, machine, seed=1, trace_intervals=True)
        print(ascii_gantt(result, width=72))
        print()
        last = result

    report = validate_run(problem, last)
    print(
        f"numerical validation of the {last.model} schedule: "
        f"max |error| = {report.max_abs_error:.2e} "
        f"({'PASS' if report.passed else 'FAIL'})"
    )


if __name__ == "__main__":
    main()
