#!/usr/bin/env python
"""Real chemistry end to end: STO-3G water via McMurchie-Davidson.

Converges RHF/STO-3G for a water molecule with DIIS (checking the energy
against the literature value), then runs the execution-model study on a
3-water STO-3G task graph — the full paper pipeline on a genuine s+p
basis instead of the fast s-only surrogate.

Run:  python examples/sto3g_study.py
"""

from repro.analysis import cost_statistics
from repro.api import (
    ScfProblem,
    StudyConfig,
    format_table,
    run_scf,
    run_study,
    water_cluster,
)


def main() -> None:
    # 1. Literature-anchored SCF.
    mol = water_cluster(1)
    problem = ScfProblem.build(mol, block_size=4, tau=0.0, basis_set="sto-3g")
    result = run_scf(mol, problem=problem, accelerator="diis")
    print(
        f"RHF/STO-3G water: E = {result.energy:.6f} Ha in {result.n_iterations} "
        f"DIIS iterations (literature ~ -74.963 at this geometry)"
    )

    # 2. The scheduling study on an s+p workload.
    cluster = water_cluster(3, seed=0)
    study_problem = ScfProblem.build(cluster, block_size=4, tau=1.0e-10, basis_set="sto-3g")
    stats = cost_statistics(study_problem.graph.costs)
    print(
        f"\nwater_cluster(3)/STO-3G: {study_problem.basis.n_basis} basis functions "
        f"({sum(1 for sh in study_problem.basis.shells if sh.angular_momentum > 0)} p components), "
        f"{study_problem.graph.n_tasks} tasks, cost cv = {stats['cv']:.2f}"
    )
    config = StudyConfig(
        models=("static_block", "static_cyclic", "counter_dynamic", "work_stealing"),
        n_ranks=(16, 64),
        seed=0,
    )
    report = run_study(config, study_problem)
    print(
        format_table(
            report.rows(),
            columns=["model", "P", "makespan_ms", "speedup", "utilization", "imbalance"],
            title="Execution models on the STO-3G workload",
        )
    )
    print(
        f"\nwork stealing vs static block @64: "
        f"{report.improvement('work_stealing', 'static_block', 64):.2f}x"
    )


if __name__ == "__main__":
    main()
