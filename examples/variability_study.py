#!/usr/bin/env python
"""Energy-induced performance variability: who survives slow ranks?

Slows a growing fraction of the simulated machine and measures how each
execution model degrades — the paper's closing argument for dynamic
execution models on "emerging dynamic platforms with energy-induced
performance variability". Also shows persistence-based rebalancing
adapting over SCF iterations on a statically heterogeneous machine.

Run:  python examples/variability_study.py
"""

from repro.api import ScfProblem, commodity_cluster, format_table, run_model, water_cluster
from repro.exec_models import run_persistence
from repro.simulate import RandomStaticVariability, StaticHeterogeneity

N_RANKS = 64
MODELS = ("static_cyclic", "counter_dynamic", "work_stealing")


def main() -> None:
    problem = ScfProblem.build(water_cluster(6, seed=0), block_size=6, tau=1.0e-10)
    graph = problem.graph
    print(f"workload: {graph.n_tasks} tasks on {N_RANKS} simulated ranks\n")

    # Part 1: slow an eighth of the machine, harder and harder.
    rows = []
    baseline = {}
    for factor in (1.0, 0.67, 0.5, 0.33):
        variability = None if factor == 1.0 else StaticHeterogeneity(range(8), factor)
        machine = commodity_cluster(N_RANKS, variability=variability)
        row = {"slow_factor": factor}
        for model_name in MODELS:
            result = run_model(model_name, graph, machine, seed=7)
            if factor == 1.0:
                baseline[model_name] = result.makespan
            row[model_name + "_deg"] = result.makespan / baseline[model_name]
        rows.append(row)
    print(
        format_table(
            rows,
            title="Degradation vs slowdown of 8/64 ranks (1.0 = no slowdown)",
        )
    )

    # Part 2: persistence-based rebalancing learns the heterogeneity.
    machine = commodity_cluster(
        N_RANKS, variability=RandomStaticVariability(N_RANKS, sigma=0.35, seed=4)
    )
    history = run_persistence(graph, machine, n_iterations=5, seed=0)
    print("\nPersistence-based rebalancing on a lognormal-heterogeneous machine:")
    for i, result in enumerate(history.results, start=1):
        bar = "#" * int(result.makespan / history.results[0].makespan * 40)
        print(f"  iter {i}: {result.makespan * 1e3:7.2f} ms  {bar}")
    print(f"  steady-state improvement: {history.improvement:.2f}x over iteration 1")


if __name__ == "__main__":
    main()
