#!/usr/bin/env python
"""Real parallel SCF on the host: thread-pool Fock builds.

Runs the same SCF three times — serial, shared-counter threads, and
work-stealing threads — and verifies all three converge to the same
energy, printing per-build scheduling statistics. This is the
"is any of this real?" demo: actual concurrent task claiming on your CPU,
same kernels as the simulator studies.

Run:  python examples/scf_parallel.py [n_waters] [n_workers]
"""

import sys

from repro.api import ScfProblem, run_scf, water_cluster
from repro.parallel import SharedMemoryFockBuilder


def main() -> None:
    n_waters = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    n_workers = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    molecule = water_cluster(n_waters, seed=1)
    problem = ScfProblem.build(molecule, block_size=5, tau=1.0e-10)
    print(
        f"water_cluster({n_waters}): {problem.basis.n_basis} basis functions, "
        f"{problem.graph.n_tasks} tasks, {n_workers} worker threads\n"
    )

    results = {}
    for mode in ("serial", "counter", "stealing"):
        if mode == "serial":
            scf = run_scf(molecule, problem=problem)
            print(f"{mode:10s} E = {scf.energy:.10f} Ha ({scf.n_iterations} iters)")
        else:
            builder = SharedMemoryFockBuilder(problem, n_workers=n_workers, mode=mode)
            scf = run_scf(molecule, problem=problem, g_builder=builder.build)
            stats = builder.last_stats
            print(
                f"{mode:10s} E = {scf.energy:.10f} Ha ({scf.n_iterations} iters)  "
                f"last build: {stats.wall_seconds * 1e3:.0f} ms, "
                f"tasks/worker = {stats.tasks_per_worker}, steals = {stats.steals}"
            )
        results[mode] = scf.energy

    spread = max(results.values()) - min(results.values())
    print(f"\nmax energy spread across schedulers: {spread:.2e} Ha")
    assert spread < 1e-8, "schedulers disagreed on the energy!"
    print("all schedulers agree: scheduling changes *when*, never *what*.")


if __name__ == "__main__":
    main()
