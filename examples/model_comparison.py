#!/usr/bin/env python
"""Full execution-model comparison with configurable workload and scale.

The paper's Figure-1-style sweep as a command-line tool: pick a molecule
family, rank counts, and models; get the makespan/utilization table and
the improvement ratios.

Run:
  python examples/model_comparison.py
  python examples/model_comparison.py --molecule alkane --size 10 --ranks 32 128 512
  python examples/model_comparison.py --models static_block work_stealing persistence
"""

import argparse

from repro.api import (
    MODEL_NAMES,
    ScfProblem,
    StudyConfig,
    default_cache_dir,
    format_table,
    linear_alkane,
    print_progress,
    sweep,
    water_cluster,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--molecule", choices=("water", "alkane"), default="water",
        help="workload family: compact 3-D water cluster or quasi-1-D alkane",
    )
    parser.add_argument("--size", type=int, default=6, help="monomers / carbons")
    parser.add_argument("--block-size", type=int, default=6, help="task block size")
    parser.add_argument("--tau", type=float, default=1.0e-10, help="screening tolerance")
    parser.add_argument(
        "--ranks", type=int, nargs="+", default=[16, 64, 256], help="rank counts"
    )
    parser.add_argument(
        "--models", nargs="+",
        default=["static_block", "static_cyclic", "counter_dynamic", "work_stealing"],
        choices=MODEL_NAMES, metavar="MODEL",
        help=f"execution models; choices: {', '.join(MODEL_NAMES)}",
    )
    parser.add_argument("--machine", choices=("commodity", "fast_network"), default="commodity")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep (default: serial)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="reuse/store cell results in the shared result cache",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    molecule = (
        water_cluster(args.size, seed=args.seed)
        if args.molecule == "water"
        else linear_alkane(args.size)
    )
    problem = ScfProblem.build(molecule, block_size=args.block_size, tau=args.tau)
    summary = problem.graph.cost_summary()
    print(
        f"{args.molecule}({args.size}): {problem.basis.n_basis} basis functions, "
        f"{problem.graph.n_tasks} tasks, cv={summary['cv']:.2f}, "
        f"total {summary['total'] / 1e9:.2f} Gflop\n"
    )

    config = StudyConfig(
        models=tuple(args.models),
        n_ranks=tuple(args.ranks),
        machine=args.machine,
        seed=args.seed,
    )
    report = sweep(
        config,
        problem,
        jobs=args.jobs,
        cache=default_cache_dir() if args.cache else None,
        progress=print_progress if args.jobs > 1 or args.cache else None,
    )
    print(format_table(report.rows(), title="Execution-model comparison"))

    if "static_block" in args.models:
        # Registry names can differ from result names (configured variants
        # self-describe); compare by the result names the report holds.
        print("\nImprovement over static_block:")
        for p in args.ranks:
            static = report.get("static_block", p).makespan
            for name in report.models:
                if name == "static_block":
                    continue
                ratio = static / report.get(name, p).makespan
                print(f"  P={p:4d}  {name:28s} {ratio:5.2f}x")


if __name__ == "__main__":
    main()
