"""Legacy-path shim so ``pip install -e .`` works without the ``wheel``
package (PEP 660 editable installs need it; air-gapped environments often
lack it). All metadata lives in pyproject.toml.

When a C toolchain is present, the optional engine core
(``repro.simulate._engine_core``) is compiled at install time so
``REPRO_ENGINE=auto`` starts fast without a runtime build. The extension
is strictly optional: any build failure falls back to a pure-Python
install (the engine then builds the core lazily at runtime, or degrades
to the pure-Python loop — results are identical either way).
"""

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class _OptionalBuildExt(build_ext):
    """Build the engine core if possible; never fail the install."""

    def run(self):
        try:
            super().run()
        except Exception:
            pass

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception:
            pass


setup(
    ext_modules=[
        Extension(
            "repro.simulate._engine_core",
            sources=["src/repro/simulate/_engine_core.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": _OptionalBuildExt},
)
