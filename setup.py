"""Legacy-path shim so ``pip install -e .`` works without the ``wheel``
package (PEP 660 editable installs need it; air-gapped environments often
lack it). All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
