"""Small argument-validation helpers.

These raise :class:`~repro.util.errors.ConfigurationError` (a ``ValueError``
subclass) with uniform messages, so error text in this library stays
consistent and tests can assert on it.
"""

from __future__ import annotations

from collections.abc import Container
from typing import Any

from repro.util.errors import ConfigurationError


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if it is strictly positive, else raise."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if it is >= 0, else raise."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Return ``value`` if it lies in [0, 1], else raise."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in(name: str, value: Any, allowed: Container[Any]) -> Any:
    """Return ``value`` if it is a member of ``allowed``, else raise."""
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
