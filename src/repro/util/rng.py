"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (victim selection in work
stealing, variability injection, synthetic workload generation) takes an
explicit seed and derives independent streams through
:func:`numpy.random.SeedSequence` spawning. Two helpers keep that uniform:

``derive_seed(seed, *keys)``
    Hash a root seed together with string/int keys into a new 64-bit seed.
    Used where a plain integer seed must be handed to a subcomponent.

``spawn_rng(seed, *keys)``
    Same derivation, but returns a ready :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import zlib

import numpy as np


def derive_seed(seed: int, *keys: int | str) -> int:
    """Derive a child seed from ``seed`` and a path of keys.

    The derivation is stable across processes and Python versions: string
    keys are folded in via CRC32 rather than ``hash()`` (which is salted).
    """
    entropy: list[int] = [int(seed) & 0xFFFFFFFFFFFFFFFF]
    for key in keys:
        if isinstance(key, str):
            entropy.append(zlib.crc32(key.encode("utf-8")))
        else:
            entropy.append(int(key) & 0xFFFFFFFFFFFFFFFF)
    seq = np.random.SeedSequence(entropy)
    return int(seq.generate_state(1, dtype=np.uint64)[0])


def spawn_rng(seed: int, *keys: int | str) -> np.random.Generator:
    """Return an independent :class:`numpy.random.Generator` for a path."""
    return np.random.default_rng(derive_seed(seed, *keys))
