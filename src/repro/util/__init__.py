"""Shared utilities: error types, validation, deterministic RNG helpers."""

from repro.util.errors import (
    ReproError,
    ConfigurationError,
    SimulationError,
    SchedulingError,
    PartitionError,
    RankFailedError,
)
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in,
)
from repro.util.rng import spawn_rng, derive_seed

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SchedulingError",
    "PartitionError",
    "RankFailedError",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in",
    "spawn_rng",
    "derive_seed",
]
