"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base type. Subclasses partition failures by subsystem: configuration,
simulation engine, scheduling/execution models, and partitioning/balancing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A user-supplied parameter or configuration object is invalid."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class SchedulingError(ReproError, RuntimeError):
    """An execution model violated a scheduling invariant.

    Examples: a task executed twice, a task never executed, or an
    execution model finished while work remained queued.
    """


class PartitionError(ReproError, RuntimeError):
    """A load balancer or partitioner produced an invalid assignment."""


class RankFailedError(ReproError, RuntimeError):
    """A communication operation targeted a crashed rank.

    Raised by the network layer after the operation's timeout elapses;
    fault-tolerant execution models catch it (on-contact failure
    detection) and re-route, while non-tolerant models let it propagate
    and abort the run. ``rank`` identifies the dead target.
    """

    def __init__(self, rank: int, operation: str = "operation") -> None:
        super().__init__(f"{operation} targeted failed rank {rank}")
        self.rank = int(rank)
        self.operation = operation
