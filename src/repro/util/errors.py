"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base type. Subclasses partition failures by subsystem: configuration,
simulation engine, scheduling/execution models, and partitioning/balancing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A user-supplied parameter or configuration object is invalid."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class SchedulingError(ReproError, RuntimeError):
    """An execution model violated a scheduling invariant.

    Examples: a task executed twice, a task never executed, or an
    execution model finished while work remained queued.
    """


class PartitionError(ReproError, RuntimeError):
    """A load balancer or partitioner produced an invalid assignment."""
