"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``info``     — library/version/model/preset inventory.
- ``study``    — run an execution-model sweep on a generated molecule.
- ``scf``      — converge an SCF and report the energy.
- ``validate`` — simulate one model and numerically validate its schedule.
- ``workload`` — build a task graph and print its cost-distribution report.
- ``bench``    — run the perf microbenchmarks, emit ``BENCH_*.json``.
- ``profile``  — cProfile a study and print the top-N hotspots.
- ``chaos``    — inject real host faults into a sweep and verify recovery.
- ``worker``   — join a distributed sweep fabric as a leased TCP worker.
- ``serve``    — run the persistent study daemon (HTTP job API).
- ``submit``   — submit a study to a running daemon, watch it, fetch rows.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro import __version__


def _add_molecule_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--molecule", choices=("water", "alkane"), default="water",
        help="workload family (default: water)",
    )
    parser.add_argument("--size", type=int, default=4, help="monomers / carbons")
    parser.add_argument("--block-size", type=int, default=6)
    parser.add_argument("--tau", type=float, default=1.0e-10)
    parser.add_argument("--seed", type=int, default=0)


def _build_molecule(args: argparse.Namespace):
    from repro import linear_alkane, water_cluster

    if args.molecule == "water":
        return water_cluster(args.size, seed=args.seed)
    return linear_alkane(args.size)


def cmd_info(args: argparse.Namespace) -> int:
    from repro.core import MACHINE_PRESETS
    from repro.exec_models import MODEL_NAMES

    print(f"repro {__version__} — execution-model case study (IPDPSW'15 reproduction)")
    print(f"\nexecution models ({len(MODEL_NAMES)}):")
    for name in MODEL_NAMES:
        print(f"  {name}")
    print(f"\nmachine presets: {', '.join(MACHINE_PRESETS)}")
    print("\nexperiments: pytest benchmarks/ --benchmark-only   (tables in benchmarks/results/)")
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    from repro import api

    # Every surface (this CLI, the HTTP service, api.run_job callers)
    # reduces to one validated JobSpec, so e.g. the --jobs/--executor
    # interplay rules are checked here instead of failing obscurely
    # inside a backend.
    try:
        spec = api.JobSpec.from_cli_args(args).validate()
    except api.JobSpecError as exc:
        print(f"error: {exc.field}: {exc.reason}", file=sys.stderr)
        return 2
    if args.resume and not spec.cache:
        print("error: --resume needs the cache (drop --no-cache)", file=sys.stderr)
        return 2
    cache = (spec.cache_dir or api.default_cache_dir()) if spec.cache else None
    # Configure the artifact store before the problem builds: screening,
    # task-graph, and balancer intermediates all route through it.
    if not spec.artifact_cache:
        api.configure_artifacts(enabled=False)
    elif cache is not None:
        api.configure_artifacts(pathlib.Path(cache) / "artifacts")
    problem = spec.source.build()
    print(
        f"{args.molecule}({args.size}): {problem.basis.n_basis} basis functions, "
        f"{problem.graph.n_tasks} tasks"
    )
    if spec.faults:
        scale = spec.fault_time_scale(problem)
        print(f"fault plan: {spec.faults} (time scale {scale * 1e3:.3f} ms)")
    progress = api.print_progress if args.progress else None
    executor = None
    if api.parse_executor_spec(spec.executor)[0] == "distributed":
        # Construct the fabric here so its endpoint can be printed
        # before the sweep blocks waiting for workers.
        executor = api.make_executor(spec.executor)
        host, port = executor.endpoint
        print(
            f"distributed fabric listening on {host}:{port} — attach workers "
            f"with: python -m repro worker --connect {host}:{port}"
        )
    try:
        report = api.run_job(
            spec,
            source=problem,
            executor=executor,
            progress=progress,
            resume=args.resume,
        )
    finally:
        if executor is not None:
            executor.close()
    print(api.format_table(report.rows(), title="study results"))
    if cache is not None:
        reused = sum(
            1 for p in report.provenance.values() if p in ("cached", "resumed")
        )
        print(f"cache: {reused}/{len(report.provenance)} cells reused from {cache}")
    if report.failures:
        print()
        print(api.format_failures(report.failures))
        print(
            f"{len(report.failures)} cell(s) quarantined; results above are partial",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_scf(args: argparse.Namespace) -> int:
    from repro import run_scf
    from repro.chemistry import ScfProblem
    from repro.parallel import SharedMemoryFockBuilder

    problem = ScfProblem.build(
        _build_molecule(args), block_size=args.block_size, tau=args.tau
    )
    g_builder = None
    if args.workers > 1:
        builder = SharedMemoryFockBuilder(
            problem, n_workers=args.workers, mode=args.backend
        )
        g_builder = builder.build
    result = run_scf(problem.molecule, problem=problem, g_builder=g_builder)
    status = "converged" if result.converged else "NOT converged"
    print(
        f"E = {result.energy:.10f} Ha  ({status} in {result.n_iterations} iterations, "
        f"E_nuc = {result.nuclear_repulsion:.6f})"
    )
    return 0 if result.converged else 1


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.chemistry import ScfProblem
    from repro.core import MACHINE_PRESETS, validate_run
    from repro.exec_models import make_model

    problem = ScfProblem.build(
        _build_molecule(args), block_size=args.block_size, tau=args.tau
    )
    machine = MACHINE_PRESETS[args.machine](args.ranks[0])
    result = make_model(args.model).run(problem.graph, machine, seed=args.seed)
    report = validate_run(problem, result)
    print(
        f"{result.model} on P={result.n_ranks}: makespan {result.makespan * 1e3:.3f} ms, "
        f"utilization {result.mean_utilization:.3f}"
    )
    print(
        f"numerical validation: max |error| = {report.max_abs_error:.3e} "
        f"(scale {report.reference_scale:.3e}) -> {'PASS' if report.passed else 'FAIL'}"
    )
    return 0 if report.passed else 1


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.analysis import ascii_histogram, cost_statistics
    from repro.chemistry import ScfProblem

    problem = ScfProblem.build(
        _build_molecule(args), block_size=args.block_size, tau=args.tau
    )
    graph = problem.graph
    stats = cost_statistics(graph.costs)
    print(
        f"{args.molecule}({args.size}), block_size={args.block_size}, tau={args.tau:g}: "
        f"{graph.n_tasks} tasks"
    )
    for key in ("mean", "median", "max", "cv", "gini", "top10_share"):
        print(f"  {key:12s} {stats[key]:.4g}")
    print("\ncost distribution (flops, log bins):")
    print(ascii_histogram(graph.costs, bins=10, width=44))
    return 0


#: Canned workloads for ``python -m repro profile <study>``.
_PROFILE_PRESETS: dict[str, dict] = {
    # One hot cell: enough events to dominate profile noise, done in seconds.
    "quick": {"size": 4, "models": ("work_stealing",), "ranks": (16,)},
    # The full E1 sweep (the headline experiment): slower, complete picture.
    "e1": {
        "size": 8,
        "models": ("static_block", "static_cyclic", "counter_dynamic", "work_stealing"),
        "ranks": (16, 64, 256),
    },
}


def cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    from repro import api, water_cluster

    preset = _PROFILE_PRESETS[args.study]
    problem = api.ScfProblem.build(
        water_cluster(preset["size"], seed=0), block_size=6, tau=1.0e-10
    )
    config = api.StudyConfig(
        models=preset["models"], n_ranks=preset["ranks"], seed=args.seed
    )
    print(
        f"profiling study {args.study!r}: {len(preset['models'])} model(s) x "
        f"ranks {preset['ranks']} on water_cluster({preset['size']}) "
        f"({problem.graph.n_tasks} tasks)"
    )
    if args.counters:
        report = api.sweep(config, problem, jobs=1, cache=None)
        _print_hotpath_counters(report)
        return 0
    profiler = cProfile.Profile()
    profiler.enable()
    api.sweep(config, problem, jobs=1, cache=None)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    if args.output:
        stats.dump_stats(args.output)
        print(f"full profile written to {args.output} (open with pstats/snakeviz)")
    return 0


def _print_hotpath_counters(report) -> None:
    """Per-cell hot-path volume table (``profile --counters``).

    Reports where the generator-free fast paths engage: Timeout requests
    consumed by the resume fast path (all freelist-recycled), resource
    grants delivered without a callback frame, and traced network ops
    served from the fused cost tables instead of generator frames. These
    are deterministic volumes, not timings — identical across engines and
    hosts for a given workload/seed.
    """
    header = (
        f"{'model':24s} {'ranks':>5s} {'sim_events':>11s} {'timeouts':>9s} "
        f"{'grants':>8s} {'fused_ops':>9s} {'gen_frames_avoided':>18s}"
    )
    print("\nhot-path counters (deterministic volumes, not timings):")
    print(header)
    for (model, n_ranks), result in sorted(report.results.items()):
        # Every fused op replaces one traced-op generator frame; every
        # fast-pathed Timeout/grant resume skips a Python frame too.
        avoided = result.fused_ops + result.timeout_allocs + result.grant_resumes
        print(
            f"{model:24s} {n_ranks:5d} {result.sim_events:11d} "
            f"{result.timeout_allocs:9d} {result.grant_resumes:8d} "
            f"{result.fused_ops:9d} {avoided:18d}"
        )


def cmd_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro import perf

    exit_code = 0
    for suite in args.suites:
        print(f"bench suite {suite!r} (median of {args.repeats}):")
        report = perf.run_suite(suite, repeats=args.repeats, progress=print)
        out = Path(args.output_dir) / f"BENCH_{suite}.json"
        perf.write_report(report, out)
        print(f"  -> {out}")
        # Also drop a copy at the repo root: the latest local run sits
        # next to README.md while benchmarks/results/ keeps the
        # committed baselines the regression gate compares against.
        root_out = Path.cwd() / f"BENCH_{suite}.json"
        if root_out.resolve() != out.resolve():
            perf.write_report(report, root_out)
            print(f"  -> {root_out}")
        if args.baseline_dir is not None:
            base_path = Path(args.baseline_dir) / f"BENCH_{suite}.json"
            if not base_path.exists():
                print(f"  no baseline at {base_path}; skipping regression check")
                continue
            baseline = json.loads(base_path.read_text())
            failures = perf.check_regression(
                report, baseline, max_regression=args.max_regression
            )
            for failure in failures:
                print(f"  REGRESSION: {failure}")
            if failures:
                exit_code = 1
            else:
                print(
                    f"  throughput within {args.max_regression:.0%} of baseline "
                    f"({baseline['git_sha'][:12]})"
                )
    return exit_code


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import run_chaos

    report = run_chaos(
        quick=args.quick,
        jobs=args.jobs,
        seed=args.seed,
        workdir=args.workdir,
        timeout=args.timeout,
        log=print,
    )
    if args.distributed:
        from repro.chaos.distributed import run_distributed_chaos

        dist_report = run_distributed_chaos(
            quick=args.quick,
            seed=args.seed,
            workdir=args.workdir,
            log=print,
        )
        report.scenarios.extend(dist_report.scenarios)
    if args.service:
        from repro.chaos.service import run_service_chaos

        svc_report = run_service_chaos(
            quick=args.quick,
            seed=args.seed,
            workdir=args.workdir,
            log=print,
        )
        report.scenarios.extend(svc_report.scenarios)
    print()
    print(report.format())
    return 0 if report.passed else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro import api
    from repro.service import (
        BackendRouter,
        JobManager,
        RetentionPolicy,
        StudyService,
    )

    fabric = None
    if args.fabric:
        fabric = api.DistributedExecutor(bind=args.fabric, lease=args.lease)
        host, port = fabric.endpoint
        print(
            f"distributed fabric listening on {host}:{port} — attach workers "
            f"with: python -m repro worker --connect {host}:{port}"
        )
    try:
        router = BackendRouter(args.executor, fabric=fabric)
        manager = JobManager(
            args.state_dir,
            router=router,
            max_queued=args.max_queued,
            capacity=args.capacity,
            workers=args.workers,
            log=print,
        )
        retention = (
            RetentionPolicy(ttl_s=args.ttl, interval_s=args.gc_interval)
            if args.ttl is not None
            else None
        )
        service = StudyService(
            args.state_dir,
            bind=args.bind,
            manager=manager,
            verbose=args.verbose,
            retention=retention,
        )
    except api.JobSpecError as exc:
        print(f"error: {exc.field}: {exc.reason}", file=sys.stderr)
        if fabric is not None:
            fabric.close()
        return 2
    host, port = service.endpoint
    print(f"repro service listening on http://{host}:{port} (state: {args.state_dir})")
    print(
        f"submit a study:  curl -s -X POST http://{host}:{port}/v1/jobs "
        "-d '{\"models\": [\"work_stealing\"], \"ranks\": [16]}'"
    )

    # SIGTERM = graceful drain: keep answering HTTP (new submits 503
    # with Retry-After) while running jobs finish or checkpoint within
    # the grace budget, then exit cleanly — the restart resumes queued
    # and checkpointed jobs from their journals. The drain runs on a
    # helper thread so the accept loop keeps serving the 503s.
    def _drain_then_exit() -> None:
        print(f"SIGTERM: draining (grace {args.drain_grace:.1f}s)")
        service.drain(args.drain_grace)
        service.httpd.shutdown()

    def _on_sigterm(signum, frame):  # noqa: ARG001 - signal signature
        threading.Thread(
            target=_drain_then_exit, name="repro-drain", daemon=True
        ).start()

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        service.serve_forever()
    finally:
        signal.signal(signal.SIGTERM, previous)
        if fabric is not None:
            fabric.close()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.core.jobspec import JobSpec, JobSpecError, SourceSpec
    from repro.parallel.fabric import parse_endpoint
    from repro.service.client import ServiceClient, ServiceError

    host, port = parse_endpoint(args.connect)
    try:
        if args.spec:
            text = args.spec
            if text.startswith("@"):
                text = pathlib.Path(text[1:]).read_text(encoding="utf-8")
            spec = JobSpec.from_json(text)
        else:
            spec = JobSpec(
                source=SourceSpec(
                    molecule=args.molecule,
                    size=args.size,
                    block_size=args.block_size,
                    tau=args.tau,
                    seed=args.seed,
                ),
                models=tuple(args.models),
                ranks=tuple(args.ranks),
                machine=args.machine,
                seed=args.seed,
                faults=args.faults or "",
                executor=args.executor,
                engine=args.engine,
                jobs=args.jobs,
                timeout=args.timeout,
                deadline_s=args.deadline,
                max_attempts=args.max_attempts,
            )
        # "auto" is service-side vocabulary (the daemon's router resolves
        # it); validate the rest of the spec against a neutral backend so
        # field errors still fail fast client-side.
        check = spec
        if spec.executor == "auto":
            check = spec.with_overrides(executor="local")
        check.validate()
    except (JobSpecError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client = ServiceClient(
        host,
        port,
        max_retries=args.retries,
        log=print if args.verbose else None,
    )
    try:
        accepted = client.submit(spec)
        job_id = accepted["job_id"]
        note = " (deduped)" if accepted.get("deduped") else ""
        print(
            f"job {job_id[:12]} {accepted['status']}{note} "
            f"[{client.retries} retr(ies)]",
            file=sys.stderr,
        )
        if not args.watch:
            print(job_id)
            return 0
        snapshot = client.wait(job_id, timeout=args.wait_timeout)
        for row in client.stream_rows(job_id):
            print(json.dumps(row, sort_keys=True))
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted (the job keeps running)", file=sys.stderr)
        return 130
    status = snapshot.get("status")
    if status != "done":
        print(
            f"job {job_id[:12]} {status}: {snapshot.get('error', '')}",
            file=sys.stderr,
        )
        return 1
    progress = snapshot.get("progress", {})
    print(
        f"job {job_id[:12]} done: {progress.get('completed', 0)} cell(s), "
        f"{progress.get('cached', 0)} cached",
        file=sys.stderr,
    )
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.parallel.fabric import parse_endpoint
    from repro.parallel.worker import run_worker

    host, port = parse_endpoint(args.connect)
    log = print if args.verbose else None
    return run_worker(
        host,
        port,
        worker_id=args.id,
        reconnect_attempts=args.reconnect_attempts,
        reconnect_delay=args.reconnect_delay,
        log=log,
    )


def build_parser() -> argparse.ArgumentParser:
    from repro.core import MACHINE_PRESETS
    from repro.exec_models import MODEL_NAMES

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library inventory").set_defaults(func=cmd_info)

    p_study = sub.add_parser("study", help="execution-model sweep")
    _add_molecule_args(p_study)
    p_study.add_argument("--ranks", type=int, nargs="+", default=[16, 64])
    p_study.add_argument(
        "--models", nargs="+", choices=MODEL_NAMES, metavar="MODEL",
        default=["static_block", "counter_dynamic", "work_stealing"],
    )
    p_study.add_argument("--machine", choices=tuple(MACHINE_PRESETS), default="commodity")
    p_study.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault scenario, e.g. 'crash:2@0.3,stall:1@0.2-0.4,drop:0.01' "
        "(crash/stall times are fractions of the estimated ideal makespan)",
    )
    p_study.add_argument(
        "--engine", default="auto", metavar="MODE",
        help="simulation-engine mode: 'auto' (compiled loop when a C "
        "toolchain is available, else pure Python), 'python', 'bucket' "
        "(calendar-queue timeline), or 'compiled'; all modes are "
        "bit-for-bit equivalent (default: %(default)s)",
    )
    p_study.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run sweep cells across N worker processes (default: 1, serial)",
    )
    p_study.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell instead of reusing the result cache",
    )
    p_study.add_argument(
        "--artifact-cache", action=argparse.BooleanOptionalAction, default=True,
        help="memoize screening/task-graph/balancer intermediates "
        "(on disk under <cache>/artifacts when caching; "
        "--no-artifact-cache rebuilds everything)",
    )
    p_study.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR "
        "or benchmarks/results/cache)",
    )
    p_study.add_argument(
        "--progress", action="store_true",
        help="print one line per cell as it completes (cached/done counts)",
    )
    p_study.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted sweep from its checkpoint journal "
        "(stored next to the cache; requires caching)",
    )
    p_study.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="per-cell wall-clock budget with --jobs > 1; a hung worker "
        "is killed and the cell retried (default: unlimited)",
    )
    p_study.add_argument(
        "--deadline", type=float, default=None, metavar="SEC",
        help="whole-study wall-clock budget; cells not settled by then "
        "quarantine as DeadlineExceeded (journaled progress survives, "
        "so --resume continues; default: unlimited)",
    )
    p_study.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="tries per cell before it is quarantined (default: "
        "%(default)s -> policy default of 3)",
    )
    p_study.add_argument(
        "--executor", default="local", metavar="SPEC",
        help="execution backend for cache-miss cells, as a spec string: "
        "'local' supervised forked workers (default), 'serial' "
        "in-process, 'distributed' leased TCP workers (attach them with "
        "'python -m repro worker'); options inline as "
        "'name?opt=val&opt2=val', e.g. 'distributed?lease=10'",
    )
    p_study.add_argument(
        "--bind", default="127.0.0.1:0", metavar="HOST:PORT",
        help="with --executor distributed: fabric listen address "
        "(default: %(default)s, ephemeral loopback port)",
    )
    p_study.add_argument(
        "--lease", type=float, default=30.0, metavar="SEC",
        help="with --executor distributed: per-cell lease; a cell not "
        "finished within it is revoked and requeued (default: %(default)s)",
    )
    p_study.set_defaults(func=cmd_study)

    p_scf = sub.add_parser("scf", help="converge an SCF")
    _add_molecule_args(p_scf)
    p_scf.add_argument("--workers", type=int, default=1, help="thread workers (>1 = parallel)")
    p_scf.add_argument("--backend", choices=("static", "counter", "stealing"), default="stealing")
    p_scf.set_defaults(func=cmd_scf)

    p_val = sub.add_parser("validate", help="simulate a model and validate numerically")
    _add_molecule_args(p_val)
    p_val.add_argument("--model", choices=MODEL_NAMES, default="work_stealing")
    p_val.add_argument("--ranks", type=int, nargs=1, default=[16])
    p_val.add_argument("--machine", choices=tuple(MACHINE_PRESETS), default="commodity")
    p_val.set_defaults(func=cmd_validate)

    p_wl = sub.add_parser("workload", help="task-graph cost report")
    _add_molecule_args(p_wl)
    p_wl.set_defaults(func=cmd_workload)

    from repro.perf import SUITES

    p_bench = sub.add_parser(
        "bench", help="perf microbenchmarks -> BENCH_*.json baselines"
    )
    p_bench.add_argument(
        "--suites", nargs="+", choices=tuple(SUITES), default=list(SUITES),
        metavar="SUITE", help=f"suites to run (default: {' '.join(SUITES)})",
    )
    p_bench.add_argument("--repeats", type=int, default=5, help="median-of-k repeats")
    p_bench.add_argument(
        "--output-dir", default="benchmarks/results", metavar="DIR",
        help="where BENCH_<suite>.json files are written",
    )
    p_bench.add_argument(
        "--baseline-dir", default=None, metavar="DIR",
        help="compare event throughput against BENCH_<suite>.json here; "
        "exit 1 on regression beyond --max-regression",
    )
    p_bench.add_argument(
        "--max-regression", type=float, default=0.30, metavar="FRAC",
        help="allowed fractional throughput drop vs baseline (default: 0.30)",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_prof = sub.add_parser(
        "profile", help="cProfile a study, print top-N cumulative hotspots"
    )
    p_prof.add_argument(
        "study", choices=tuple(_PROFILE_PRESETS),
        help="canned study: 'quick' (one work-stealing cell) or 'e1' (full sweep)",
    )
    p_prof.add_argument("--top", type=int, default=25, help="rows to print")
    p_prof.add_argument(
        "--sort", default="cumulative",
        choices=("cumulative", "tottime", "ncalls"), help="pstats sort key",
    )
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument(
        "--output", default=None, metavar="FILE",
        help="also dump the raw pstats profile here",
    )
    p_prof.add_argument(
        "--counters", action="store_true",
        help="skip cProfile; print per-cell hot-path volume counters "
        "(timeout fast-path resumes, direct grant resumes, fused network ops)",
    )
    p_prof.set_defaults(func=cmd_profile)

    p_chaos = sub.add_parser(
        "chaos",
        help="inject real host faults (SIGKILL, hangs, disk corruption) "
        "into a sweep and verify bit-for-bit recovery",
    )
    p_chaos.add_argument(
        "--quick", action="store_true",
        help="CI smoke configuration: small grid, short timeout",
    )
    p_chaos.add_argument("--jobs", type=int, default=3, help="supervised workers")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--timeout", type=float, default=2.0, metavar="SEC",
        help="per-cell wall-clock budget for the disturbed sweeps",
    )
    p_chaos.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="keep chaos artifacts (caches, journals, markers) here "
        "instead of a throwaway temp dir",
    )
    p_chaos.add_argument(
        "--distributed", action="store_true",
        help="also run the distributed-fabric scenarios (SIGKILLed / "
        "frozen / severed / duplicating TCP workers, full remote loss)",
    )
    p_chaos.add_argument(
        "--service", action="store_true",
        help="also run the service-layer scenarios against a live "
        "loopback daemon (overload bursts, dedupe storms, cancel races, "
        "SIGTERM drain + restart resume, GC vs live streams, stalled "
        "readers) — each verified bit-for-bit against a fault-free run",
    )
    p_chaos.set_defaults(func=cmd_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="run the persistent study daemon (HTTP job API, see docs/service.md)",
    )
    p_serve.add_argument(
        "--bind", default="127.0.0.1:8750", metavar="HOST:PORT",
        help="HTTP listen address (default: %(default)s; port 0 picks an "
        "ephemeral port, printed at startup). The wire carries no "
        "authentication — bind loopback or a trusted network only.",
    )
    p_serve.add_argument(
        "--state-dir", default="benchmarks/results/service", metavar="DIR",
        help="durable service state: job records under DIR/jobs, the "
        "result cache + journals under DIR/cache (default: %(default)s). "
        "Restarting the daemon on the same state dir resumes unfinished "
        "jobs from their journals.",
    )
    p_serve.add_argument(
        "--executor", default="local", metavar="SPEC",
        help="default backend for jobs that say 'auto' (default: "
        "%(default)s; same spec strings as 'repro study --executor')",
    )
    p_serve.add_argument(
        "--fabric", default=None, metavar="HOST:PORT",
        help="also bind a daemon-lifetime distributed fabric at this "
        "address; 'python -m repro worker' daemons attach once and serve "
        "every job routed to the 'distributed' backend",
    )
    p_serve.add_argument(
        "--lease", type=float, default=30.0, metavar="SEC",
        help="with --fabric: per-cell worker lease (default: %(default)s)",
    )
    p_serve.add_argument(
        "--max-queued", type=int, default=64, metavar="N",
        help="bound on jobs waiting to run; past it, submits get 503 + "
        "Retry-After (default: %(default)s)",
    )
    p_serve.add_argument(
        "--capacity", type=int, default=None, metavar="N",
        help="weighted admission budget for concurrent jobs (each job "
        "weighs max(1, jobs)); default: one slot per host CPU, min 2",
    )
    p_serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="job-runner threads (default: derived from capacity, "
        "capped at 4)",
    )
    p_serve.add_argument(
        "--ttl", type=float, default=None, metavar="SEC",
        help="retention TTL: terminal job records (and their journals "
        "and unreferenced cache entries) are garbage-collected this many "
        "seconds after finishing (default: keep forever)",
    )
    p_serve.add_argument(
        "--gc-interval", type=float, default=30.0, metavar="SEC",
        help="retention janitor wake period with --ttl (default: %(default)s)",
    )
    p_serve.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="SEC",
        help="on SIGTERM, seconds running jobs get to finish before "
        "being checkpointed back to queued for the restart "
        "(default: %(default)s)",
    )
    p_serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit a study to a running daemon (repro serve), watch it, "
        "and fetch its rows — retries overload 503s with backoff",
    )
    p_submit.add_argument(
        "--connect", default="127.0.0.1:8750", metavar="HOST:PORT",
        help="daemon endpoint (default: %(default)s)",
    )
    p_submit.add_argument(
        "--spec", default=None, metavar="JSON|@FILE",
        help="full JobSpec as inline JSON or @path-to-file; overrides "
        "the study flags below",
    )
    _add_molecule_args(p_submit)
    p_submit.add_argument("--ranks", type=int, nargs="+", default=[16, 64])
    p_submit.add_argument(
        "--models", nargs="+", choices=MODEL_NAMES, metavar="MODEL",
        default=["static_block", "counter_dynamic", "work_stealing"],
    )
    p_submit.add_argument(
        "--machine", choices=tuple(MACHINE_PRESETS), default="commodity"
    )
    p_submit.add_argument("--faults", default=None, metavar="SPEC")
    p_submit.add_argument("--executor", default="auto", metavar="SPEC")
    p_submit.add_argument("--engine", default="auto", metavar="MODE")
    p_submit.add_argument("--jobs", type=int, default=1, metavar="N")
    p_submit.add_argument("--timeout", type=float, default=None, metavar="SEC")
    p_submit.add_argument(
        "--deadline", type=float, default=None, metavar="SEC",
        help="whole-job wall-clock budget enforced by the daemon",
    )
    p_submit.add_argument("--max-attempts", type=int, default=None, metavar="N")
    p_submit.add_argument(
        "--no-watch", dest="watch", action="store_false",
        help="print the job id and return instead of waiting for rows",
    )
    p_submit.add_argument(
        "--wait-timeout", type=float, default=None, metavar="SEC",
        help="give up watching after this long (default: forever)",
    )
    p_submit.add_argument(
        "--retries", type=int, default=8, metavar="N",
        help="submit attempts through 503s/connection errors "
        "(default: %(default)s)",
    )
    p_submit.add_argument(
        "--verbose", action="store_true", help="log every retry"
    )
    p_submit.set_defaults(func=cmd_submit)

    p_worker = sub.add_parser(
        "worker",
        help="join a distributed sweep fabric (leased TCP worker daemon)",
    )
    p_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="fabric endpoint printed by 'repro study --executor distributed'",
    )
    p_worker.add_argument(
        "--id", default=None, metavar="NAME",
        help="worker identity for logs (default: <hostname>-<pid>)",
    )
    p_worker.add_argument(
        "--reconnect-attempts", type=int, default=5, metavar="N",
        help="reconnects to tolerate before giving up (default: %(default)s)",
    )
    p_worker.add_argument(
        "--reconnect-delay", type=float, default=0.5, metavar="SEC",
        help="pause between reconnect attempts (default: %(default)s)",
    )
    p_worker.add_argument(
        "--verbose", action="store_true", help="log connection lifecycle"
    )
    p_worker.set_defaults(func=cmd_worker)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
