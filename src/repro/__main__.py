"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``info``     — library/version/model/preset inventory.
- ``study``    — run an execution-model sweep on a generated molecule.
- ``scf``      — converge an SCF and report the energy.
- ``validate`` — simulate one model and numerically validate its schedule.
- ``workload`` — build a task graph and print its cost-distribution report.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__


def _add_molecule_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--molecule", choices=("water", "alkane"), default="water",
        help="workload family (default: water)",
    )
    parser.add_argument("--size", type=int, default=4, help="monomers / carbons")
    parser.add_argument("--block-size", type=int, default=6)
    parser.add_argument("--tau", type=float, default=1.0e-10)
    parser.add_argument("--seed", type=int, default=0)


def _build_molecule(args: argparse.Namespace):
    from repro import linear_alkane, water_cluster

    if args.molecule == "water":
        return water_cluster(args.size, seed=args.seed)
    return linear_alkane(args.size)


def cmd_info(args: argparse.Namespace) -> int:
    from repro.core import MACHINE_PRESETS
    from repro.exec_models import MODEL_NAMES

    print(f"repro {__version__} — execution-model case study (IPDPSW'15 reproduction)")
    print(f"\nexecution models ({len(MODEL_NAMES)}):")
    for name in MODEL_NAMES:
        print(f"  {name}")
    print(f"\nmachine presets: {', '.join(MACHINE_PRESETS)}")
    print("\nexperiments: pytest benchmarks/ --benchmark-only   (tables in benchmarks/results/)")
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    from repro import api

    problem = api.ScfProblem.build(
        _build_molecule(args), block_size=args.block_size, tau=args.tau
    )
    print(
        f"{args.molecule}({args.size}): {problem.basis.n_basis} basis functions, "
        f"{problem.graph.n_tasks} tasks"
    )
    faults = None
    if args.faults:
        from repro.core import MACHINE_PRESETS
        from repro.faults import plan_from_spec

        # Crash/stall times in the spec are fractions of the estimated
        # ideal makespan at the smallest swept rank count (total work
        # spread perfectly over P nominal-speed ranks), so "crash:2@0.3"
        # means "rank 2 dies about 30% into the run".
        machine = MACHINE_PRESETS[args.machine](min(args.ranks))
        scale = problem.graph.total_flops / (
            machine.flops_per_second * min(args.ranks)
        )
        faults = plan_from_spec(args.faults, time_scale=scale)
        print(f"fault plan: {args.faults} (time scale {scale * 1e3:.3f} ms)")
    config = api.StudyConfig(
        models=tuple(args.models),
        n_ranks=tuple(args.ranks),
        machine=args.machine,
        seed=args.seed,
        faults=faults,
    )
    cache = None if args.no_cache else (args.cache_dir or api.default_cache_dir())
    progress = api.print_progress if args.progress else None
    report = api.sweep(
        config, problem, jobs=args.jobs, cache=cache, progress=progress
    )
    print(api.format_table(report.rows(), title="study results"))
    if cache is not None:
        cached = sum(1 for p in report.provenance.values() if p == "cached")
        print(f"cache: {cached}/{len(report.provenance)} cells reused from {cache}")
    return 0


def cmd_scf(args: argparse.Namespace) -> int:
    from repro import run_scf
    from repro.chemistry import ScfProblem
    from repro.parallel import SharedMemoryFockBuilder

    problem = ScfProblem.build(
        _build_molecule(args), block_size=args.block_size, tau=args.tau
    )
    g_builder = None
    if args.workers > 1:
        builder = SharedMemoryFockBuilder(
            problem, n_workers=args.workers, mode=args.backend
        )
        g_builder = builder.build
    result = run_scf(problem.molecule, problem=problem, g_builder=g_builder)
    status = "converged" if result.converged else "NOT converged"
    print(
        f"E = {result.energy:.10f} Ha  ({status} in {result.n_iterations} iterations, "
        f"E_nuc = {result.nuclear_repulsion:.6f})"
    )
    return 0 if result.converged else 1


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.chemistry import ScfProblem
    from repro.core import MACHINE_PRESETS, validate_run
    from repro.exec_models import make_model

    problem = ScfProblem.build(
        _build_molecule(args), block_size=args.block_size, tau=args.tau
    )
    machine = MACHINE_PRESETS[args.machine](args.ranks[0])
    result = make_model(args.model).run(problem.graph, machine, seed=args.seed)
    report = validate_run(problem, result)
    print(
        f"{result.model} on P={result.n_ranks}: makespan {result.makespan * 1e3:.3f} ms, "
        f"utilization {result.mean_utilization:.3f}"
    )
    print(
        f"numerical validation: max |error| = {report.max_abs_error:.3e} "
        f"(scale {report.reference_scale:.3e}) -> {'PASS' if report.passed else 'FAIL'}"
    )
    return 0 if report.passed else 1


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.analysis import ascii_histogram, cost_statistics
    from repro.chemistry import ScfProblem

    problem = ScfProblem.build(
        _build_molecule(args), block_size=args.block_size, tau=args.tau
    )
    graph = problem.graph
    stats = cost_statistics(graph.costs)
    print(
        f"{args.molecule}({args.size}), block_size={args.block_size}, tau={args.tau:g}: "
        f"{graph.n_tasks} tasks"
    )
    for key in ("mean", "median", "max", "cv", "gini", "top10_share"):
        print(f"  {key:12s} {stats[key]:.4g}")
    print("\ncost distribution (flops, log bins):")
    print(ascii_histogram(graph.costs, bins=10, width=44))
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.core import MACHINE_PRESETS
    from repro.exec_models import MODEL_NAMES

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library inventory").set_defaults(func=cmd_info)

    p_study = sub.add_parser("study", help="execution-model sweep")
    _add_molecule_args(p_study)
    p_study.add_argument("--ranks", type=int, nargs="+", default=[16, 64])
    p_study.add_argument(
        "--models", nargs="+", choices=MODEL_NAMES, metavar="MODEL",
        default=["static_block", "counter_dynamic", "work_stealing"],
    )
    p_study.add_argument("--machine", choices=tuple(MACHINE_PRESETS), default="commodity")
    p_study.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault scenario, e.g. 'crash:2@0.3,stall:1@0.2-0.4,drop:0.01' "
        "(crash/stall times are fractions of the estimated ideal makespan)",
    )
    p_study.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run sweep cells across N worker processes (default: 1, serial)",
    )
    p_study.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell instead of reusing the result cache",
    )
    p_study.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR "
        "or benchmarks/results/cache)",
    )
    p_study.add_argument(
        "--progress", action="store_true",
        help="print one line per cell as it completes (cached/done counts)",
    )
    p_study.set_defaults(func=cmd_study)

    p_scf = sub.add_parser("scf", help="converge an SCF")
    _add_molecule_args(p_scf)
    p_scf.add_argument("--workers", type=int, default=1, help="thread workers (>1 = parallel)")
    p_scf.add_argument("--backend", choices=("static", "counter", "stealing"), default="stealing")
    p_scf.set_defaults(func=cmd_scf)

    p_val = sub.add_parser("validate", help="simulate a model and validate numerically")
    _add_molecule_args(p_val)
    p_val.add_argument("--model", choices=MODEL_NAMES, default="work_stealing")
    p_val.add_argument("--ranks", type=int, nargs=1, default=[16])
    p_val.add_argument("--machine", choices=tuple(MACHINE_PRESETS), default="commodity")
    p_val.set_defaults(func=cmd_validate)

    p_wl = sub.add_parser("workload", help="task-graph cost report")
    _add_molecule_args(p_wl)
    p_wl.set_defaults(func=cmd_workload)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
