"""Declarative fault plans.

A :class:`FaultPlan` is a *pure description* of the disturbances one run
should suffer: rank crashes at fixed simulated times, transient stall
windows (a rank freezes — GC pause, OS jitter, a hung NFS mount — then
resumes), and per-link message loss/duplication with deterministic seeded
sampling. Plans are frozen dataclasses so a (seed, plan) pair fully
determines a run — the property the determinism-under-faults tests assert.

Plans carry no runtime state; :class:`repro.faults.injector.FaultInjector`
binds a plan to a live engine + network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import ConfigurationError, check_non_negative, check_probability


@dataclass(frozen=True)
class RankCrash:
    """Rank ``rank`` fail-stops at simulated time ``time`` (seconds).

    A crash is permanent: the rank's process is killed (its generator is
    closed, releasing held locks/NIC slots), its mailbox contents are
    lost, and every later operation targeting it fails.
    """

    rank: int
    time: float

    def __post_init__(self) -> None:
        check_non_negative("time", self.time)
        if self.rank < 0:
            raise ConfigurationError(f"rank must be >= 0, got {self.rank}")


@dataclass(frozen=True)
class StallWindow:
    """Rank ``rank`` freezes during ``[start, end)`` — a straggler, not a death.

    A stalled rank makes no compute progress while the window covers the
    current time; it resumes (and its queued work remains stealable)
    afterwards. Overlapping/chained windows on one rank extend the stall.
    """

    rank: int
    start: float
    end: float

    def __post_init__(self) -> None:
        check_non_negative("start", self.start)
        if self.end <= self.start:
            raise ConfigurationError(
                f"stall window end {self.end} must exceed start {self.start}"
            )
        if self.rank < 0:
            raise ConfigurationError(f"rank must be >= 0, got {self.rank}")


@dataclass(frozen=True)
class MessageFaults:
    """Two-sided message disturbance: i.i.d. drop / duplication per delivery.

    Attributes:
        drop: probability a message is silently lost in flight.
        duplicate: probability a delivered message arrives twice.
        links: restrict faults to these ``(src, dst)`` pairs
            (``None`` = every link).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    links: frozenset[tuple[int, int]] | None = None

    def __post_init__(self) -> None:
        check_probability("drop", self.drop)
        check_probability("duplicate", self.duplicate)

    @property
    def active(self) -> bool:
        return self.drop > 0.0 or self.duplicate > 0.0

    def applies(self, src: int, dst: int) -> bool:
        return self.links is None or (src, dst) in self.links


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one run, declared up front.

    Attributes:
        crashes: permanent rank fail-stops.
        stalls: transient per-rank freeze windows.
        message_faults: per-link message drop/duplication model.
        seed: root seed of the plan's own random stream (message-fate
            sampling); independent of the run seed so the same plan
            misbehaves identically across model/seed sweeps.
        rma_timeout: extra time a one-sided operation burns discovering
            its target is dead before :class:`~repro.util.RankFailedError`
            is raised (models an RMA completion timeout).
        detection_latency: heartbeat period — how long after a crash the
            failure becomes visible to ranks that have not touched the
            dead rank directly.
    """

    crashes: tuple[RankCrash, ...] = ()
    stalls: tuple[StallWindow, ...] = ()
    message_faults: MessageFaults | None = None
    seed: int = 0
    rma_timeout: float = 2.5e-5
    detection_latency: float = 2.0e-4

    def __post_init__(self) -> None:
        check_non_negative("rma_timeout", self.rma_timeout)
        if self.detection_latency <= 0:
            raise ConfigurationError(
                f"detection_latency must be positive, got {self.detection_latency}"
            )
        seen: set[int] = set()
        for crash in self.crashes:
            if crash.rank in seen:
                raise ConfigurationError(
                    f"rank {crash.rank} crashes more than once in one plan"
                )
            seen.add(crash.rank)

    @property
    def empty(self) -> bool:
        """True if the plan injects nothing (machinery must stay dormant)."""
        return (
            not self.crashes
            and not self.stalls
            and (self.message_faults is None or not self.message_faults.active)
        )

    @property
    def crashed_ranks(self) -> frozenset[int]:
        return frozenset(c.rank for c in self.crashes)

    def max_rank(self) -> int:
        """Highest rank referenced by any fault (-1 if none)."""
        ranks = [c.rank for c in self.crashes] + [s.rank for s in self.stalls]
        if self.message_faults is not None and self.message_faults.links:
            for src, dst in self.message_faults.links:
                ranks.extend((src, dst))
        return max(ranks, default=-1)


def plan_from_spec(spec: str, time_scale: float = 1.0) -> FaultPlan:
    """Parse a compact CLI fault spec into a :class:`FaultPlan`.

    Grammar — comma-separated terms:

    - ``crash:R@T``      rank R crashes at time T
    - ``stall:R@T0-T1``  rank R freezes during [T0, T1)
    - ``drop:P``         message drop probability P
    - ``dup:P``          message duplication probability P
    - ``seed:N``         plan seed
    - ``timeout:T``      RMA dead-target timeout (seconds, *not* scaled)
    - ``detect:T``       heartbeat detection latency (seconds, *not* scaled)

    Times in ``crash``/``stall`` terms are multiplied by ``time_scale``,
    so a caller can pass fractions of an estimated makespan and scale
    them here (what ``python -m repro study --faults`` does).
    """
    crashes: list[RankCrash] = []
    stalls: list[StallWindow] = []
    drop = 0.0
    duplicate = 0.0
    seed = 0
    extra: dict[str, float] = {}
    for raw in spec.split(","):
        term = raw.strip()
        if not term:
            continue
        try:
            kind, _, rest = term.partition(":")
            if kind == "crash":
                rank, _, when = rest.partition("@")
                crashes.append(RankCrash(int(rank), float(when) * time_scale))
            elif kind == "stall":
                rank, _, window = rest.partition("@")
                t0, _, t1 = window.partition("-")
                stalls.append(
                    StallWindow(int(rank), float(t0) * time_scale, float(t1) * time_scale)
                )
            elif kind == "drop":
                drop = float(rest)
            elif kind == "dup":
                duplicate = float(rest)
            elif kind == "seed":
                seed = int(rest)
            elif kind == "timeout":
                extra["rma_timeout"] = float(rest)
            elif kind == "detect":
                extra["detection_latency"] = float(rest)
            else:
                raise ConfigurationError(f"unknown fault term {term!r}")
        except (ValueError, TypeError) as err:
            raise ConfigurationError(f"malformed fault term {term!r}: {err}") from None
    message_faults = (
        MessageFaults(drop=drop, duplicate=duplicate) if (drop or duplicate) else None
    )
    return FaultPlan(
        crashes=tuple(crashes),
        stalls=tuple(stalls),
        message_faults=message_faults,
        seed=seed,
        **extra,
    )
