"""Failure detection, kept separate from failure occurrence.

A crash is instant; *knowing* about it is not. The detector models the
two ways real runtimes learn of a death:

- **Heartbeat timeout:** a crash becomes visible to everyone once
  ``detection_latency`` simulated seconds have elapsed since it — the
  steady-state cost of a gossip/heartbeat layer, modeled without
  simulating the heartbeat traffic itself (documented approximation).
- **On-contact (fail-fast):** an operation against the dead rank raises
  :class:`~repro.util.RankFailedError` after the RMA timeout; the caller
  reports the rank here, making the death immediately visible to all —
  modeling the detector broadcasting a confirmed failure.

Detection is monotone (suspects are never unsuspected; crashes are
permanent) and deterministic.
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector
from repro.util import check_positive


class FailureDetector:
    """Shared failure view for one run's execution model."""

    def __init__(self, injector: FaultInjector, detection_latency: float | None = None) -> None:
        self.injector = injector
        latency = (
            detection_latency
            if detection_latency is not None
            else injector.plan.detection_latency
        )
        check_positive("detection_latency", latency)
        self.detection_latency = float(latency)
        self._reported: set[int] = set()

    def report(self, rank: int) -> None:
        """Record an on-contact detection (a failed direct operation)."""
        if self.injector.is_dead(rank):
            self._reported.add(rank)

    def suspects(self) -> set[int]:
        """All ranks currently known (to the runtime) to have failed."""
        now = self.injector.engine.now
        out = set(self._reported)
        for rank, since in self.injector.dead_since.items():
            if now >= since + self.detection_latency:
                out.add(rank)
        return out

    def is_suspected(self, rank: int) -> bool:
        if rank in self._reported:
            return True
        since = self.injector.dead_since.get(rank)
        return since is not None and self.injector.engine.now >= since + self.detection_latency

    def undetected(self, rank: int) -> bool:
        """Dead but not yet suspected (the dangerous window)."""
        return self.injector.is_dead(rank) and not self.is_suspected(rank)
