"""Fault injection and failure detection for the simulated machine.

The paper's claim C1/C3 axis — execution models differ in how they absorb
disturbance — extends past performance noise (:mod:`repro.simulate.noise`)
to outright failures. This package turns the simulator into a
dependability model:

- :mod:`repro.faults.plan` -- declarative, frozen fault descriptions
  (rank crashes, stall windows, message loss/duplication) plus the CLI
  spec parser.
- :mod:`repro.faults.injector` -- binds a plan to an engine + network:
  schedules crashes (killing rank processes cleanly), answers dead-rank
  queries, samples message fates deterministically.
- :mod:`repro.faults.detector` -- the runtime's *view* of failures:
  heartbeat-latency visibility plus fail-fast on-contact reporting.
- :mod:`repro.faults.retry` -- capped-exponential retry/backoff with
  deterministic jitter, used by fault-tolerant execution models.

A ``FaultPlan()`` with no faults is guaranteed inert: the harness skips
injector construction entirely, so zero-fault runs are bit-for-bit
identical to runs with no plan at all.
"""

from repro.faults.plan import (
    FaultPlan,
    MessageFaults,
    RankCrash,
    StallWindow,
    plan_from_spec,
)
from repro.faults.injector import DELIVER, DROP, DUPLICATE, FaultInjector
from repro.faults.detector import FailureDetector
from repro.faults.retry import RetryPolicy, with_retries

__all__ = [
    "FaultPlan",
    "RankCrash",
    "StallWindow",
    "MessageFaults",
    "plan_from_spec",
    "FaultInjector",
    "FailureDetector",
    "RetryPolicy",
    "with_retries",
    "DELIVER",
    "DROP",
    "DUPLICATE",
]
