"""Retry with capped exponential backoff and deterministic jitter.

The recovery helper fault-tolerant models use when an operation hits a
dead (or dying) rank: retry a bounded number of times, sleeping a
capped-exponential, jittered delay between attempts. Jitter comes from a
caller-supplied :func:`~repro.util.spawn_rng` stream, so retries are as
deterministic as everything else in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

import numpy as np

from repro.util import ConfigurationError, RankFailedError, check_positive


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: ``min(base * 2^attempt, cap) * jitter``.

    Attributes:
        max_attempts: total tries (first attempt included).
        base_delay: backoff before the second attempt (seconds).
        max_delay: backoff cap (seconds).
        jitter: fractional jitter; the sampled delay is uniform in
            ``[d, d * (1 + jitter)]``.
    """

    max_attempts: int = 3
    base_delay: float = 5.0e-6
    max_delay: float = 1.0e-4
    jitter: float = 0.25

    def __post_init__(self) -> None:
        check_positive("max_attempts", self.max_attempts)
        check_positive("base_delay", self.base_delay)
        check_positive("max_delay", self.max_delay)
        if self.max_delay < self.base_delay:
            raise ConfigurationError("max_delay must be >= base_delay")
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff after failed attempt number ``attempt`` (0-based)."""
        base = min(self.base_delay * (2.0**attempt), self.max_delay)
        if self.jitter == 0.0:
            return base
        return base * (1.0 + self.jitter * float(rng.random()))


def with_retries(
    ctx,
    op: Callable[[], Generator],
    policy: RetryPolicy,
    rng: np.random.Generator,
    on_failure: Callable[[int], None] | None = None,
):
    """Drive ``op()`` (a generator factory), retrying on ``RankFailedError``.

    ``on_failure(rank)`` runs after each failed attempt — fault-tolerant
    models hook failure *reporting* here so the retry sees re-routed
    ownership. The final failure propagates. Backoff sleeps accrue to the
    rank's idle time. Returns the operation's return value; drive with
    ``yield from``.
    """
    last_error: RankFailedError | None = None
    for attempt in range(policy.max_attempts):
        if attempt > 0:
            yield from ctx.sleep(policy.delay(attempt - 1, rng))
        try:
            result = yield from op()
            return result
        except RankFailedError as err:
            last_error = err
            if on_failure is not None:
                on_failure(err.rank)
    assert last_error is not None
    raise last_error
