"""Binding a :class:`~repro.faults.plan.FaultPlan` to a live simulation.

The injector is the single runtime authority on "what has failed":

- it schedules crash events on the engine and, when one fires, kills the
  rank's process (generator close -> ``finally`` blocks release held
  resources) and wipes its mailbox;
- the network consults it before/during every operation (dead-target
  RMA failures, message drop/duplication, deliveries to dead ranks);
- :class:`RankContext` consults it at compute start for stall windows;
- execution models consult it (through a
  :class:`~repro.faults.detector.FailureDetector`) for failure
  *detection*, which is deliberately separate from failure *occurrence*.

Everything is deterministic: crash/stall times come from the plan,
message fates from a plan-seeded stream consumed in (deterministic)
delivery order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.plan import FaultPlan
from repro.util import ConfigurationError, spawn_rng

if TYPE_CHECKING:  # circular-import guard: engine/network know the injector only as an attribute
    from repro.simulate.engine import Engine, Process
    from repro.simulate.network import Network

#: Message fates returned by :meth:`FaultInjector.message_fate`.
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"


class FaultInjector:
    """Runtime fault state for one simulated run.

    Attributes:
        plan: the immutable fault description.
        dead_since: ``rank -> crash time`` for ranks that have crashed
            so far (crashes scheduled in the future are absent).
        stats: observability counters (messages dropped/duplicated,
            failed RMA contacts, processes killed).
    """

    def __init__(self, plan: FaultPlan, engine: "Engine", network: "Network") -> None:
        if plan.max_rank() >= network.n_ranks:
            raise ConfigurationError(
                f"fault plan references rank {plan.max_rank()}, "
                f"machine has {network.n_ranks} ranks"
            )
        if len(plan.crashed_ranks) >= network.n_ranks:
            raise ConfigurationError("fault plan crashes every rank")
        self.plan = plan
        self.engine = engine
        self.network = network
        self.dead_since: dict[int, float] = {}
        self.stats: dict[str, float] = {
            "messages_dropped": 0.0,
            "messages_duplicated": 0.0,
            "rma_failures": 0.0,
            "ranks_crashed": 0.0,
        }
        self._procs: dict[int, "Process"] = {}
        self._stalls: dict[int, list[tuple[float, float]]] = {}
        for window in plan.stalls:
            self._stalls.setdefault(window.rank, []).append((window.start, window.end))
        for windows in self._stalls.values():
            windows.sort()
        mf = plan.message_faults
        self._msg_rng = (
            spawn_rng(plan.seed, "fault-plan", "message-fates")
            if mf is not None and mf.active
            else None
        )

    # ------------------------------------------------------------------
    # Crash lifecycle
    # ------------------------------------------------------------------
    def arm(self, rank_processes: dict[int, "Process"]) -> None:
        """Register rank processes and schedule the plan's crash events.

        Must be called before the engine runs (crash times are absolute).
        """
        self._procs.update(rank_processes)
        for crash in self.plan.crashes:
            delay = crash.time - self.engine.now
            self.engine.schedule(max(delay, 0.0), lambda c=crash: self._fire_crash(c.rank))

    def _fire_crash(self, rank: int) -> None:
        if rank in self.dead_since:
            return
        self.dead_since[rank] = self.engine.now
        self.stats["ranks_crashed"] += 1.0
        proc = self._procs.get(rank)
        if proc is not None:
            proc.cancel()
        self.network.drop_mailbox(rank)

    def is_dead(self, rank: int) -> bool:
        """Whether ``rank`` has crashed *as of the current simulated time*."""
        return rank in self.dead_since

    @property
    def failed_ranks(self) -> tuple[int, ...]:
        return tuple(sorted(self.dead_since))

    # ------------------------------------------------------------------
    # Stalls
    # ------------------------------------------------------------------
    def stall_until(self, rank: int, now: float) -> float:
        """End of the stall covering ``rank`` at ``now`` (``now`` if none).

        Chained/overlapping windows extend each other: the returned time
        is a fixpoint, i.e. not itself inside another window.
        """
        windows = self._stalls.get(rank)
        if not windows:
            return now
        end = now
        changed = True
        while changed:
            changed = False
            for t0, t1 in windows:
                if t0 <= end < t1:
                    end = t1
                    changed = True
        return end

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    def message_fate(self, src: int, dst: int) -> str:
        """Sample the fate of one delivery: DELIVER, DROP, or DUPLICATE."""
        mf = self.plan.message_faults
        if self._msg_rng is None or mf is None or not mf.applies(src, dst):
            return DELIVER
        if mf.drop > 0.0 and self._msg_rng.random() < mf.drop:
            self.stats["messages_dropped"] += 1.0
            return DROP
        if mf.duplicate > 0.0 and self._msg_rng.random() < mf.duplicate:
            self.stats["messages_duplicated"] += 1.0
            return DUPLICATE
        return DELIVER

    def note_rma_failure(self) -> None:
        self.stats["rma_failures"] += 1.0
