"""Chaos scenarios: real host faults against the real sweep stack.

Every scenario shares one shape: compute a fault-free serial *reference*
sweep, disturb a second sweep with genuine host-level faults, and demand
the disturbed sweep's results be **bit-for-bit identical** (every field
of every :class:`~repro.exec_models.base.RunResult`, NumPy arrays
included) to the reference. No tolerance windows, no "close enough" —
the execution layer either preserved the computation exactly or it
failed.

Fault injection is *real*, not mocked: the kill fault SIGKILLs the live
worker process from inside the cell it is executing, the hang fault
sleeps a cell past the supervisor's wall-clock budget (so the supervisor
must kill the worker from outside), and corruption faults rewrite actual
cache/journal bytes on disk. First-attempt-only faults coordinate across
processes through marker files created with ``O_CREAT | O_EXCL`` — a
mechanism that survives the worker being SIGKILLed a microsecond later.
"""

from __future__ import annotations

import dataclasses
import functools
import os
import signal
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.chemistry.tasks import synthetic_task_graph
from repro.core.cache import ResultCache
from repro.core.config import StudyConfig
from repro.core.journal import SweepJournal
from repro.core.sweep import SweepCell, SweepRunner, execute_cell, study_cells
from repro.faults.retry import RetryPolicy
from repro.parallel.supervisor import CellFailure


# ----------------------------------------------------------------------
# Fault injection (runs inside worker processes)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ChaosPlan:
    """Host-level faults to inject into sweep cells, keyed by cell label.

    Attributes:
        marker_dir: directory for cross-process first-attempt markers
            (must exist; shared by parent and workers).
        kill: labels whose worker SIGKILLs *itself* mid-cell on the
            first attempt — a real crash, indistinguishable from an OOM
            kill from the supervisor's point of view.
        hang: labels that sleep ``hang_seconds`` on the first attempt —
            a stuck cell the supervisor must detect by wall-clock
            timeout and kill from outside.
        fail: labels that raise on **every** attempt — poison cells that
            must end up quarantined, never retried forever.
        hang_seconds: how long a hung cell sleeps (set it well past the
            sweep timeout).
    """

    marker_dir: str
    kill: tuple[str, ...] = ()
    hang: tuple[str, ...] = ()
    fail: tuple[str, ...] = ()
    hang_seconds: float = 30.0


def _first_attempt(marker_dir: str, tag: str, label: str) -> bool:
    """Atomically claim the first attempt of (tag, label) across processes.

    ``O_CREAT | O_EXCL`` is atomic on POSIX and the marker outlives a
    SIGKILLed worker, so exactly one attempt — the first — sees True.
    """
    marker = os.path.join(
        marker_dir, f"{tag}-{label.replace('/', '_').replace('@', '_')}"
    )
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def chaos_execute_cell(plan: ChaosPlan, cell: SweepCell) -> Any:
    """Worker entry: inject the plan's fault for this cell, then compute.

    The computation itself is exactly :func:`execute_cell` — faults
    disturb *when/whether* the worker survives, never *what* it
    computes, which is what makes the bit-for-bit assertion meaningful.
    """
    label = cell.label
    if label in plan.kill and _first_attempt(plan.marker_dir, "kill", label):
        os.kill(os.getpid(), signal.SIGKILL)
    if label in plan.hang and _first_attempt(plan.marker_dir, "hang", label):
        time.sleep(plan.hang_seconds)
    if label in plan.fail:
        raise RuntimeError(f"chaos poison cell {label}")
    return execute_cell(cell)


# ----------------------------------------------------------------------
# Bit-for-bit comparison
# ----------------------------------------------------------------------

def diff_results(a: Any, b: Any) -> list[str]:
    """Field names on which two results differ (empty = identical).

    Compares every dataclass field exactly: ndarray dtype + contents,
    dicts of ndarrays element-wise, everything else by ``==``.
    """
    if type(a) is not type(b):
        return [f"type: {type(a).__name__} != {type(b).__name__}"]
    out: list[str] = []
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            if (
                not isinstance(vb, np.ndarray)
                or va.dtype != vb.dtype
                or va.shape != vb.shape
                or not (va == vb).all()
            ):
                out.append(f.name)
        elif isinstance(va, dict) and any(
            isinstance(v, np.ndarray) for v in va.values()
        ):
            if not isinstance(vb, dict) or va.keys() != vb.keys():
                out.append(f.name)
                continue
            for k in va:
                eq = va[k] == vb[k]
                if not (eq.all() if isinstance(eq, np.ndarray) else eq):
                    out.append(f"{f.name}[{k}]")
                    break
        elif va != vb:
            out.append(f.name)
    return out


def results_identical(a: Any, b: Any) -> bool:
    """Whether two cell results are bit-for-bit identical."""
    return not diff_results(a, b)


def _compare_rows(
    reference: Sequence[Any], disturbed: Sequence[Any], skip: set[int] = frozenset()
) -> list[str]:
    """Mismatch descriptions between two result lists (empty = pass)."""
    problems: list[str] = []
    for index, (ref, got) in enumerate(zip(reference, disturbed)):
        if index in skip:
            continue
        if isinstance(got, CellFailure):
            problems.append(f"cell {index}: unexpected quarantine ({got})")
            continue
        diffs = diff_results(ref, got)
        if diffs:
            problems.append(f"cell {index}: fields differ: {', '.join(diffs)}")
    if len(reference) != len(disturbed):
        problems.append(
            f"row count {len(disturbed)} != reference {len(reference)}"
        )
    return problems


# ----------------------------------------------------------------------
# Disk corruption helpers (run in the parent, between sweep phases)
# ----------------------------------------------------------------------

def _truncate_file(path: Path, keep_fraction: float = 0.5) -> None:
    data = path.read_bytes()
    path.write_bytes(data[: max(1, int(len(data) * keep_fraction))])


def _corrupt_cache_entries(cache: ResultCache, keys: Sequence[str]) -> int:
    """Truncate / zero / garbage the on-disk entries for ``keys``."""
    corruptions = 0
    for index, key in enumerate(keys):
        path = cache.path_for(key)
        if not path.exists():
            continue
        if index % 3 == 0:
            _truncate_file(path)
        elif index % 3 == 1:
            path.write_bytes(b"")
        else:
            path.write_bytes(b'{"not": "a pickle"}')
        corruptions += 1
    return corruptions


def _corrupt_journal(journal_path: Path) -> None:
    """Append a garbage line and tear the last valid line in half."""
    data = journal_path.read_bytes()
    lines = data.splitlines(keepends=True)
    torn = lines[-1][: max(1, len(lines[-1]) // 2)] if lines else b""
    journal_path.write_bytes(
        b"".join(lines[:-1]) + b"#### chaos garbage, not json ####\n" + torn
    )


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

@dataclass
class ScenarioResult:
    name: str
    passed: bool
    detail: str = ""


@dataclass
class ChaosReport:
    """Outcome of one chaos run: per-scenario verdicts + fault counts."""

    scenarios: list[ScenarioResult] = field(default_factory=list)
    cells: int = 0  #: grid size the scenarios ran against

    @property
    def passed(self) -> bool:
        return all(s.passed for s in self.scenarios)

    def format(self) -> str:
        lines = [f"chaos report: {self.cells}-cell grid"]
        for s in self.scenarios:
            status = "PASS" if s.passed else "FAIL"
            lines.append(f"  [{status}] {s.name}" + (f" — {s.detail}" if s.detail else ""))
        lines.append("chaos verdict: " + ("PASS" if self.passed else "FAIL"))
        return "\n".join(lines)


def _scenario(
    report: ChaosReport, name: str, fn: Callable[[], str]
) -> None:
    """Run one scenario; any exception or problem string fails it."""
    try:
        detail = fn()
    except Exception as exc:  # noqa: BLE001 - verdict, not crash
        report.scenarios.append(
            ScenarioResult(name, False, f"{type(exc).__name__}: {exc}")
        )
        return
    report.scenarios.append(ScenarioResult(name, True, detail))


def run_chaos(
    quick: bool = True,
    jobs: int = 3,
    seed: int = 0,
    workdir: str | os.PathLike | None = None,
    timeout: float = 2.0,
    log: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run the full chaos suite; returns a verdict per scenario.

    Scenarios (all compare bit-for-bit against one fault-free serial
    reference sweep):

    1. **crash + hang + corrupt cache** — pre-warmed cache entries are
       truncated/zeroed/garbage'd, one worker is SIGKILLed mid-cell, one
       cell hangs past the timeout; the sweep must self-heal and match.
    2. **interrupt + corrupt journal + resume** — a sweep is interrupted
       partway (KeyboardInterrupt), its journal gets a garbage line and
       a torn final line, then ``resume=True`` must restore exactly the
       journaled cells (minus the torn one) and recompute only the rest.
    3. **poison quarantine** — a cell failing every attempt must end up
       quarantined as a :class:`CellFailure` while every other cell
       still matches the reference.
    4. **corrupted artifact store** — every on-disk artifact entry
       (hypergraph, semi-matching assignment) is truncated/zeroed/
       garbage'd; rebuilds must detect each corruption, reproduce the
       uncached reference bit for bit, and re-store servable entries.

    Args:
        quick: CI-sized grid (6 cells) vs the fuller 9-cell grid.
        jobs: supervised workers for the disturbed sweeps.
        seed: study seed (any value works; determinism is per-seed).
        workdir: where caches/journals/markers live (a fresh temp dir by
            default; pass a path to inspect artifacts afterwards).
        timeout: per-cell wall-clock budget for the disturbed sweeps.
        log: optional progress sink (e.g. ``print``).
    """
    say = log if log is not None else (lambda _msg: None)
    base = Path(workdir) if workdir is not None else Path(
        tempfile.mkdtemp(prefix="repro-chaos-")
    )
    base.mkdir(parents=True, exist_ok=True)

    if quick:
        graph = synthetic_task_graph(150, 8, seed=3, skew=1.2)
        config = StudyConfig(
            models=("static_block", "counter_dynamic", "work_stealing"),
            n_ranks=(4, 8),
            seed=seed,
        )
    else:
        graph = synthetic_task_graph(600, 16, seed=3, skew=1.3)
        config = StudyConfig(
            models=("static_block", "counter_dynamic", "work_stealing"),
            n_ranks=(4, 8, 16),
            seed=seed,
        )
    cells = study_cells(config, graph)
    labels = [cell.label for cell in cells]
    retry = RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.2, jitter=0.0)
    report = ChaosReport(cells=len(cells))

    say(f"chaos: {len(cells)} cells, jobs={jobs}, timeout={timeout:g}s")
    say("chaos: computing fault-free serial reference ...")
    reference = SweepRunner(jobs=1, cache=None).run_cells(cells)

    # -- scenario 1: crash + hang + corrupted cache ---------------------
    def crash_hang_corrupt() -> str:
        work = base / "s1"
        markers = work / "markers"
        markers.mkdir(parents=True, exist_ok=True)
        warm = SweepRunner(cache=work / "cache")
        warm.run_cells(cells[:3])
        corrupted = _corrupt_cache_entries(
            warm.cache, [warm.cell_key(c) for c in cells[:3]]
        )
        plan = ChaosPlan(
            marker_dir=str(markers),
            kill=(labels[1],),
            hang=(labels[2],),
            hang_seconds=max(10.0, timeout * 5),
        )
        runner = SweepRunner(
            jobs=jobs,
            cache=work / "cache",
            timeout=timeout,
            retry=retry,
            on_error="quarantine",
            journal=work / "journal",
            cell_fn=functools.partial(chaos_execute_cell, plan),
        )
        disturbed = runner.run_cells(cells)
        problems = _compare_rows(reference, disturbed)
        stats = runner.supervisor_stats
        if corrupted < 3:
            problems.append(f"only corrupted {corrupted}/3 cache entries")
        if runner.cache.stats.errors < corrupted:
            problems.append(
                f"cache detected {runner.cache.stats.errors} corruptions, "
                f"expected >= {corrupted}"
            )
        if stats.crashes < 1:
            problems.append("no worker crash observed (SIGKILL not injected?)")
        if stats.timeouts < 1:
            problems.append("no cell timeout observed (hang not injected?)")
        if runner.last_failures:
            problems.append(f"unexpected quarantines: {runner.last_failures}")
        if problems:
            raise AssertionError("; ".join(problems))
        return (
            f"{corrupted} corrupt entries healed, {stats.crashes} crash(es), "
            f"{stats.timeouts} timeout(s), {stats.retries} retries; rows identical"
        )

    # -- scenario 2: interrupt + corrupt journal + resume ---------------
    def interrupt_resume() -> str:
        work = base / "s2"
        cache_dir = work / "cache"
        journal_dir = work / "journal"
        stop_after = max(2, len(cells) // 2)
        ticks = {"n": 0}

        def interrupter(event) -> None:
            ticks["n"] += 1
            if ticks["n"] >= stop_after:
                raise KeyboardInterrupt

        first = SweepRunner(
            cache=cache_dir, journal=journal_dir, progress=interrupter
        )
        interrupted = False
        try:
            first.run_cells(cells)
        except KeyboardInterrupt:
            interrupted = True
        if not interrupted:
            raise AssertionError("sweep was not interrupted")
        done_before = first.stats.computed
        if done_before < stop_after:
            raise AssertionError(
                f"only {done_before} cells journaled before interrupt"
            )
        pending = first.last_provenance.count("pending")
        if pending == 0:
            raise AssertionError("interrupt left nothing pending")

        journal_files = sorted(journal_dir.glob("sweep-*.jsonl"))
        if len(journal_files) != 1:
            raise AssertionError(f"expected 1 journal, found {journal_files}")
        _corrupt_journal(journal_files[0])

        second = SweepRunner(
            jobs=jobs,
            cache=cache_dir,
            timeout=timeout,
            retry=retry,
            journal=journal_dir,
            resume=True,
        )
        resumed_results = second.run_cells(cells)
        problems = _compare_rows(reference, resumed_results)
        # The torn final journal line loses exactly one entry; that cell
        # falls back to the cache. Nothing already-complete recomputes.
        if second.stats.resumed != done_before - 1:
            problems.append(
                f"resumed {second.stats.resumed}, expected {done_before - 1}"
            )
        if second.stats.cached != 1:
            problems.append(
                f"cache hits {second.stats.cached}, expected 1 (torn line)"
            )
        if second.stats.computed != len(cells) - done_before:
            problems.append(
                f"recomputed {second.stats.computed}, expected "
                f"{len(cells) - done_before} unfinished cells"
            )
        if problems:
            raise AssertionError("; ".join(problems))
        return (
            f"interrupted after {done_before}, resumed {second.stats.resumed} "
            f"from corrupted journal + 1 from cache, recomputed "
            f"{second.stats.computed}; rows identical"
        )

    # -- scenario 3: poison-cell quarantine -----------------------------
    def poison_quarantine() -> str:
        work = base / "s3"
        markers = work / "markers"
        markers.mkdir(parents=True, exist_ok=True)
        poison_label = labels[-1]
        plan = ChaosPlan(marker_dir=str(markers), fail=(poison_label,))
        runner = SweepRunner(
            jobs=jobs,
            cache=None,
            timeout=timeout,
            retry=retry,
            on_error="quarantine",
            cell_fn=functools.partial(chaos_execute_cell, plan),
        )
        disturbed = runner.run_cells(cells)
        poison_index = labels.index(poison_label)
        problems = _compare_rows(reference, disturbed, skip={poison_index})
        failure = disturbed[poison_index]
        if not isinstance(failure, CellFailure):
            problems.append(f"poison cell not quarantined: {failure!r}")
        else:
            if failure.attempts != retry.max_attempts:
                problems.append(
                    f"poison retried {failure.attempts} times, expected "
                    f"{retry.max_attempts}"
                )
            if failure.label != poison_label:
                problems.append(f"failure label {failure.label!r}")
        if runner.stats.failed != 1:
            problems.append(f"stats.failed == {runner.stats.failed}")
        if problems:
            raise AssertionError("; ".join(problems))
        return (
            f"poison cell {poison_label} quarantined after "
            f"{retry.max_attempts} attempts; other rows identical"
        )

    # -- scenario 4: corrupted artifact store ---------------------------
    def corrupted_artifacts() -> str:
        from repro.balance.hypergraph import fock_hypergraph
        from repro.balance.semi_matching import semi_matching_balancer
        from repro.core.artifacts import ArtifactStore, use_store

        root = base / "s4" / "artifacts"
        n_ranks = config.n_ranks[-1]
        with use_store(None):  # ground truth: no memoization at all
            ref_hg = fock_hypergraph(graph)
            ref_assign = semi_matching_balancer(graph, n_ranks, seed=seed)
        seeded = ArtifactStore(root)
        with use_store(seeded):
            fock_hypergraph(graph)
            semi_matching_balancer(graph, n_ranks, seed=seed)
        entries = sorted(root.glob("*/*.npz"))
        if len(entries) < 2:
            raise AssertionError(f"expected >= 2 artifact entries, got {len(entries)}")
        for index, path in enumerate(entries):
            if index % 3 == 0:
                _truncate_file(path)
            elif index % 3 == 1:
                path.write_bytes(b"")
            else:
                path.write_bytes(b"PK\x03\x04 chaos garbage, not an npz")
        healed = ArtifactStore(root)  # fresh memo: must consult the disk
        with use_store(healed):
            hg = fock_hypergraph(graph)
            assign = semi_matching_balancer(graph, n_ranks, seed=seed)
        problems: list[str] = []
        if healed.stats.errors < len(entries):
            problems.append(
                f"detected {healed.stats.errors} corruptions, "
                f"expected >= {len(entries)}"
            )
        if healed.stats.disk_hits:
            problems.append(
                f"{healed.stats.disk_hits} disk hit(s) served from corrupt entries"
            )
        if not (
            np.array_equal(hg.pins, ref_hg.pins)
            and np.array_equal(hg.xpins, ref_hg.xpins)
            and np.array_equal(hg.net_weights, ref_hg.net_weights)
            and np.array_equal(assign, ref_assign)
        ):
            problems.append("rebuilt artifacts differ from uncached reference")
        warm = ArtifactStore(root)  # the rebuild must have re-stored cleanly
        with use_store(warm):
            fock_hypergraph(graph)
            semi_matching_balancer(graph, n_ranks, seed=seed)
        if warm.stats.disk_hits < 2:
            problems.append(
                f"re-stored entries not servable ({warm.stats.disk_hits} disk hits)"
            )
        if problems:
            raise AssertionError("; ".join(problems))
        return (
            f"{len(entries)} corrupt artifact entries healed, rebuilds "
            f"bit-identical, re-stored entries warm-servable"
        )

    for name, fn in (
        ("worker SIGKILL + hung cell + corrupted cache, bit-for-bit", crash_hang_corrupt),
        ("SIGINT interrupt + corrupted journal + --resume, bit-for-bit", interrupt_resume),
        ("poison cell quarantined, sweep completes", poison_quarantine),
        ("corrupted artifact store heals to bit-identical rebuilds", corrupted_artifacts),
    ):
        say(f"chaos: scenario: {name} ...")
        _scenario(report, name, fn)
        say(f"chaos:   -> {'PASS' if report.scenarios[-1].passed else 'FAIL'}"
            f" {report.scenarios[-1].detail}")
    return report
