"""Real-process chaos harness for the sweep execution layer.

Where :mod:`repro.faults` injects failures into the *simulated* machine,
this package injects them into the *host* machine actually running the
sweep: live worker processes are SIGKILLed mid-cell, cells are hung past
their wall-clock timeout, on-disk cache entries and journal lines are
truncated or corrupted, and a sweep is interrupted and resumed. The
harness then asserts the one property the whole fault-tolerant layer
exists to provide: **the disturbed sweep completes with result rows
bit-for-bit identical to a fault-free serial run**.

Entry points: :func:`run_chaos` (library) and ``python -m repro chaos``
(CLI; ``--quick`` is the CI smoke configuration). The distributed
fabric gets its own scenario set — SIGKILLed, frozen, severed, and
duplicating TCP workers — in :func:`run_distributed_chaos`
(``--distributed`` on the CLI), and the study service gets one —
overload bursts, racing submits and cancels, SIGTERM drains, retention
GC, stalled readers — in :func:`run_service_chaos` (``--service``).
"""

from repro.chaos.harness import (
    ChaosPlan,
    ChaosReport,
    ScenarioResult,
    chaos_execute_cell,
    results_identical,
    run_chaos,
)
from repro.chaos.distributed import run_distributed_chaos
from repro.chaos.service import run_service_chaos

__all__ = [
    "ChaosPlan",
    "ChaosReport",
    "ScenarioResult",
    "chaos_execute_cell",
    "results_identical",
    "run_chaos",
    "run_distributed_chaos",
    "run_service_chaos",
]
