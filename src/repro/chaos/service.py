"""Service-layer chaos: live loopback daemons under operational faults.

:func:`repro.chaos.run_chaos` disturbs the *sweep* (killed workers,
corrupted caches); :func:`repro.chaos.distributed.run_distributed_chaos`
disturbs the *fabric* (lost TCP workers). This module disturbs the
*service*: a real :class:`~repro.service.StudyService` (in-process or a
``python -m repro serve`` subprocess) is driven over actual HTTP while
the operational failure modes of PR 9 fire — overload bursts, racing
identical submissions, cancels racing promotion, SIGTERM drains, the
retention janitor, and readers that stop reading.

Every scenario ends on the same verdict the rest of the chaos family
uses: **the rows the service eventually serves are bit-for-bit identical
to a fault-free serial in-process run of the same spec**. Overload may
delay a study and a drain may checkpoint it across a restart, but
nothing the service layer does is allowed to change a single value.

Entry points: :func:`run_service_chaos` (library) and
``python -m repro chaos --service`` (CLI; ``--quick`` is the CI smoke
configuration).
"""

from __future__ import annotations

import http.client
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Callable

from repro.chaos.harness import ChaosReport, _scenario
from repro.core.jobspec import JobSpec, SourceSpec
from repro.service.client import ServiceClient
from repro.service.jobs import JobManager
from repro.service.retention import Janitor, RetentionPolicy
from repro.service.server import StudyService, wait_ready


# ----------------------------------------------------------------------
# Spec and HTTP helpers
# ----------------------------------------------------------------------

def _spec(seed: int, *, size: int = 3, wide: bool = False) -> JobSpec:
    """A small, distinct-by-seed study grid for one scenario.

    Serial executor on purpose: the faults under test live in the
    service layer (scheduler, retention, drain, HTTP), so the cheapest
    executor keeps the suite fast without weakening any scenario.
    """
    if wide:
        return JobSpec(
            source=SourceSpec(size=5, seed=seed),
            models=(
                "static_block",
                "static_cyclic",
                "counter_dynamic",
                "work_stealing",
            ),
            ranks=(16, 64, 256),
            seed=seed,
            executor="serial",
        )
    return JobSpec(
        source=SourceSpec(size=size, seed=seed),
        models=("static_block", "work_stealing"),
        ranks=(16, 32),
        seed=seed,
        executor="serial",
    )


def _serial_rows(spec: JobSpec) -> list[dict[str, Any]]:
    """The fault-free reference: the same study, serial, in-process."""
    from repro import api

    return api.run_job(
        spec.with_overrides(
            cache=False,
            executor="serial",
            jobs=1,
            timeout=None,
            deadline_s=None,
        ),
        cache=None,
    ).rows()


def _request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: "dict[str, Any] | None" = None,
    timeout: float = 60.0,
) -> tuple[int, dict[str, str], Any]:
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            method, path, body=json.dumps(body) if body is not None else None
        )
        response = conn.getresponse()
        headers = {k.lower(): v for k, v in response.getheaders()}
        data = response.read()
        try:
            decoded = json.loads(data) if data else {}
        except json.JSONDecodeError:
            decoded = {}
        return response.status, headers, decoded
    finally:
        conn.close()


def _fetch_rows(host: str, port: int, job_id: str) -> list[dict[str, Any]]:
    client = ServiceClient(host, port)
    return client.rows(job_id)


def _wait_terminal(
    host: str, port: int, job_id: str, timeout: float = 120.0
) -> dict[str, Any]:
    client = ServiceClient(host, port)
    return client.wait(job_id, timeout=timeout)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

def _scenario_overload_burst(workdir: pathlib.Path, seed: int) -> str:
    """A submit burst against a 1-deep queue: 503s carry Retry-After and
    the scheduler snapshot; retrying clients land every job; parity."""
    specs = [_spec(seed + i) for i in range(6)]
    manager = JobManager(
        workdir / "state", max_queued=1, capacity=1, workers=1
    )
    with StudyService(
        str(workdir / "state"), bind="127.0.0.1:0", manager=manager
    ) as svc:
        host, port = svc.endpoint
        rejected = 0
        for spec in specs:
            status, headers, body = _request(
                host, port, "POST", "/v1/jobs", spec.to_json()
            )
            if status == 503:
                rejected += 1
                assert "retry-after" in headers, "503 without Retry-After"
                for field in ("queued", "running", "capacity"):
                    assert field in body, f"503 body missing {field!r}"
            else:
                assert status in (200, 202), f"unexpected status {status}"
        assert rejected, "burst never tripped the bounded queue"
        # Retrying clients (what `repro submit` does) must land them all.
        ids = []
        for spec in specs:
            client = ServiceClient(
                host, port, backoff_base=0.05, max_retries=30
            )
            ids.append(client.submit(spec)["job_id"])
        for spec, job_id in zip(specs, ids):
            snapshot = _wait_terminal(host, port, job_id)
            assert snapshot["status"] == "done", snapshot.get("error")
            got = _fetch_rows(host, port, job_id)
            assert got == _serial_rows(spec), f"row drift in job {job_id[:12]}"
    return f"{rejected}/6 rejected with Retry-After, all landed on retry"


def _scenario_dedupe_storm(workdir: pathlib.Path, seed: int) -> str:
    """32 threads race identical submits: exactly one job exists."""
    spec = _spec(seed)
    outcomes: list[tuple[int, str]] = []
    errors: list[str] = []
    with StudyService(str(workdir / "state"), bind="127.0.0.1:0") as svc:
        host, port = svc.endpoint
        barrier = threading.Barrier(32)

        def storm() -> None:
            try:
                barrier.wait(timeout=30)
                status, _headers, body = _request(
                    host, port, "POST", "/v1/jobs", spec.to_json()
                )
                outcomes.append((status, body.get("job_id", "")))
            except Exception as exc:  # noqa: BLE001 - collected for verdict
                errors.append(f"{type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=storm) for _ in range(32)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, f"storm raised: {errors[:3]}"
        assert len(outcomes) == 32, "lost submissions in the storm"
        ids = {job_id for _status, job_id in outcomes}
        assert ids == {spec.job_key()}, f"dedupe split the job: {ids}"
        fresh = [s for s, _ in outcomes if s == 202]
        assert len(fresh) == 1, f"{len(fresh)} threads created the job"
        _status, _headers, listing = _request(host, port, "GET", "/v1/jobs")
        assert len(listing["jobs"]) == 1, "storm left more than one job"
        snapshot = _wait_terminal(host, port, spec.job_key())
        assert snapshot["status"] == "done", snapshot.get("error")
        got = _fetch_rows(host, port, spec.job_key())
        assert got == _serial_rows(spec), "row drift after dedupe storm"
    return "32 racing submits -> 1 job (1x 202, 31x dedupe), rows identical"


def _scenario_cancel_race(
    workdir: pathlib.Path, seed: int, rounds: int
) -> str:
    """Cancel racing queued->running promotion: no phantom slots, no
    cancelled spec ever executing, revival runs to parity.

    A capacity-1 manager keeps a backlog queued behind the running head,
    so the burst of cancels lands on both sides of the promotion — some
    strike jobs still in the queue (the branch the PR 9 race fix
    guards), some strike the job the runner just promoted.
    """
    manager = JobManager(workdir / "state", capacity=1, workers=1)
    with StudyService(
        str(workdir / "state"), bind="127.0.0.1:0", manager=manager
    ) as svc:
        host, port = svc.endpoint
        pre = post = 0
        for i in range(rounds):
            specs = [
                _spec(seed + 100 + i * 16 + j, size=2) for j in range(4)
            ]
            for spec in specs:
                status, _h, _b = _request(
                    host, port, "POST", "/v1/jobs", spec.to_json()
                )
                assert status in (200, 202), f"submit refused: {status}"
            # Cancel the whole batch immediately: the head is racing (or
            # past) promotion, the tail is still queued.
            for spec in specs:
                status, _h, verdict = _request(
                    host, port, "DELETE", f"/v1/jobs/{spec.job_key()}"
                )
                assert status == 200
                if verdict["status"] == "cancelled":
                    pre += 1
                else:
                    post += 1
            for spec in specs:
                snapshot = _wait_terminal(host, port, spec.job_key())
                assert snapshot["status"] in ("cancelled", "done"), (
                    f"round {i}: {snapshot['status']!r}"
                )
                if snapshot["status"] == "cancelled" and not snapshot["cells"]:
                    # Cancelled before any cell settled: it must stay
                    # cancelled — a phantom promotion would flip it back
                    # to running from a stale queue slot.
                    for _ in range(10):
                        snap = manager.get(spec.job_key())
                        assert snap is not None
                        assert snap.status == "cancelled", (
                            f"round {i}: cancelled job went {snap.status!r}"
                        )
                        time.sleep(0.01)
        assert pre, "no cancel ever landed on a queued job; race untested"
        # Invariant: nothing stuck — queue empty once everything settles.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            stats = manager.stats()
            if stats["queued_depth"] == 0 and stats["running_weight"] == 0:
                break
            time.sleep(0.05)
        stats = manager.stats()
        assert stats["queued_depth"] == 0, f"phantom queue slots: {stats}"
        assert stats["running_weight"] == 0, f"leaked running weight: {stats}"
        # Revival: resubmitting a cancelled spec requeues and completes.
        revive = _spec(seed + 100, size=2)
        status, _h, body = _request(
            host, port, "POST", "/v1/jobs", revive.to_json()
        )
        snapshot = _wait_terminal(host, port, revive.job_key())
        assert snapshot["status"] == "done", snapshot.get("error")
        got = _fetch_rows(host, port, revive.job_key())
        assert got == _serial_rows(revive), "row drift after revival"
    return (
        f"{rounds * 4} cancels ({pre} pre-promotion, {post} post), "
        "no phantom slots, revival identical"
    )


def _spawn_daemon(
    state_dir: pathlib.Path, *, drain_grace: float = 1.0
) -> tuple[subprocess.Popen, str, int]:
    import repro

    state_dir.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    src = pathlib.Path(repro.__file__).resolve().parent.parent
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"  # the endpoint line must cross the pipe
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--bind",
            "127.0.0.1:0",
            "--state-dir",
            str(state_dir),
            "--drain-grace",
            str(drain_grace),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(state_dir),
    )
    endpoint = None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if "listening on http://" in line:
            endpoint = line.split("http://", 1)[1].split()[0]
            break
    if endpoint is None:
        proc.kill()
        raise AssertionError("daemon never reported its endpoint")
    host, _, port_text = endpoint.rpartition(":")
    port = int(port_text)
    assert wait_ready(host, port), "daemon endpoint never became reachable"
    return proc, host, port


def _drain_stdout(proc: subprocess.Popen) -> None:
    # Keep the pipe from filling while the daemon logs job lifecycle.
    threading.Thread(
        target=lambda: proc.stdout.read(), daemon=True
    ).start()


def _scenario_drain_restart(workdir: pathlib.Path, seed: int) -> str:
    """SIGTERM mid-sweep: clean drain, restart resumes, rows identical."""
    spec = _spec(seed, wide=True)
    state = workdir / "state"
    proc, host, port = _spawn_daemon(state, drain_grace=0.2)
    _drain_stdout(proc)
    try:
        status, _h, accepted = _request(
            host, port, "POST", "/v1/jobs", spec.to_json()
        )
        assert status == 202, f"submit failed: {accepted}"
        job_id = accepted["job_id"]
        # Let it get into the sweep before the termination arrives.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _s, _h, snap = _request(host, port, "GET", f"/v1/jobs/{job_id}")
            if (
                snap.get("status") == "running"
                and snap.get("progress", {}).get("completed", 0) >= 1
            ):
                break
            time.sleep(0.02)
        else:
            raise AssertionError("job never started producing cells")
        proc.send_signal(signal.SIGTERM)
        exit_code = proc.wait(timeout=60)
        assert exit_code == 0, f"drain exit code {exit_code}"
    finally:
        if proc.poll() is None:
            proc.kill()
    # The drained record must be resumable, not terminal.
    record = json.loads(
        (state / "jobs" / f"{job_id}.json").read_text(encoding="utf-8")
    )
    assert record["status"] in ("queued", "running", "done"), record["status"]
    # Restart on the same state dir: the job finishes on its own.
    proc2, host2, port2 = _spawn_daemon(state, drain_grace=5.0)
    _drain_stdout(proc2)
    try:
        snapshot = _wait_terminal(host2, port2, job_id, timeout=180)
        assert snapshot["status"] == "done", snapshot.get("error")
        resumed = snapshot["progress"]["cached"]
        got = _fetch_rows(host2, port2, job_id)
        assert got == _serial_rows(spec), "row drift across drain+restart"
    finally:
        proc2.send_signal(signal.SIGTERM)
        try:
            proc2.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc2.kill()
    return f"drained cleanly, restart resumed {resumed} journaled cell(s)"


def _scenario_gc_vs_stream(workdir: pathlib.Path, seed: int) -> str:
    """A zero-TTL janitor racing a live row stream: the watched record
    survives every pass; the moment the stream closes, it is collected
    tombstone-clean."""
    spec = _spec(seed, size=2)
    manager = JobManager(workdir / "state")
    janitor = Janitor(manager, RetentionPolicy(ttl_s=0.0, interval_s=0.05))
    with StudyService(
        str(workdir / "state"), bind="127.0.0.1:0", manager=manager
    ) as svc:
        host, port = svc.endpoint
        client = ServiceClient(host, port)
        job_id = client.submit(spec)["job_id"]
        snapshot = client.wait(job_id)
        assert snapshot["status"] == "done", snapshot.get("error")
        reference = _serial_rows(spec)
        job = manager.get(job_id)
        assert job is not None
        with job.stream_ref():  # a reader holds the stream open...
            for _ in range(10):  # ...through many expiry passes
                removed = janitor.gc_now()
                assert removed["jobs"] == 0, "GC deleted a streamed record"
                assert manager.get(job_id) is not None
            # The stream itself still serves full, identical rows.
            assert client.rows(job_id) == reference, "row drift under GC"
        removed = janitor.gc_now()  # stream closed: now it may go
        assert removed["jobs"] == 1, f"expired job not collected: {removed}"
        assert manager.get(job_id) is None
        assert not manager.record_path(job_id).exists()
        tombs = list((workdir / "state" / "jobs").glob("*.tomb"))
        assert not tombs, f"tombstones left behind: {tombs}"
        # And the service recomputes the same rows on resubmission.
        job_id2 = client.submit(spec)["job_id"]
        client.wait(job_id2)
        assert client.rows(job_id2) == reference, "row drift after GC"
    return "10 zero-TTL passes skipped the live stream; collected after"


def _scenario_stalled_reader(workdir: pathlib.Path, seed: int) -> str:
    """A reader that stops reading: its connection is bounded away and
    the sweep, other readers, and the daemon never notice."""
    spec = _spec(seed, wide=True)
    manager = JobManager(workdir / "state")
    with StudyService(
        str(workdir / "state"),
        bind="127.0.0.1:0",
        manager=manager,
        stream_write_timeout=0.5,
        stream_sndbuf=2048,
    ) as svc:
        host, port = svc.endpoint
        client = ServiceClient(host, port)
        job_id = client.submit(spec)["job_id"]
        # The stalled subscriber: sends the request, then reads nothing.
        # A tiny receive buffer (paired with the service's tiny send
        # buffer) makes the kernel pipeline fill after a few rows, so
        # the server's per-write timeout genuinely engages.
        stalled = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        stalled.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
        stalled.settimeout(30)
        stalled.connect((host, port))
        stalled.sendall(
            f"GET /v1/jobs/{job_id}/rows HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n\r\n".encode("ascii")
        )
        time.sleep(0.2)  # let the handler enter the stream
        # Meanwhile the job and a well-behaved reader proceed untouched.
        snapshot = client.wait(job_id)
        assert snapshot["status"] == "done", snapshot.get("error")
        assert client.rows(job_id) == _serial_rows(spec), (
            "row drift with a stalled subscriber attached"
        )
        # The daemon stays healthy and sheds the stalled connection:
        # reading the already-buffered bytes must hit EOF (server-side
        # close), not block forever.
        status, _h, health = _request(host, port, "GET", "/v1/health")
        assert status == 200 and health["ok"] is True
        stalled.settimeout(10.0)
        deadline = time.monotonic() + 30
        closed = False
        while time.monotonic() < deadline:
            try:
                if stalled.recv(65536) == b"":
                    closed = True
                    break
            except socket.timeout:
                break
            except OSError:
                closed = True
                break
        stalled.close()
        assert closed, "server never dropped the stalled subscriber"
        # No handler thread is left holding the stream refcount.
        deadline = time.monotonic() + 10
        job = manager.get(job_id)
        while time.monotonic() < deadline and job.active_streams:
            time.sleep(0.05)
        assert job.active_streams == 0, "stalled stream leaked a refcount"
    return "stalled subscriber dropped by write timeout; sweep unaffected"


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------

def run_service_chaos(
    quick: bool = True,
    seed: int = 0,
    workdir: "str | os.PathLike | None" = None,
    log: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run the six service chaos scenarios; returns per-scenario verdicts.

    Mirrors :func:`repro.chaos.run_chaos` (and extends its report when
    invoked via ``python -m repro chaos --service``), but every scenario
    drives a *live* service over loopback HTTP:

    1. **overload burst** — a submit burst against a 1-deep queue; 503s
       must carry ``Retry-After`` + the scheduler snapshot, and retrying
       clients must land every job with identical rows.
    2. **dedupe storm** — 32 threads race identical submits; exactly one
       job may exist, rows identical.
    3. **cancel race** — cancels fired straight after submit race the
       queued->running promotion; no phantom queue slots, no cancelled
       spec ever executes, revival completes identically.
    4. **drain + restart** — SIGTERM mid-sweep; the daemon drains
       cleanly (exit 0), the restarted daemon resumes from the journal,
       rows identical.
    5. **GC vs live stream** — a zero-TTL janitor must skip a record
       with an open row stream, then collect it tombstone-clean.
    6. **stalled reader** — a subscriber that stops reading is dropped
       by the per-write timeout; the sweep and other readers never
       stall.
    """
    emit = log if log is not None else (lambda _msg: None)
    report = ChaosReport()
    rounds = 4 if quick else 12
    base = pathlib.Path(
        workdir if workdir is not None else tempfile.mkdtemp(prefix="repro-chaos-svc-")
    )
    base.mkdir(parents=True, exist_ok=True)
    scenarios: list[tuple[str, Callable[[pathlib.Path], str]]] = [
        (
            "service: overload burst -> 503 + Retry-After -> retried to parity",
            lambda d: _scenario_overload_burst(d, seed),
        ),
        (
            "service: 32-thread identical-submit dedupe storm",
            lambda d: _scenario_dedupe_storm(d, seed + 1000),
        ),
        (
            "service: cancel racing queued->running promotion",
            lambda d: _scenario_cancel_race(d, seed + 2000, rounds),
        ),
        (
            "service: SIGTERM drain mid-sweep -> restart resumes",
            lambda d: _scenario_drain_restart(d, seed + 3000),
        ),
        (
            "service: retention GC racing a live row stream",
            lambda d: _scenario_gc_vs_stream(d, seed + 4000),
        ),
        (
            "service: stalled NDJSON reader bounded away",
            lambda d: _scenario_stalled_reader(d, seed + 5000),
        ),
    ]
    for index, (name, fn) in enumerate(scenarios):
        emit(f"[service-chaos] {name}")
        scenario_dir = base / f"s{index}"
        scenario_dir.mkdir(parents=True, exist_ok=True)
        _scenario(report, name, lambda d=scenario_dir, f=fn: f(d))
        emit(f"[service-chaos]   -> {report.scenarios[-1].detail or 'FAILED'}")
    return report
