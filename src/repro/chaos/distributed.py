"""Distributed-fabric chaos: real TCP workers, real network failures.

:mod:`repro.chaos.harness` disturbs the *forked* sweep backend; this
module disturbs the *distributed* one (:mod:`repro.parallel.fabric`)
with the failure modes only a network can produce — and demands the
same verdict: every disturbed sweep's result rows must be
**bit-for-bit identical** to a fault-free serial reference.

Scenarios (each against live ``python -m repro worker`` subprocesses on
loopback TCP):

1. **remote worker SIGKILL mid-cell** — the worker SIGKILLs itself
   inside a cell (via the shared :class:`~repro.chaos.harness.ChaosPlan`
   kill fault); the server sees the connection drop, requeues exactly
   that cell through the shared
   :class:`~repro.parallel.supervisor.AttemptLedger`, and the surviving
   worker finishes the sweep.
2. **frozen worker past its lease** — a cell sleeps well past the lease;
   the server revokes the lease and requeues, and the frozen worker's
   eventual late result is deduplicated idempotently.
3. **severed socket mid-result-upload** — the worker writes half a
   result frame and hard-closes the socket (the
   ``REPRO_WORKER_CHAOS`` hook); the server discards the torn upload,
   requeues, and the reconnected worker keeps serving.
4. **duplicate delivery** — a worker pushes the same result frame twice;
   the second is dropped by dispatch-key dedupe, counted, and changes
   nothing.
5. **full remote loss → local degradation** — every remote worker is
   SIGKILLed mid-sweep; the executor reroutes the unfinished cells to
   the fallback local pool after one structured
   :class:`~repro.parallel.DegradedExecutionWarning`.
6. **killed worker + interrupt + resume** — a journaled distributed
   sweep loses a worker to SIGKILL *and* is interrupted; a fresh fabric
   resumes from the journal and completes with 100% row parity.
"""

from __future__ import annotations

import functools
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import warnings
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.chaos.harness import (
    ChaosPlan,
    ChaosReport,
    _compare_rows,
    _scenario,
    chaos_execute_cell,
)
from repro.chemistry.tasks import synthetic_task_graph
from repro.core.config import StudyConfig
from repro.core.sweep import SweepCell, SweepRunner, execute_cell, study_cells
from repro.faults.retry import RetryPolicy
from repro.parallel.executor import DegradedExecutionWarning
from repro.parallel.fabric import DistributedExecutor
from repro.parallel.worker import CHAOS_ENV


def _worker_env(extra: dict[str, str] | None = None) -> dict[str, str]:
    """Subprocess env that can import this repo (and chaos hooks)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in sys.path if p] + [env.get("PYTHONPATH", "")]
    ).strip(os.pathsep)
    if extra:
        env.update(extra)
    return env


def _spawn_workers(
    endpoint: tuple[str, int],
    n: int,
    *,
    env_extra: dict[str, str] | None = None,
    reconnect_attempts: int = 10,
) -> list[subprocess.Popen]:
    host, port = endpoint
    return [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--connect",
                f"{host}:{port}",
                "--id",
                f"chaos-w{i}",
                "--reconnect-attempts",
                str(reconnect_attempts),
                "--reconnect-delay",
                "0.2",
            ],
            env=_worker_env(env_extra),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for i in range(n)
    ]


def _reap_workers(workers: Sequence[subprocess.Popen]) -> None:
    for proc in workers:
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10.0)


def _slow_cell(delay: float, cell: SweepCell) -> Any:
    """A rate-limited :func:`execute_cell` (widens chaos timing windows).

    The sleep happens *before* the computation, so results are exactly
    what ``execute_cell`` produces.
    """
    time.sleep(delay)
    return execute_cell(cell)


def run_distributed_chaos(
    quick: bool = True,
    seed: int = 0,
    workdir: str | os.PathLike | None = None,
    log: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run the distributed chaos suite; returns per-scenario verdicts.

    Mirrors :func:`repro.chaos.run_chaos` (and extends its report when
    invoked via ``python -m repro chaos --distributed``), but every
    disturbed sweep runs on the ``distributed`` executor with real
    worker subprocesses over loopback TCP.
    """
    say = log if log is not None else (lambda _msg: None)
    base = Path(workdir) if workdir is not None else Path(
        tempfile.mkdtemp(prefix="repro-chaos-dist-")
    )
    base = base / "distributed"
    base.mkdir(parents=True, exist_ok=True)

    if quick:
        graph = synthetic_task_graph(150, 8, seed=3, skew=1.2)
        config = StudyConfig(
            models=("static_block", "counter_dynamic", "work_stealing"),
            n_ranks=(4, 8),
            seed=seed,
        )
    else:
        graph = synthetic_task_graph(600, 16, seed=3, skew=1.3)
        config = StudyConfig(
            models=("static_block", "counter_dynamic", "work_stealing"),
            n_ranks=(4, 8, 16),
            seed=seed,
        )
    cells = study_cells(config, graph)
    labels = [cell.label for cell in cells]
    retry = RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.2, jitter=0.0)
    report = ChaosReport(cells=len(cells))

    say(f"chaos[distributed]: {len(cells)} cells, loopback TCP workers")
    say("chaos[distributed]: computing fault-free serial reference ...")
    reference = SweepRunner(jobs=1, cache=None).run_cells(cells)

    def fabric(**kwargs: Any) -> DistributedExecutor:
        kwargs.setdefault("lease", 15.0)
        kwargs.setdefault("connect_timeout", 30.0)
        kwargs.setdefault("degrade_after", 10.0)
        return DistributedExecutor(**kwargs)

    def run_disturbed(
        executor: DistributedExecutor,
        *,
        cell_fn: Callable[[SweepCell], Any] | None = None,
        lease: float | None = None,
        **runner_kwargs: Any,
    ) -> tuple[SweepRunner, list[Any]]:
        runner = SweepRunner(
            jobs=2,
            retry=retry,
            on_error="quarantine",
            cell_fn=cell_fn,
            executor=executor,
            timeout=lease,
            **runner_kwargs,
        )
        return runner, runner.run_cells(cells)

    # -- D1: remote worker SIGKILL mid-cell -----------------------------
    def remote_sigkill() -> str:
        markers = base / "d1-markers"
        markers.mkdir(parents=True, exist_ok=True)
        plan = ChaosPlan(marker_dir=str(markers), kill=(labels[1],))
        with fabric() as ex:
            workers = _spawn_workers(ex.endpoint, 2, reconnect_attempts=0)
            try:
                runner, disturbed = run_disturbed(
                    ex, cell_fn=functools.partial(chaos_execute_cell, plan)
                )
            finally:
                ex.close()
                _reap_workers(workers)
        problems = _compare_rows(reference, disturbed)
        stats = runner.supervisor_stats
        if stats.disconnects < 1:
            problems.append("no disconnect observed (SIGKILL not injected?)")
        if stats.crashes < 1:
            problems.append("worker death not counted as a crash")
        if stats.retries < 1:
            problems.append("killed cell was never requeued")
        if problems:
            raise AssertionError("; ".join(problems))
        return (
            f"{stats.crashes} crash(es), {stats.disconnects} disconnect(s), "
            f"{stats.retries} requeue(s); rows identical"
        )

    # -- D2: frozen worker past its lease -------------------------------
    def lease_expiry_freeze() -> str:
        markers = base / "d2-markers"
        markers.mkdir(parents=True, exist_ok=True)
        lease = 1.0
        plan = ChaosPlan(
            marker_dir=str(markers),
            hang=(labels[2],),
            hang_seconds=lease * 3.0,
        )
        with fabric(lease=lease) as ex:
            workers = _spawn_workers(ex.endpoint, 2)
            try:
                runner, disturbed = run_disturbed(
                    ex,
                    cell_fn=functools.partial(chaos_execute_cell, plan),
                    lease=lease,
                )
            finally:
                ex.close()
                _reap_workers(workers)
        problems = _compare_rows(reference, disturbed)
        stats = runner.supervisor_stats
        if stats.lease_expiries < 1:
            problems.append("no lease expiry observed (freeze not injected?)")
        if problems:
            raise AssertionError("; ".join(problems))
        return (
            f"{stats.lease_expiries} lease expiry(ies), {stats.duplicates} "
            f"late duplicate(s) deduped; rows identical"
        )

    # -- D3: severed socket mid-result-upload ---------------------------
    def severed_upload() -> str:
        markers = base / "d3-markers"
        markers.mkdir(parents=True, exist_ok=True)
        spec = json.dumps({"marker_dir": str(markers), "sever": [labels[0]]})
        with fabric() as ex:
            workers = _spawn_workers(
                ex.endpoint, 2, env_extra={CHAOS_ENV: spec}
            )
            try:
                runner, disturbed = run_disturbed(ex)
            finally:
                ex.close()
                _reap_workers(workers)
        problems = _compare_rows(reference, disturbed)
        stats = runner.supervisor_stats
        if stats.disconnects < 1:
            problems.append("no disconnect observed (sever not injected?)")
        if stats.retries < 1:
            problems.append("torn-upload cell was never requeued")
        if problems:
            raise AssertionError("; ".join(problems))
        return (
            f"torn upload dropped, {stats.retries} requeue(s), "
            f"{stats.disconnects} disconnect(s); rows identical"
        )

    # -- D4: duplicate delivery -----------------------------------------
    def duplicate_delivery() -> str:
        markers = base / "d4-markers"
        markers.mkdir(parents=True, exist_ok=True)
        # Duplicate an early cell so the sweep is still consuming events
        # when the second copy lands.
        spec = json.dumps({"marker_dir": str(markers), "dup": [labels[0]]})
        with fabric() as ex:
            workers = _spawn_workers(
                ex.endpoint, 2, env_extra={CHAOS_ENV: spec}
            )
            try:
                runner, disturbed = run_disturbed(ex)
            finally:
                ex.close()
                _reap_workers(workers)
        problems = _compare_rows(reference, disturbed)
        stats = runner.supervisor_stats
        if stats.duplicates < 1:
            problems.append("no duplicate observed (dup not injected?)")
        if stats.completed != len(cells):
            problems.append(
                f"completed {stats.completed} != {len(cells)} "
                "(duplicate was double-counted?)"
            )
        if problems:
            raise AssertionError("; ".join(problems))
        return f"{stats.duplicates} duplicate(s) deduped; rows identical"

    # -- D5: full remote loss -> local degradation ----------------------
    def full_remote_loss() -> str:
        with fabric(degrade_after=1.0) as ex:
            workers = _spawn_workers(ex.endpoint, 2, reconnect_attempts=0)
            killed = {"n": 0}

            def kill_all_after_first(_index: int, _pid: int) -> None:
                # First dispatches land, then the whole fleet dies: the
                # executor must reroute everything unfinished locally.
                if killed["n"] == 0:
                    killed["n"] = 1
                    for proc in workers:
                        proc.send_signal(signal.SIGKILL)

            runner = SweepRunner(
                jobs=2,
                retry=retry,
                on_error="quarantine",
                cell_fn=functools.partial(_slow_cell, 0.5),
                executor=ex,
            )
            try:
                with warnings.catch_warnings(record=True) as caught:
                    warnings.simplefilter("always")
                    disturbed = _run_with_dispatch_hook(
                        runner, cells, kill_all_after_first
                    )
            finally:
                ex.close()
                _reap_workers(workers)
        problems = _compare_rows(reference, disturbed)
        stats = runner.supervisor_stats
        degradations = [
            w for w in caught if isinstance(w.message, DegradedExecutionWarning)
        ]
        if stats.degraded < 1:
            problems.append("no cells were rerouted to the local fallback")
        if not degradations:
            problems.append("no DegradedExecutionWarning emitted")
        elif degradations[0].message.backend != "distributed":
            problems.append(
                f"warning names backend {degradations[0].message.backend!r}"
            )
        if problems:
            raise AssertionError("; ".join(problems))
        return (
            f"fleet killed, {stats.degraded} cell(s) rerouted locally with "
            f"a structured warning; rows identical"
        )

    # -- D6: killed worker + interrupt + resume -------------------------
    def kill_interrupt_resume() -> str:
        markers = base / "d6-markers"
        markers.mkdir(parents=True, exist_ok=True)
        cache_dir = base / "d6-cache"
        journal_dir = base / "d6-journal"
        plan = ChaosPlan(marker_dir=str(markers), kill=(labels[1],))
        stop_after = max(2, len(cells) // 2)
        ticks = {"n": 0}

        def interrupter(_event: Any) -> None:
            ticks["n"] += 1
            if ticks["n"] >= stop_after:
                raise KeyboardInterrupt

        with fabric() as ex:
            workers = _spawn_workers(ex.endpoint, 2, reconnect_attempts=0)
            first = SweepRunner(
                jobs=2,
                cache=cache_dir,
                journal=journal_dir,
                retry=retry,
                on_error="quarantine",
                cell_fn=functools.partial(chaos_execute_cell, plan),
                executor=ex,
                progress=interrupter,
            )
            interrupted = False
            try:
                first.run_cells(cells)
            except KeyboardInterrupt:
                interrupted = True
            finally:
                ex.close()
                _reap_workers(workers)
        if not interrupted:
            raise AssertionError("sweep was not interrupted")
        if first.stats.computed < 1:
            raise AssertionError("nothing journaled before the interrupt")

        # A fresh fabric + fresh workers, as a restarted driver would.
        with fabric() as ex2:
            workers = _spawn_workers(ex2.endpoint, 2)
            try:
                second = SweepRunner(
                    jobs=2,
                    cache=cache_dir,
                    journal=journal_dir,
                    retry=retry,
                    on_error="quarantine",
                    executor=ex2,
                    resume=True,
                )
                resumed = second.run_cells(cells)
            finally:
                ex2.close()
                _reap_workers(workers)
        problems = _compare_rows(reference, resumed)
        if second.stats.resumed < 1:
            problems.append("resume recomputed everything (journal unused)")
        if second.stats.resumed + second.stats.cached + second.stats.computed != len(
            cells
        ):
            problems.append("row count does not add up to the full grid")
        if problems:
            raise AssertionError("; ".join(problems))
        return (
            f"worker killed + interrupt after {first.stats.computed}, "
            f"resumed {second.stats.resumed}, recomputed "
            f"{second.stats.computed}; 100% row parity"
        )

    for name, fn in (
        ("distributed: remote worker SIGKILL mid-cell, bit-for-bit", remote_sigkill),
        ("distributed: frozen worker past lease, late result deduped", lease_expiry_freeze),
        ("distributed: socket severed mid-result-upload", severed_upload),
        ("distributed: duplicate delivery deduped idempotently", duplicate_delivery),
        ("distributed: full remote loss degrades to local pool", full_remote_loss),
        ("distributed: killed worker + interrupt + resume, 100% parity", kill_interrupt_resume),
    ):
        say(f"chaos[distributed]: scenario: {name} ...")
        _scenario(report, name, fn)
        say(
            f"chaos[distributed]:   -> "
            f"{'PASS' if report.scenarios[-1].passed else 'FAIL'} "
            f"{report.scenarios[-1].detail}"
        )
    return report


def _run_with_dispatch_hook(
    runner: SweepRunner,
    cells: Sequence[SweepCell],
    on_dispatch: Callable[[int, int], None],
) -> list[Any]:
    """Run cells with a dispatch hook threaded through the executor."""
    executor = runner.executor
    original_run = executor.run

    def run_with_hook(fn, jobs, **kwargs):
        kwargs["on_dispatch"] = on_dispatch
        return original_run(fn, jobs, **kwargs)

    executor.run = run_with_hook  # type: ignore[method-assign]
    try:
        return runner.run_cells(cells)
    finally:
        executor.run = original_run  # type: ignore[method-assign]
