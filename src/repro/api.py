"""The unified public facade: one import, one signature family.

Everything a study, benchmark, example, or CLI command needs lives here
under a single consistent calling convention:

- the *thing being studied* (a ``Workload``, ``ScfProblem``, or
  ``TaskGraph``) is always the positional ``source`` argument;
- every tuning knob is keyword-only;
- model options use one shared vocabulary
  (:func:`~repro.exec_models.registry.normalize_model_options`) across
  :func:`make_model`, :func:`run_model`, and :func:`simulate_scf`.

The sweep entry points (:func:`sweep`, :class:`SweepRunner`) add
process-parallel execution and content-addressed result caching on top;
``sweep(...)`` with default arguments is behaviourally identical to
``run_study(...)`` — same seeds, same rows, bit for bit.

``repro.api.__all__`` is the documented stable surface (see
``docs/api_tour.md``); anything importable elsewhere is an internal
layer that may move between releases.
"""

from __future__ import annotations

from typing import Any, Callable

from repro import __version__

from repro.chemistry.molecules import (
    Molecule,
    linear_alkane,
    random_cluster,
    water_cluster,
)
from repro.chemistry.scf import ScfProblem, ScfResult
from repro.chemistry.scf import run_scf as _run_scf
from repro.chemistry.tasks import TaskGraph
from repro.core.artifacts import (
    ArtifactStats,
    ArtifactStore,
    artifact_key,
    configure_artifacts,
    default_store,
    use_store,
)
from repro.core.cache import (
    CACHE_SALT,
    CacheStats,
    ResultCache,
    default_cache_dir,
    fingerprint,
)
from repro.core.config import MACHINE_PRESETS, StudyConfig
from repro.core.jobspec import JobSpec, JobSpecError, SourceSpec
from repro.core.journal import JournalEntry, SweepJournal
from repro.core.report import format_failures, format_table
from repro.core.results import StudyReport
from repro.core.study import (
    Workload,
    build_workload,
    resolve_source,
    run_study,
)
from repro.core.sweep import (
    SweepCell,
    SweepProgress,
    SweepRunner,
    SweepStats,
    print_progress,
    study_cells,
)
from repro.exec_models.base import RunResult
from repro.exec_models.registry import (
    MODEL_NAMES,
    make_model,
    normalize_model_options,
)
from repro.exec_models.scf_simulation import ScfSimResult, ScfSimulation
from repro.faults import FaultPlan, RetryPolicy
from repro.parallel.executor import (
    CellExecutor,
    DegradedExecutionWarning,
    WorkerError,
    executor_names,
    format_executor_spec,
    make_executor,
    parse_executor_spec,
    register_executor,
)
from repro.parallel.fabric import DistributedExecutor
from repro.parallel.supervisor import HOST_RETRY_POLICY, CellFailure
from repro.simulate.machine import (
    MachineSpec,
    commodity_cluster,
    fast_network_cluster,
    hierarchical_cluster,
)

__all__ = [
    # facade metadata
    "__version__",
    "api_surface",
    # workload construction
    "Molecule",
    "water_cluster",
    "linear_alkane",
    "random_cluster",
    "ScfProblem",
    "TaskGraph",
    "Workload",
    "build_workload",
    "resolve_source",
    # machines
    "MachineSpec",
    "MACHINE_PRESETS",
    "commodity_cluster",
    "fast_network_cluster",
    "hierarchical_cluster",
    # single runs
    "run_scf",
    "ScfResult",
    "run_model",
    "simulate_scf",
    "make_model",
    "normalize_model_options",
    "MODEL_NAMES",
    "RunResult",
    "ScfSimulation",
    "ScfSimResult",
    "FaultPlan",
    # studies and sweeps
    "StudyConfig",
    "StudyReport",
    "run_study",
    "sweep",
    "JobSpec",
    "SourceSpec",
    "JobSpecError",
    "run_job",
    "study_cells",
    "SweepRunner",
    "SweepCell",
    "SweepProgress",
    "SweepStats",
    "print_progress",
    # caching
    "ResultCache",
    "CacheStats",
    "default_cache_dir",
    "fingerprint",
    "CACHE_SALT",
    # artifact store (memoized workload/hypergraph/partition builds)
    "ArtifactStore",
    "ArtifactStats",
    "artifact_key",
    "configure_artifacts",
    "default_store",
    "use_store",
    # fault tolerance (host layer)
    "CellFailure",
    "WorkerError",
    "RetryPolicy",
    "HOST_RETRY_POLICY",
    "SweepJournal",
    "JournalEntry",
    # executor backends (local pool / serial / distributed TCP fabric)
    "CellExecutor",
    "DistributedExecutor",
    "DegradedExecutionWarning",
    "make_executor",
    "register_executor",
    "executor_names",
    "parse_executor_spec",
    "format_executor_spec",
    # rendering
    "format_table",
    "format_failures",
]


def api_surface() -> tuple[str, ...]:
    """The frozen public surface: ``__all__`` as an immutable tuple.

    Pinned by a test (``tests/core/test_api.py``) so accidental surface
    growth — a new export sneaking into ``__all__`` without a conscious
    decision — fails CI instead of shipping.
    """
    return tuple(__all__)


def run_scf(molecule: Molecule, **options: Any) -> ScfResult:
    """Converge a restricted Hartree-Fock calculation.

    Facade spelling of :func:`repro.chemistry.scf.run_scf` with every
    option keyword-only (``problem=``, ``g_builder=``, ``accelerator=``,
    ``max_iterations=``, ...).
    """
    return _run_scf(molecule, **options)


def run_model(
    model: str,
    source: Any,
    machine: MachineSpec,
    *,
    seed: int = 0,
    faults: FaultPlan | None = None,
    trace_intervals: bool = False,
    **options: Any,
) -> RunResult:
    """Simulate one execution model on one workload and machine.

    ``source`` is a ``Workload``, ``ScfProblem``, or ``TaskGraph``;
    ``options`` are model knobs in the shared vocabulary, e.g.
    ``run_model("work_stealing", graph, machine, steal_policy="one")``.
    """
    return make_model(model, **options).run(
        resolve_source(source),
        machine,
        seed=seed,
        faults=faults,
        trace_intervals=trace_intervals,
    )


def simulate_scf(
    mode: str,
    source: Any,
    machine: MachineSpec,
    *,
    n_iterations: int = 5,
    seed: int = 0,
    **options: Any,
) -> ScfSimResult:
    """Simulate a whole multi-iteration SCF under one discipline.

    Facade spelling of :class:`~repro.exec_models.ScfSimulation` with the
    same ``source`` polymorphism and option vocabulary as
    :func:`run_model`.
    """
    return ScfSimulation(mode, **options).run(
        resolve_source(source), machine, n_iterations=n_iterations, seed=seed
    )


def sweep(
    config: StudyConfig,
    source: Any,
    *,
    jobs: int = 1,
    cache: ResultCache | str | None = None,
    progress: Callable[[SweepProgress], None] | None = None,
    timeout: float | None = None,
    retry: RetryPolicy | None = None,
    on_error: str = "raise",
    journal: SweepJournal | str | None = None,
    resume: bool = False,
    executor: CellExecutor | str = "local",
    on_result: Callable[..., None] | None = None,
    deadline: float | None = None,
) -> StudyReport:
    """Run a study grid through the parallel, cached sweep orchestrator.

    Identical results to ``run_study(config, source)`` — the sweep only
    changes *how* cells execute (worker processes, cache reuse, crash
    recovery), never what they compute. Pass
    ``cache=default_cache_dir()`` (or any directory) to persist results
    across runs; ``jobs=N`` to fan cache-miss cells across N supervised
    forked workers.

    Host-level fault tolerance (see ``docs/sweep.md``): ``timeout``
    bounds each cell's wall clock (hung workers are killed and the cell
    retried), ``retry`` sets the attempt budget/backoff,
    ``on_error="quarantine"`` records poison cells on
    ``report.failures`` instead of aborting, and ``journal``/``resume``
    checkpoint completed cells so an interrupted sweep continues where
    it stopped.

    ``executor`` selects the execution backend via the canonical spec
    string (:func:`parse_executor_spec`): ``"local"`` (supervised forked
    workers, the default), ``"serial"``, ``"distributed?bind=...&
    lease=..."``, or an already-constructed instance such as a
    :class:`DistributedExecutor` serving ``python -m repro worker``
    daemons over TCP (see ``docs/distributed.md``). All backends share
    the same retry/quarantine semantics and produce identical reports.

    ``on_result`` receives every settled cell *with its result* in
    completion order (see :class:`SweepRunner`); it is how the job
    service streams rows while a sweep is still running.

    ``deadline`` is an absolute ``time.monotonic()`` instant bounding
    the whole sweep: cells not settled by then quarantine as
    ``DeadlineExceeded`` failures (or raise under ``on_error="raise"``).
    Completed cells stay cached/journaled, so an expired sweep resumes
    bit-for-bit.
    """
    runner = SweepRunner(
        jobs=jobs,
        cache=cache,
        progress=progress,
        timeout=timeout,
        retry=retry,
        on_error=on_error,
        journal=journal,
        resume=resume,
        executor=executor,
        on_result=on_result,
        deadline=deadline,
    )
    return runner.run_study(config, source)


def run_job(
    spec: JobSpec,
    *,
    source: Any | None = None,
    executor: CellExecutor | None = None,
    progress: Callable[[SweepProgress], None] | None = None,
    on_result: Callable[..., None] | None = None,
    journal: SweepJournal | str | None = None,
    resume: bool = False,
    cache: ResultCache | str | None = None,
    deadline: float | None = None,
) -> StudyReport:
    """Execute one :class:`JobSpec` end to end — the one path under
    every surface (``repro study``, ``repro serve``, and programmatic
    use all terminate here).

    The spec is validated, its declarative source is materialized into a
    built problem (through the artifact store when
    ``spec.artifact_cache``), and the study runs through :func:`sweep`
    with the spec's executor/jobs/timeout/retry settings and
    ``on_error="quarantine"`` (a poison cell yields a failure row, not
    an aborted job).

    ``executor`` overrides the spec's executor string with a live
    instance (the service's backend router does this — e.g. to reuse a
    daemon-lifetime distributed fabric). ``cache``/``journal``/``resume``
    override the spec's cache settings the same way (the service owns
    its state directory; the CLI derives them from ``--cache-dir``).
    ``source`` supplies an already-built problem for the spec's source
    recipe — callers that need the built graph for their own reporting
    (the CLI prints basis/task counts) pass it to avoid a double build.

    ``deadline`` (absolute ``time.monotonic()`` instant) bounds the
    sweep; when omitted, ``spec.deadline_s`` (relative seconds, an
    execution knob outside the job identity) is converted to an
    absolute deadline at entry.
    """
    import pathlib
    import time

    from repro.simulate.sched import set_engine_mode

    spec.validate()
    if deadline is None and spec.deadline_s is not None:
        deadline = time.monotonic() + spec.deadline_s
    # Engine mode is process-wide (forked sweep workers inherit it via
    # the environment) and performance-only: every mode is bit-for-bit
    # equivalent, so it is deliberately not part of the job identity.
    set_engine_mode(spec.engine)
    if cache is None and spec.cache:
        cache = spec.cache_dir or default_cache_dir()
    cache_root = cache.root if isinstance(cache, ResultCache) else cache
    if not spec.artifact_cache:
        configure_artifacts(enabled=False)
    elif cache_root is not None:
        configure_artifacts(pathlib.Path(cache_root) / "artifacts")
    problem = source if source is not None else spec.source.build()
    config = spec.study_config(problem)
    if journal is None and cache_root is not None:
        journal = str(pathlib.Path(cache_root) / "journal")
    return sweep(
        config,
        problem,
        jobs=spec.jobs,
        cache=cache,
        progress=progress,
        timeout=spec.timeout,
        retry=spec.retry_policy(),
        on_error="quarantine",
        journal=journal,
        resume=resume,
        executor=executor if executor is not None else spec.executor,
        on_result=on_result,
        deadline=deadline,
    )
