"""Pluggable scheduler layer behind :class:`~repro.simulate.engine.Engine`.

PR 3+5 flattened the pure-Python event hot path; what remains is
per-event interpreter and heap overhead. This module provides the next
layer down, selected at runtime via ``REPRO_ENGINE``:

``python``
    The baseline :class:`Engine`: C ``heapq`` over ``(time, seq, cb)``
    tuples plus the zero-delay run-queue. Always available.

``bucket``
    :class:`BucketEngine`: a calendar-queue timeline
    (:class:`BucketTimeline`) replaces the heap for timed events. Events
    hash into fixed-width time buckets held in a dict; only *bucket
    indices* go through a heap, so the per-event cost is O(1) amortized
    when events cluster in time (the steal-heavy regime: bursts of
    short-horizon timeouts and wake-ups at nearby timestamps share a
    bucket and are ordered by one near-sorted ``list.sort``).

``compiled``
    :class:`CompiledEngine`: the run loop and the ``Process.resume``
    fast path execute inside a small C extension
    (``repro.simulate._engine_core``), removing the interpreter from the
    per-event path entirely. The extension is built on demand with the
    system C compiler and cached; when no compiler/headers are available
    the engine degrades to ``python`` with a one-time
    :class:`DegradedEngineWarning`.

``auto`` (default)
    ``compiled`` when the extension can be imported or quietly built,
    else ``python`` — silently, so environments without a toolchain
    behave exactly as before.

Order equivalence
-----------------

Every engine dispatches in exact ``(time, seq)`` order — the same order
the baseline heap engine produces — so simulations are bit-for-bit
identical across modes (pinned by ``tests/test_bitwise_equivalence.py``
run under each mode in CI, and by a randomized property test in
``tests/simulate/test_sched.py``). The argument for the bucket timeline:

- bucket index ``int(time * inv_width)`` is monotone in ``time``, so
  entries in a lower-index bucket strictly precede (by time) every entry
  in a higher-index bucket;
- buckets are activated in ascending index order (indices go through a
  min-heap, and a late insert into a lower index than the active bucket
  demotes the active bucket back before activating the lower one);
- within a bucket, entries are sorted by the full ``(time, seq)`` key,
  and equal-time entries necessarily share a bucket, so FIFO tie-breaks
  are preserved;
- a late insert *into* the active bucket only carries keys that sort
  after everything already dispatched (its time is >= ``now`` and its
  seq exceeds every allocated seq), so the lazy re-sort never reorders
  the past.

The engine mode is an execution-layer knob, like the executor choice: it
must never change results, so it is excluded from ``JobSpec.job_key()``
and result caching.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import math
import os
import shutil
import subprocess
import sys
import sysconfig
import tempfile
import warnings
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable

from repro.simulate.engine import (
    Engine,
    Process,
    Request,
    Resource,
    SimulationError,
    Timeout,
    _timeout_pool,
    _timeout_pool_append,
)
from repro.util import ConfigurationError, check_non_negative

__all__ = [
    "ENGINE_MODES",
    "BucketEngine",
    "BucketTimeline",
    "CompiledEngine",
    "DegradedEngineWarning",
    "compiled_available",
    "engine_mode",
    "make_engine",
    "set_engine_mode",
]

#: Recognized values of ``REPRO_ENGINE`` / ``JobSpec.engine``.
ENGINE_MODES = ("auto", "python", "bucket", "compiled")

#: Default bucket width in simulated seconds. Network latencies and
#: software overheads in the machine presets are O(1e-6); microsecond
#: buckets keep bursts of short-horizon events in one bucket while
#: widely spaced compute completions each take their own (one heap op
#: per *bucket*, not per event, either way).
DEFAULT_BUCKET_WIDTH = 1.0e-6


class DegradedEngineWarning(UserWarning):
    """``REPRO_ENGINE=compiled`` was requested but the compiled engine
    core is unavailable; execution degrades to the pure-Python engine
    (results are identical, only slower)."""


def engine_mode() -> str:
    """The engine mode requested by ``REPRO_ENGINE`` (default ``auto``)."""
    mode = os.environ.get("REPRO_ENGINE", "auto").strip().lower() or "auto"
    if mode not in ENGINE_MODES:
        raise ConfigurationError(
            f"REPRO_ENGINE={mode!r} is not a valid engine mode; "
            f"expected one of {', '.join(ENGINE_MODES)}"
        )
    return mode


def set_engine_mode(mode: str) -> str:
    """Select the engine mode process-wide; returns the previous mode.

    Writes ``REPRO_ENGINE`` so forked/spawned sweep workers inherit the
    choice — the engine is constructed inside the worker, not shipped to
    it.
    """
    if mode not in ENGINE_MODES:
        raise ConfigurationError(
            f"engine mode {mode!r} is not valid; "
            f"expected one of {', '.join(ENGINE_MODES)}"
        )
    previous = os.environ.get("REPRO_ENGINE", "auto") or "auto"
    os.environ["REPRO_ENGINE"] = mode
    return previous


def make_engine() -> Engine:
    """Construct an engine honoring the current ``REPRO_ENGINE`` mode."""
    mode = engine_mode()
    if mode == "python":
        return Engine()
    if mode == "bucket":
        return BucketEngine()
    core = _load_engine_core()
    if core is not None:
        return CompiledEngine()
    if mode == "compiled":
        if os.environ.get("REPRO_ENGINE_REQUIRE", "").strip() == "1":
            raise ConfigurationError(
                "REPRO_ENGINE=compiled with REPRO_ENGINE_REQUIRE=1, but the "
                "compiled engine core is unavailable"
                + (f": {_last_build_error}" if _last_build_error else "")
            )
        _warn_degraded()
    return Engine()


_degraded_warned = False

#: Why the last compiled-core build/import attempt failed (compiler
#: stderr tail or a one-line diagnosis); surfaced in the degraded-engine
#: warning and the REPRO_ENGINE_REQUIRE error so CI failures are
#: actionable without rerunning the build by hand.
_last_build_error: str | None = None


def _note_build_error(message: str) -> None:
    global _last_build_error
    _last_build_error = message


def _warn_degraded() -> None:
    global _degraded_warned
    if _degraded_warned:
        return
    _degraded_warned = True
    detail = f" Build failure: {_last_build_error}" if _last_build_error else ""
    warnings.warn(
        "REPRO_ENGINE=compiled requested but the compiled engine core is "
        "unavailable (no C compiler/headers, or the build failed); "
        "falling back to the pure-Python engine. Results are identical."
        + detail,
        DegradedEngineWarning,
        stacklevel=3,
    )


# --------------------------------------------------------------------------
# Bucketed timeline


class BucketTimeline:
    """Calendar-queue priority structure over ``(time, seq, callback)``.

    Entries hash into fixed-width time buckets (a dict keyed by
    ``int(time * inv_width)``); bucket *indices* go through a min-heap,
    entered once per bucket incarnation. The minimal bucket is held
    "active" as a descending-sorted list popped from the end; inserts
    into the active bucket set a dirty flag and the list is lazily
    re-sorted (near-sorted input, so Timsort is ~linear). Pop order is
    therefore exact global ``(time, seq)`` order — see the module
    docstring for the argument.

    Invariant: an index is in ``_idx_heap`` iff it is a key of
    ``_buckets`` (exactly once each); the active bucket's entries live
    only in ``_active``.
    """

    __slots__ = ("_inv_width", "_buckets", "_idx_heap", "_active", "_active_idx", "_dirty", "_count")

    def __init__(self, width: float = DEFAULT_BUCKET_WIDTH) -> None:
        if not (width > 0.0) or not math.isfinite(width):
            raise ConfigurationError(f"bucket width must be finite and > 0, got {width!r}")
        self._inv_width = 1.0 / width
        self._buckets: dict[int, list[tuple[float, int, Callable[..., None]]]] = {}
        self._idx_heap: list[int] = []
        self._active: list[tuple[float, int, Callable[..., None]]] = []
        self._active_idx = -1
        self._dirty = False
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, entry: tuple[float, int, Callable[..., None]]) -> None:
        idx = int(entry[0] * self._inv_width)
        if idx == self._active_idx:
            self._active.append(entry)
            self._dirty = True
        else:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [entry]
                heappush(self._idx_heap, idx)
            else:
                bucket.append(entry)
        self._count += 1

    def peek(self) -> tuple[float, int, Callable[..., None]] | None:
        """The minimal entry by ``(time, seq)``, or None when empty."""
        active = self._active
        idx_heap = self._idx_heap
        if idx_heap and (not active or idx_heap[0] < self._active_idx):
            if active:
                # A push landed below the active bucket (possible after a
                # horizon-bounded run advanced activation past ``now``):
                # demote the active bucket and activate the lower index.
                self._buckets[self._active_idx] = active
                heappush(idx_heap, self._active_idx)
            idx = heappop(idx_heap)
            active = self._active = self._buckets.pop(idx)
            self._active_idx = idx
            active.sort(reverse=True)
            self._dirty = False
        elif not active:
            return None
        elif self._dirty:
            active.sort(reverse=True)
            self._dirty = False
        return active[-1]

    def pop(self) -> tuple[float, int, Callable[..., None]]:
        entry = self.peek()
        if entry is None:
            raise IndexError("pop from an empty BucketTimeline")
        self._active.pop()
        self._count -= 1
        return entry


class BucketEngine(Engine):
    """:class:`Engine` with the heap replaced by a :class:`BucketTimeline`.

    ``_heap`` stays allocated (and empty) so introspection keeps working;
    every timed event goes through :attr:`timeline` instead, counted in
    ``bucket_dispatched``. The zero-delay run-queue, sequence counter,
    processes, resources and events are shared with the base engine
    unchanged.
    """

    __slots__ = ("timeline",)

    def __init__(self, width: float = DEFAULT_BUCKET_WIDTH) -> None:
        super().__init__()
        self.timeline = BucketTimeline(width)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        check_non_negative("delay", delay)
        seq = self._seq
        self._seq = seq + 1
        self.timeline.push((self.now + delay, seq, callback))

    def run(self, until: float = math.inf) -> float:
        timeline = self.timeline
        peek = timeline.peek
        pop = timeline.pop
        ready = self._ready
        pop_ready = ready.popleft
        dispatched = self.events_dispatched
        from_ready = self.ready_dispatched
        from_bucket = self.bucket_dispatched
        now = self.now
        try:
            while True:
                if ready:
                    head = peek()
                    if head is not None and head[0] <= now and head[1] < ready[0][0]:
                        pop()
                        dispatched += 1
                        from_bucket += 1
                        head[2]()
                    else:
                        _, callback, arg = pop_ready()
                        dispatched += 1
                        from_ready += 1
                        callback(arg)
                else:
                    head = peek()
                    if head is None:
                        break
                    time = head[0]
                    if time > until:
                        self.now = until
                        return until
                    pop()
                    self.now = now = time
                    dispatched += 1
                    from_bucket += 1
                    head[2]()
        finally:
            self.events_dispatched = dispatched
            self.ready_dispatched = from_ready
            self.bucket_dispatched = from_bucket
        stuck = [p.name for p in self.blocked()]
        if stuck:
            raise SimulationError(
                f"deadlock at t={self.now:.6g}: processes still blocked: {stuck[:10]}"
                + ("..." if len(stuck) > 10 else "")
            )
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._heap) + len(self._ready) + len(self.timeline)


class _BucketProcess(Process):
    """Process whose inline Timeout fast path targets the bucket timeline.

    Byte-for-byte the same control flow as :meth:`Process.resume` with
    ``heappush(engine._heap, ...)`` replaced by ``timeline.push(...)``.
    """

    __slots__ = ()

    def resume(self, value: Any = None) -> None:
        if self.done:
            if self.cancelled:
                return  # a wake-up raced with cancellation; drop it
            raise SimulationError(f"process {self.name!r} resumed after completion")
        try:
            request = self._send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        if request.__class__ is Timeout:
            engine = self.engine
            engine.timeout_allocs += 1
            seq = engine._seq
            engine._seq = seq + 1
            delay = request.delay
            if getrefcount(request) == 2:
                _timeout_pool_append(request)
            if delay == 0.0:
                engine._ready.append((seq, self._resume, None))
            else:
                engine.timeline.push((engine.now + delay, seq, self._resume))
            return
        if not isinstance(request, Request):
            raise SimulationError(
                f"process {self.name!r} yielded {request!r}; processes must "
                "yield Request instances (Timeout, acquire(), wait(), ...)"
            )
        request.activate(self.engine, self)


BucketEngine._process_cls = _BucketProcess


# --------------------------------------------------------------------------
# Compiled engine core


class CompiledEngine(Engine):
    """:class:`Engine` whose run loop executes in ``_engine_core``.

    The data layout (heap, run-queue, seq counter, counters) is exactly
    the base engine's — only the loop and the ``Process.resume`` fast
    path move to C, so any Python-side scheduling (SimEvent.fire,
    Resource grants, nested ``call_now``) interleaves identically and
    the heap stays inspectable mid-run.
    """

    __slots__ = ()

    #: Networks built on this engine default to fused (generator-free)
    #: traced ops: the C core walks the delay programs, which is where
    #: fusion actually pays. The pure-Python engines keep the reference
    #: generators (a Python state-machine step is slower than a
    #: generator resume). Order-identical either way.
    drives_fused_ops = True

    def run(self, until: float = math.inf) -> float:
        core = _load_engine_core()
        if core is None:  # pickled/copied engine landing where the build fails
            return super().run(until)
        if core.run(self, until):
            return self.now  # stopped at the ``until`` horizon
        stuck = [p.name for p in self.blocked()]
        if stuck:
            raise SimulationError(
                f"deadlock at t={self.now:.6g}: processes still blocked: {stuck[:10]}"
                + ("..." if len(stuck) > 10 else "")
            )
        return self.now


_CORE_UNSET = object()
_core: Any = _CORE_UNSET


def compiled_available() -> bool:
    """True when the compiled engine core can be imported or built."""
    return _load_engine_core() is not None


def _load_engine_core():
    """Import (or build, then import) ``repro.simulate._engine_core``.

    Returns the initialized module, or None when unavailable. The result
    is cached for the life of the process; a failed build is not retried.
    """
    global _core
    if _core is not _CORE_UNSET:
        return _core
    _core = None
    try:
        module = _import_or_build()
        if module is not None:
            # Imported here, not at module scope: network.py pulls in the
            # cost-model machinery, which the engine-only users of this
            # module never need.
            from repro.simulate.network import _FusedOp

            module.setup(
                Process,
                Timeout,
                Request,
                SimulationError,
                Resource,
                _timeout_pool,
                _FusedOp,
            )
            _core = module
    except Exception as exc:
        _note_build_error(f"{type(exc).__name__}: {exc}")
        _core = None
    return _core


def _import_or_build():
    # A pre-built extension (pip install with a toolchain, see setup.py)
    # takes precedence over the runtime-build cache.
    try:
        from repro.simulate import _engine_core  # type: ignore[attr-defined]

        return _engine_core
    except ImportError:
        pass
    source = os.path.join(os.path.dirname(__file__), "_engine_core.c")
    if not os.path.exists(source):
        return None
    with open(source, "rb") as fh:
        digest = hashlib.sha256(fh.read()).hexdigest()[:16]
    tag = f"cp{sys.version_info[0]}{sys.version_info[1]}"
    cache_dir = os.environ.get("REPRO_ENGINE_CACHE") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-engine"
    )
    path = os.path.join(cache_dir, f"_engine_core-{tag}-{digest}.so")
    if not os.path.exists(path):
        if os.environ.get("REPRO_ENGINE_BUILD", "1") == "0":
            return None
        if not _build_extension(source, path, cache_dir):
            return None
    loader = importlib.machinery.ExtensionFileLoader("repro.simulate._engine_core", path)
    spec = importlib.util.spec_from_file_location(
        "repro.simulate._engine_core", path, loader=loader
    )
    if spec is None:
        return None
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    return module


def _build_extension(source: str, path: str, cache_dir: str) -> bool:
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        _note_build_error("no C compiler (cc/gcc/clang) on PATH")
        return False
    include = sysconfig.get_paths().get("include")
    if not include or not os.path.exists(os.path.join(include, "Python.h")):
        _note_build_error("Python.h not found (no CPython development headers)")
        return False
    os.makedirs(cache_dir, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache_dir)
    os.close(fd)
    cmd = [
        compiler,
        "-O2",
        "-fPIC",
        "-shared",
        "-fvisibility=hidden",
        f"-I{include}",
        "-o",
        tmp,
        source,
    ]
    try:
        proc = subprocess.run(
            cmd, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, timeout=120
        )
        if proc.returncode != 0:
            stderr = (proc.stderr or b"").decode("utf-8", "replace").strip()
            tail = "\n".join(stderr.splitlines()[-8:]) or "(no compiler output)"
            _note_build_error(f"{compiler} exited {proc.returncode}:\n{tail}")
            return False
        os.replace(tmp, path)  # atomic: concurrent builders race harmlessly
        return True
    except (OSError, subprocess.SubprocessError) as exc:
        _note_build_error(f"{type(exc).__name__}: {exc}")
        return False
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass
