"""Discrete-event simulation of an HPC cluster.

The paper's measurements were taken on a physical cluster with a one-sided
(Global Arrays / ARMCI) communication runtime. Python cannot reproduce that
platform time-faithfully (the repro calibration notes that interpreter
overheads would distort a live performance study), so this package provides
the substitute substrate: a deterministic discrete-event simulator in which

- per-rank compute time comes from the chemistry kernel's analytic flop
  model divided by a (possibly time-varying) rank speed,
- communication time comes from a LogGP-style latency/bandwidth/occupancy
  model, and
- contention (the centralized-counter bottleneck of experiment E6) emerges
  from FIFO serialization at each rank's NIC agent.

Components:

- :mod:`repro.simulate.engine` -- event heap, generator-based processes,
  resources, one-shot events, deadlock detection.
- :mod:`repro.simulate.network` -- the network model and NIC resources.
- :mod:`repro.simulate.machine` -- cluster specifications and presets.
- :mod:`repro.simulate.noise` -- performance-variability models.
"""

from repro.simulate.engine import Engine, Process, Timeout, Resource, SimEvent
from repro.simulate.network import NetworkModel, Network
from repro.simulate.machine import (
    MachineSpec,
    commodity_cluster,
    fast_network_cluster,
    hierarchical_cluster,
)
from repro.simulate.noise import (
    VariabilityModel,
    NoVariability,
    StaticHeterogeneity,
    RandomStaticVariability,
    TransientSlowdown,
    PeriodicThrottle,
)

__all__ = [
    "Engine",
    "Process",
    "Timeout",
    "Resource",
    "SimEvent",
    "NetworkModel",
    "Network",
    "MachineSpec",
    "commodity_cluster",
    "fast_network_cluster",
    "hierarchical_cluster",
    "VariabilityModel",
    "NoVariability",
    "StaticHeterogeneity",
    "RandomStaticVariability",
    "TransientSlowdown",
    "PeriodicThrottle",
]
