"""Cluster specifications and calibrated presets.

A :class:`MachineSpec` bundles rank count, per-rank compute rate, the
network model, and a variability model. The compute rate is an *effective*
flop rate for this kernel (what a tuned native ERI code sustains per core),
used to convert the task graph's analytic flop counts into simulated
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulate.network import NetworkModel
from repro.simulate.noise import NoVariability, VariabilityModel
from repro.util import check_positive


@dataclass(frozen=True)
class MachineSpec:
    """A simulated cluster.

    Attributes:
        n_ranks: number of single-threaded ranks (processes).
        flops_per_second: nominal effective compute rate per rank.
        network: interconnect parameters.
        variability: per-rank speed model (default: homogeneous).
    """

    n_ranks: int
    flops_per_second: float = 6.0e9
    network: NetworkModel = field(default_factory=NetworkModel)
    variability: VariabilityModel = field(default_factory=NoVariability)
    #: Ranks per node; None models a flat machine (every pair remote).
    cores_per_node: int | None = None

    def __post_init__(self) -> None:
        check_positive("n_ranks", self.n_ranks)
        check_positive("flops_per_second", self.flops_per_second)
        if self.cores_per_node is not None:
            check_positive("cores_per_node", self.cores_per_node)

    @property
    def n_nodes(self) -> int:
        if self.cores_per_node is None:
            return self.n_ranks
        return -(-self.n_ranks // self.cores_per_node)

    def node_of(self, rank: int) -> int:
        """The node hosting ``rank`` (identity on flat machines)."""
        if self.cores_per_node is None:
            return rank
        return rank // self.cores_per_node

    def node_peers(self, rank: int) -> range:
        """All ranks sharing ``rank``'s node (including itself)."""
        if self.cores_per_node is None:
            return range(rank, rank + 1)
        lo = self.node_of(rank) * self.cores_per_node
        return range(lo, min(lo + self.cores_per_node, self.n_ranks))

    def compute_seconds(self, rank: int, flops: float, time: float) -> float:
        """Wall-seconds for ``flops`` on ``rank`` starting at ``time``.

        The variability multiplier is sampled at task start; tasks are
        short relative to variability windows, so intra-task speed changes
        are ignored (documented approximation).
        """
        speed = self.variability.speed(rank, time)
        return flops / (self.flops_per_second * speed)

    def compute_seconds_batch(self, rank: int, flops: np.ndarray) -> np.ndarray | None:
        """Vectorized :meth:`compute_seconds` for a burst of tasks on one rank.

        Only valid when the variability model is time-independent (the
        multiplier does not depend on each task's start time); returns
        None otherwise and the caller must fall back to per-task
        evaluation. The element-wise float64 division is bit-for-bit the
        scalar path: same operand order, same IEEE-754 double arithmetic.
        """
        variability = self.variability
        if not variability.time_independent:
            return None
        denominator = self.flops_per_second * variability.speed(rank, 0.0)
        return np.asarray(flops, dtype=np.float64) / denominator

    def with_ranks(self, n_ranks: int) -> "MachineSpec":
        """Copy of this spec with a different rank count."""
        return MachineSpec(
            n_ranks, self.flops_per_second, self.network, self.variability,
            self.cores_per_node,
        )

    def with_variability(self, variability: VariabilityModel) -> "MachineSpec":
        """Copy of this spec with a different variability model."""
        return MachineSpec(
            self.n_ranks, self.flops_per_second, self.network, variability,
            self.cores_per_node,
        )


def commodity_cluster(
    n_ranks: int, variability: VariabilityModel | None = None
) -> MachineSpec:
    """An InfiniBand-class commodity cluster (the paper-era testbed class).

    ~1.5 us one-way latency, 5 GB/s per-rank bandwidth, 6 GF/s effective
    per-core ERI throughput.
    """
    return MachineSpec(
        n_ranks=n_ranks,
        flops_per_second=6.0e9,
        network=NetworkModel(),
        variability=variability if variability is not None else NoVariability(),
    )


def hierarchical_cluster(
    n_nodes: int,
    cores_per_node: int = 16,
    variability: VariabilityModel | None = None,
) -> MachineSpec:
    """A multi-node SMP cluster: cheap shared-memory paths within a node,
    commodity interconnect across nodes.

    The substrate for node-aware execution models (hierarchical work
    stealing, per-node counters) — the "multi- and many-core" direction
    the paper's conclusion points at.
    """
    check_positive("n_nodes", n_nodes)
    check_positive("cores_per_node", cores_per_node)
    return MachineSpec(
        n_ranks=n_nodes * cores_per_node,
        flops_per_second=6.0e9,
        network=NetworkModel(),
        variability=variability if variability is not None else NoVariability(),
        cores_per_node=cores_per_node,
    )


def fast_network_cluster(
    n_ranks: int, variability: VariabilityModel | None = None
) -> MachineSpec:
    """A tighter interconnect (Cray-class): lower latency, higher bandwidth.

    Used in ablations to show how network quality shifts execution-model
    crossover points.
    """
    return MachineSpec(
        n_ranks=n_ranks,
        flops_per_second=6.0e9,
        network=NetworkModel(
            latency=0.7e-6,
            bandwidth=1.2e10,
            software_overhead=0.25e-6,
            nic_occupancy=0.1e-6,
            atomic_service=0.15e-6,
        ),
        variability=variability if variability is not None else NoVariability(),
    )
