"""LogGP-style network model with NIC serialization.

Cost model for a remote operation from *src* to *dst* carrying ``n`` bytes:

- initiator CPU overhead ``o`` (software_overhead),
- one-way wire latency ``L`` each direction,
- occupancy at the target NIC: per-op gap ``g`` plus payload streaming
  ``n / bandwidth`` (plus reduction time for accumulates, plus
  ``atomic_service`` for fetch-and-add).

The target NIC is a capacity-1 FIFO :class:`~repro.simulate.engine.Resource`
— *this serialization is where contention comes from*: when 512 ranks
hammer one counter, queueing delay at its home NIC grows without any
explicit "contention model", reproducing the centralized-dynamic-scheduling
bottleneck the paper discusses (experiment E6).

Two-sided messages (used by steal requests/responses and termination
tokens) are active messages delivered into per-rank mailboxes.

Hot-path notes: ``get``/``put`` return the shared :meth:`Network._rma`
generator directly instead of delegating through one more generator frame,
and the NIC hold is inlined (acquire / timed occupancy / release in a
``try/finally``) rather than composed via :func:`~repro.simulate.engine.hold`
— several frames fewer per remote operation, with identical event order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults.injector import DELIVER, DROP, DUPLICATE
from repro.simulate.engine import Engine, Request, Resource, SimEvent, Timeout, pooled_timeout
from repro.util import (
    ConfigurationError,
    RankFailedError,
    check_non_negative,
    check_positive,
)

#: Trace category for time lost discovering a dead target. Must match
#: :data:`repro.runtime.trace.FAILED`; a literal here keeps ``simulate``
#: from importing the ``runtime`` layer (which imports this module).
_FAILED = "failed"


@dataclass(frozen=True)
class NetworkModel:
    """Network parameters (seconds and bytes/second).

    Attributes:
        latency: one-way wire latency L.
        bandwidth: payload streaming rate.
        software_overhead: initiator CPU time o per operation.
        nic_occupancy: per-op gap g at the target NIC.
        atomic_service: extra NIC service time for a fetch-and-add
            (read-modify-write at the memory controller).
        accumulate_bandwidth: effective rate for the reduction computation
            of an accumulate (adds ``n / accumulate_bandwidth`` occupancy).
        local_bandwidth: intra-rank memory copy rate for self-ops.
    """

    latency: float = 1.5e-6
    bandwidth: float = 5.0e9
    software_overhead: float = 0.4e-6
    nic_occupancy: float = 0.2e-6
    atomic_service: float = 0.25e-6
    accumulate_bandwidth: float = 8.0e9
    local_bandwidth: float = 2.0e10
    #: Same-node (shared-memory) path, used when the Network is built with
    #: a node topology: one cache-coherent hop instead of the wire.
    intra_latency: float = 0.15e-6
    intra_bandwidth: float = 1.2e10

    def __post_init__(self) -> None:
        for name in (
            "latency",
            "bandwidth",
            "software_overhead",
            "nic_occupancy",
            "atomic_service",
            "accumulate_bandwidth",
            "local_bandwidth",
            "intra_latency",
            "intra_bandwidth",
        ):
            check_non_negative(name, getattr(self, name))
        check_positive("bandwidth", self.bandwidth)
        check_positive("intra_bandwidth", self.intra_bandwidth)

    def transfer(self, nbytes: int) -> float:
        return nbytes / self.bandwidth


@dataclass(slots=True)
class Message:
    """A two-sided active message."""

    src: int
    tag: Any
    payload: Any


class _Mailbox:
    """Per-rank message store with tag-filtered blocking receive."""

    __slots__ = ("messages", "waiters")

    def __init__(self) -> None:
        self.messages: deque[Message] = deque()
        self.waiters: list[tuple[Any, SimEvent]] = []

    def deliver(self, message: Message) -> None:
        for idx, (tag, event) in enumerate(self.waiters):
            if tag is None or tag == message.tag:
                del self.waiters[idx]
                event.fire(message)
                return
        self.messages.append(message)

    def take(self, tag: Any) -> Message | None:
        for idx, message in enumerate(self.messages):
            if tag is None or message.tag == tag:
                del self.messages[idx]
                return message
        return None


@dataclass
class NetworkStats:
    """Aggregate operation counts and bytes moved."""

    gets: int = 0
    puts: int = 0
    accumulates: int = 0
    fetch_adds: int = 0
    messages: int = 0
    bytes_moved: int = 0
    #: Traced operations dispatched through the generator-free fused path
    #: (a subset of gets+puts+accumulates+fetch_adds). Deterministic; not
    #: part of the digested ``RunResult.network`` dict.
    fused_ops: int = 0
    #: Per-rank bytes initiated, as a plain float list (cheap ``+=``).
    per_rank_bytes: list[float] = field(default_factory=list)


class _FusedOp(Request):
    """One traced network operation as a single engine-driven request.

    Replaces the per-op ``rma_traced``/``accumulate_traced``/
    ``fetch_add_traced`` generator frame on the fault-free path: the
    operation's delay sequence is precomputed (``pre`` delays, an
    optional NIC hold, ``post`` delays), and this object walks it with
    one bound-method callback per event instead of resuming a generator
    through ``Process.resume`` -> ``send`` -> frame -> fresh ``Timeout``.

    Event-order contract (pinned by the golden digests): every schedule/
    call_now below allocates its sequence number at exactly the dispatch
    where the generator path allocated one, the NIC acquire/grant/release
    protocol reuses :class:`~repro.simulate.engine.Resource` verbatim by
    duck-typing the waiting process (``done``/``engine``/``resume``), and
    the trace record is emitted at the same event as the generator's
    trailing ``trace.record`` — so ``(time, seq)`` orders, resource
    counters, and trace intervals are bit-for-bit identical.

    The object is also the iterator callers drive with ``yield from``:
    ``__next__`` first yields the request itself, and once the operation
    completes the delegating generator is resumed with the result, which
    this iterator converts into ``StopIteration(result)`` — zero
    additional frames. ``close()`` mirrors the generator's ``finally``:
    a held NIC slot is released, a queued waiter is skipped by
    ``Resource.release`` via ``done``.
    """

    __slots__ = (
        "pre",
        "nic",
        "hold",
        "post",
        "trace",
        "src",
        "category",
        "counter",
        "amount",
        "engine",
        "proc",
        "start",
        "phase",
        "idx",
        "holding",
        "done",
        "result",
        "_step",
    )

    def __init__(
        self,
        pre: tuple,
        nic: "Resource | None",
        hold: float,
        post: tuple,
        trace,
        src: int,
        category: str,
        counter: "SharedCell | None" = None,
        amount: int = 0,
    ) -> None:
        self.pre = pre
        self.nic = nic
        self.hold = hold
        self.post = post
        self.trace = trace
        self.src = src
        self.category = category
        self.counter = counter
        self.amount = amount
        self.proc = None
        self.done = False
        self.holding = False
        self.result = None

    # -- iterator protocol (PEP 380 delegation without a generator frame)
    def __iter__(self):
        return self

    def __next__(self):
        if self.proc is None:
            return self  # first advance: hand the request to the process
        raise StopIteration(self.result)

    def send(self, value):
        if self.proc is None:
            if value is not None:
                raise TypeError("can't send non-None value to a just-started operation")
            return self
        raise StopIteration(value)

    def close(self) -> None:
        """Abort mid-operation (process cancelled): release a held slot."""
        if self.done:
            return
        self.done = True
        if self.holding:
            self.holding = False
            self.nic.release()

    # -- request protocol
    def activate(self, engine: Engine, process) -> None:
        self.engine = engine
        self.proc = process
        self.start = engine.now
        self.phase = 0
        self.idx = 1
        step = self._step = self._advance
        delay = self.pre[0]
        if delay == 0.0:
            engine.call_now(step, None)
        else:
            engine.schedule(delay, step)

    # -- grant delivery (Resource._deliver_grant duck-types us as a Process)
    def resume(self, value=None) -> None:
        counter = self.counter
        if counter is not None:
            # fetch_add's read-modify-write happens at the grant wake-up,
            # exactly where the generator executed it while holding the
            # home NIC, so concurrent updates serialize identically.
            self.result = counter.value
            counter.value += self.amount
        self.holding = True
        self.phase = 2
        delay = self.hold
        engine = self.engine
        if delay == 0.0:
            engine.call_now(self._step, None)
        else:
            engine.schedule(delay, self._step)

    def _advance(self, _arg=None) -> None:
        if self.done:
            return  # a late wake-up raced with cancellation; drop it
        phase = self.phase
        if phase == 0:
            pre = self.pre
            idx = self.idx
            if idx < len(pre):
                self.idx = idx + 1
                self._dispatch(pre[idx])
                return
            nic = self.nic
            if nic is None:
                self._complete()
                return
            # nic.acquire(): inline _ResourceAcquire.activate
            self.phase = 1
            if nic.in_use < nic.capacity:
                nic.in_use += 1
                nic.total_acquisitions += 1
                self.engine.call_now(nic._deliver_grant, self)
            else:
                nic.total_waits += 1
                nic._queue.append(self)
            return
        if phase == 2:
            # The hold expired: release first (the next waiter's grant
            # takes its seq here, as the generator's ``finally`` did),
            # then schedule the return-path delays.
            self.holding = False
            self.nic.release()
            post = self.post
            if post:
                self.phase = 3
                self.idx = 1
                self._dispatch(post[0])
            else:
                self._complete()
            return
        post = self.post
        idx = self.idx
        if idx < len(post):
            self.idx = idx + 1
            self._dispatch(post[idx])
        else:
            self._complete()

    def _dispatch(self, delay: float) -> None:
        engine = self.engine
        if delay == 0.0:
            engine.call_now(self._step, None)
        else:
            engine.schedule(delay, self._step)

    def _complete(self) -> None:
        self.done = True
        engine = self.engine
        self.trace.record(self.src, self.category, self.start, engine.now)
        self.proc.resume(self.result)


class Network:
    """The simulated interconnect: one NIC resource + mailbox per rank.

    All operation methods are *generator functions* (or return a driven
    generator); rank processes drive them with ``yield from``, e.g.::

        value = yield from net.fetch_add(rank, home, counter)
    """

    __slots__ = (
        "engine",
        "model",
        "n_ranks",
        "node_of",
        "nics",
        "_mailboxes",
        "stats",
        "faults",
        "_node_ids",
        "_fused",
        "_fused_cache",
    )

    def __init__(
        self,
        engine: Engine,
        model: NetworkModel,
        n_ranks: int,
        node_of: "Callable[[int], int] | None" = None,
    ) -> None:
        check_positive("n_ranks", n_ranks)
        self.engine = engine
        self.model = model
        self.n_ranks = int(n_ranks)
        self.node_of = node_of
        self.nics = [Resource(1) for _ in range(n_ranks)]
        self._mailboxes = [_Mailbox() for _ in range(n_ranks)]
        self.stats = NetworkStats(per_rank_bytes=[0.0] * n_ranks)
        #: Optional :class:`repro.faults.FaultInjector`; ``None`` (the
        #: default) keeps every fault check on a single attribute test, so
        #: fault-free runs take exactly the pre-fault-subsystem code path.
        self.faults = None
        #: Node id per rank (topology is static), or None on flat machines
        #: — the O(1) tier test behind the fused cost tables.
        self._node_ids = (
            [node_of(r) for r in range(self.n_ranks)] if node_of is not None else None
        )
        #: Generator-free traced operations. On by default only when the
        #: engine drives the fused program walk in C (the compiled core):
        #: a pure-Python ``_FusedOp`` step loses to a generator frame
        #: resume, so the heap/bucket engines keep the reference
        #: generators (measured in benchmarks/results/hotpath_timing.txt).
        #: Both paths are (time, seq)-order identical, so the knob never
        #: changes results. A fault-armed network falls back per-op
        #: regardless (the fused tables model the fault-free cost shapes
        #: only).
        self._fused = bool(getattr(engine, "drives_fused_ops", False))
        #: ``(kind, tier, nbytes) -> (pre, hold, post)`` delay programs,
        #: memoized per distinct size class (block sizes give a handful).
        self._fused_cache: dict = {}

    def same_node(self, a: int, b: int) -> bool:
        """Whether two ranks share a node (False without a topology)."""
        if a == b:
            return True
        if self.node_of is None:
            return False
        return self.node_of(a) == self.node_of(b)

    def _check_rank(self, rank: int) -> int:
        if not 0 <= rank < self.n_ranks:
            raise ConfigurationError(f"rank {rank} out of range [0, {self.n_ranks})")
        return rank

    def _account(self, src: int, nbytes: int) -> None:
        self.stats.bytes_moved += nbytes
        self.stats.per_rank_bytes[src] += nbytes

    def _dead_target_check(self, src: int, dst: int, operation: str):
        """Fail an operation whose remote target has crashed (generator).

        The initiator burns software overhead plus the plan's RMA timeout
        discovering the death, then gets :class:`RankFailedError` — the
        on-contact detection path. Self-ops never fail (a dead rank's own
        process is already cancelled).
        """
        if self.faults is not None and src != dst and self.faults.is_dead(dst):
            self.faults.note_rma_failure()
            yield pooled_timeout(self.model.software_overhead + self.faults.plan.rma_timeout)
            raise RankFailedError(dst, operation)

    def drop_mailbox(self, rank: int) -> None:
        """Discard a crashed rank's queued and in-flight-awaited messages."""
        box = self._mailboxes[self._check_rank(rank)]
        box.messages.clear()
        box.waiters.clear()

    # ------------------------------------------------------------------
    # One-sided operations
    # ------------------------------------------------------------------
    def _rma(self, src: int, dst: int, nbytes: int):
        """Common cost shape of a synchronous one-sided read/write.

        Three tiers: self (memcpy), same node (shared memory, no NIC),
        remote (wire latency + target NIC occupancy).
        """
        n = self.n_ranks
        if not (0 <= src < n and 0 <= dst < n):
            self._check_rank(src)
            self._check_rank(dst)
        if self.faults is not None:
            yield from self._dead_target_check(src, dst, "rma")
        m = self.model
        stats = self.stats
        stats.bytes_moved += nbytes
        stats.per_rank_bytes[src] += nbytes
        if src == dst:
            yield pooled_timeout(m.software_overhead + nbytes / m.local_bandwidth)
            return
        if self.same_node(src, dst):
            yield pooled_timeout(
                m.software_overhead + 2 * m.intra_latency + nbytes / m.intra_bandwidth
            )
            return
        yield pooled_timeout(m.software_overhead)
        yield pooled_timeout(m.latency)
        nic = self.nics[dst]
        yield nic.acquire()
        try:
            yield pooled_timeout(m.nic_occupancy + nbytes / m.bandwidth)
        finally:
            nic.release()
        yield pooled_timeout(m.latency)

    def get(self, src: int, dst: int, nbytes: int):
        """Synchronous one-sided read of ``nbytes`` from ``dst``'s memory."""
        self.stats.gets += 1
        return self._rma(src, dst, nbytes)

    def put(self, src: int, dst: int, nbytes: int):
        """Synchronous one-sided write (completion acknowledged)."""
        self.stats.puts += 1
        return self._rma(src, dst, nbytes)

    def accumulate(self, src: int, dst: int, nbytes: int):
        """One-sided accumulate: remote read-modify-write of a block."""
        n = self.n_ranks
        if not (0 <= src < n and 0 <= dst < n):
            self._check_rank(src)
            self._check_rank(dst)
        if self.faults is not None:
            yield from self._dead_target_check(src, dst, "accumulate")
        m = self.model
        self.stats.accumulates += 1
        self._account(src, nbytes)
        reduce_time = nbytes / m.accumulate_bandwidth
        if src == dst:
            yield pooled_timeout(m.software_overhead + nbytes / m.local_bandwidth + reduce_time)
            return
        if self.same_node(src, dst):
            yield pooled_timeout(
                m.software_overhead
                + 2 * m.intra_latency
                + nbytes / m.intra_bandwidth
                + reduce_time
            )
            return
        yield pooled_timeout(m.software_overhead)
        yield pooled_timeout(m.latency)
        nic = self.nics[dst]
        yield nic.acquire()
        try:
            yield pooled_timeout(m.nic_occupancy + nbytes / m.bandwidth + reduce_time)
        finally:
            nic.release()
        yield pooled_timeout(m.latency)

    def fetch_add(self, src: int, dst: int, counter: "SharedCell", amount: int = 1):
        """Atomic fetch-and-add on a cell homed at ``dst``; returns old value.

        The read-modify-write happens while the target NIC is held, so
        concurrent updates serialize exactly as hardware atomics at a
        memory controller would.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if self.faults is not None:
            yield from self._dead_target_check(src, dst, "fetch_add")
        m = self.model
        self.stats.fetch_adds += 1
        # Wire latency only across nodes; the read-modify-write always
        # serializes at the home memory controller (the NIC resource),
        # local or not — that is what makes a counter a counter.
        wire = 0.0 if self.same_node(src, dst) else m.latency
        intra = m.intra_latency if (src != dst and wire == 0.0) else 0.0
        yield pooled_timeout(m.software_overhead)
        if wire or intra:
            yield pooled_timeout(wire + intra)
        yield self.nics[dst].acquire()
        old = counter.value
        counter.value += amount
        try:
            yield pooled_timeout(m.atomic_service)
        finally:
            self.nics[dst].release()
        if wire or intra:
            yield pooled_timeout(wire + intra)
        return old

    # ------------------------------------------------------------------
    # Traced one-sided operations (hot paths)
    # ------------------------------------------------------------------
    # These fold :class:`repro.runtime.comm.RankContext`'s interval
    # recording into the cost shape itself. On the fault-free path the
    # operation is dispatched as a :class:`_FusedOp`: the delay sequence
    # comes from a per-(kind, tier, nbytes) table computed with exactly
    # the generator's float expressions, so no generator frame is resumed
    # and no ``Timeout`` is allocated per event — the dominant per-event
    # cost measured in benchmarks/results/sched_timing.txt. A fault-armed
    # network takes the original generator (``*_gen``) per-op: dead-target
    # discovery and FAILED-interval recording stay on the reference path.
    # Cost shapes, stats updates, record values, and event orders are
    # bit-identical between the two, pinned by golden digests and a
    # hypothesis property test.

    def _tier(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        ids = self._node_ids
        if ids is not None and ids[src] == ids[dst]:
            return 1
        return 2

    def _fused_program(self, kind: str, tier: int, nbytes: int) -> tuple:
        """The (pre, hold, post) delay program for one op class.

        ``hold`` is the NIC-held delay (None when the tier bypasses the
        NIC). Every arithmetic expression below is copied operand-for-
        operand from the corresponding generator so the doubles are
        bit-identical.
        """
        key = (kind, tier, nbytes)
        program = self._fused_cache.get(key)
        if program is not None:
            return program
        m = self.model
        if kind == "rma":
            if tier == 0:
                program = (
                    (m.software_overhead + nbytes / m.local_bandwidth,),
                    None,
                    (),
                )
            elif tier == 1:
                program = (
                    (
                        m.software_overhead
                        + 2 * m.intra_latency
                        + nbytes / m.intra_bandwidth,
                    ),
                    None,
                    (),
                )
            else:
                program = (
                    (m.software_overhead, m.latency),
                    m.nic_occupancy + nbytes / m.bandwidth,
                    (m.latency,),
                )
        elif kind == "acc":
            reduce_time = nbytes / m.accumulate_bandwidth
            if tier == 0:
                program = (
                    (m.software_overhead + nbytes / m.local_bandwidth + reduce_time,),
                    None,
                    (),
                )
            elif tier == 1:
                program = (
                    (
                        m.software_overhead
                        + 2 * m.intra_latency
                        + nbytes / m.intra_bandwidth
                        + reduce_time,
                    ),
                    None,
                    (),
                )
            else:
                program = (
                    (m.software_overhead, m.latency),
                    m.nic_occupancy + nbytes / m.bandwidth + reduce_time,
                    (m.latency,),
                )
        else:  # "fa": fetch_add; nbytes is unused (always 0 in the key)
            # Operand-for-operand from _fetch_add_traced_gen, including
            # the quirk that a zero-latency *remote* hop tests as
            # ``wire == 0.0`` and therefore pays the intra-node latency.
            wire = 0.0 if tier != 2 else m.latency
            intra = m.intra_latency if (tier != 0 and wire == 0.0) else 0.0
            if wire or intra:
                program = (
                    (m.software_overhead, wire + intra),
                    m.atomic_service,
                    (wire + intra,),
                )
            else:
                program = ((m.software_overhead,), m.atomic_service, ())
        self._fused_cache[key] = program
        return program

    def rma_traced(self, src: int, dst: int, nbytes: int, trace, category: str):
        """:meth:`_rma` with the caller's interval tracing inlined."""
        if self.faults is not None or not self._fused:
            return self._rma_traced_gen(src, dst, nbytes, trace, category)
        n = self.n_ranks
        if not (0 <= src < n and 0 <= dst < n):
            self._check_rank(src)
            self._check_rank(dst)
        stats = self.stats
        stats.bytes_moved += nbytes
        stats.per_rank_bytes[src] += nbytes
        stats.fused_ops += 1
        pre, hold, post = self._fused_program("rma", self._tier(src, dst), nbytes)
        nic = self.nics[dst] if hold is not None else None
        return _FusedOp(pre, nic, hold, post, trace, src, category)

    def accumulate_traced(self, src: int, dst: int, nbytes: int, trace, category: str):
        """:meth:`accumulate` with the caller's interval tracing inlined."""
        if self.faults is not None or not self._fused:
            return self._accumulate_traced_gen(src, dst, nbytes, trace, category)
        n = self.n_ranks
        if not (0 <= src < n and 0 <= dst < n):
            self._check_rank(src)
            self._check_rank(dst)
        stats = self.stats
        stats.accumulates += 1
        stats.bytes_moved += nbytes
        stats.per_rank_bytes[src] += nbytes
        stats.fused_ops += 1
        pre, hold, post = self._fused_program("acc", self._tier(src, dst), nbytes)
        nic = self.nics[dst] if hold is not None else None
        return _FusedOp(pre, nic, hold, post, trace, src, category)

    def fetch_add_traced(
        self,
        src: int,
        dst: int,
        counter: "SharedCell",
        amount: int,
        trace,
        category: str,
    ):
        """:meth:`fetch_add` with the caller's interval tracing inlined."""
        if self.faults is not None or not self._fused:
            return self._fetch_add_traced_gen(src, dst, counter, amount, trace, category)
        self._check_rank(src)
        self._check_rank(dst)
        stats = self.stats
        stats.fetch_adds += 1
        stats.fused_ops += 1
        pre, hold, post = self._fused_program("fa", self._tier(src, dst), 0)
        return _FusedOp(
            pre, self.nics[dst], hold, post, trace, src, category, counter, amount
        )

    def _rma_traced_gen(self, src: int, dst: int, nbytes: int, trace, category: str):
        """Generator reference path for :meth:`rma_traced` (fault-armed)."""
        n = self.n_ranks
        if not (0 <= src < n and 0 <= dst < n):
            self._check_rank(src)
            self._check_rank(dst)
        engine = self.engine
        start = engine.now
        m = self.model
        faults = self.faults
        if faults is not None and src != dst and faults.is_dead(dst):
            faults.note_rma_failure()
            yield pooled_timeout(m.software_overhead + faults.plan.rma_timeout)
            trace.record(src, _FAILED, start, engine.now)
            raise RankFailedError(dst, "rma")
        stats = self.stats
        stats.bytes_moved += nbytes
        stats.per_rank_bytes[src] += nbytes
        if src == dst:
            yield pooled_timeout(m.software_overhead + nbytes / m.local_bandwidth)
            trace.record(src, category, start, engine.now)
            return
        if self.same_node(src, dst):
            yield pooled_timeout(
                m.software_overhead + 2 * m.intra_latency + nbytes / m.intra_bandwidth
            )
            trace.record(src, category, start, engine.now)
            return
        yield pooled_timeout(m.software_overhead)
        yield pooled_timeout(m.latency)
        nic = self.nics[dst]
        yield nic.acquire()
        try:
            yield pooled_timeout(m.nic_occupancy + nbytes / m.bandwidth)
        finally:
            nic.release()
        yield pooled_timeout(m.latency)
        trace.record(src, category, start, engine.now)

    def _accumulate_traced_gen(
        self, src: int, dst: int, nbytes: int, trace, category: str
    ):
        """Generator reference path for :meth:`accumulate_traced`."""
        n = self.n_ranks
        if not (0 <= src < n and 0 <= dst < n):
            self._check_rank(src)
            self._check_rank(dst)
        engine = self.engine
        start = engine.now
        m = self.model
        faults = self.faults
        if faults is not None and src != dst and faults.is_dead(dst):
            faults.note_rma_failure()
            yield pooled_timeout(m.software_overhead + faults.plan.rma_timeout)
            trace.record(src, _FAILED, start, engine.now)
            raise RankFailedError(dst, "accumulate")
        stats = self.stats
        stats.accumulates += 1
        stats.bytes_moved += nbytes
        stats.per_rank_bytes[src] += nbytes
        reduce_time = nbytes / m.accumulate_bandwidth
        if src == dst:
            yield pooled_timeout(
                m.software_overhead + nbytes / m.local_bandwidth + reduce_time
            )
            trace.record(src, category, start, engine.now)
            return
        if self.same_node(src, dst):
            yield pooled_timeout(
                m.software_overhead
                + 2 * m.intra_latency
                + nbytes / m.intra_bandwidth
                + reduce_time
            )
            trace.record(src, category, start, engine.now)
            return
        yield pooled_timeout(m.software_overhead)
        yield pooled_timeout(m.latency)
        nic = self.nics[dst]
        yield nic.acquire()
        try:
            yield pooled_timeout(m.nic_occupancy + nbytes / m.bandwidth + reduce_time)
        finally:
            nic.release()
        yield pooled_timeout(m.latency)
        trace.record(src, category, start, engine.now)

    def _fetch_add_traced_gen(
        self,
        src: int,
        dst: int,
        counter: "SharedCell",
        amount: int,
        trace,
        category: str,
    ):
        """Generator reference path for :meth:`fetch_add_traced`."""
        self._check_rank(src)
        self._check_rank(dst)
        engine = self.engine
        start = engine.now
        m = self.model
        faults = self.faults
        if faults is not None and src != dst and faults.is_dead(dst):
            faults.note_rma_failure()
            yield pooled_timeout(m.software_overhead + faults.plan.rma_timeout)
            trace.record(src, _FAILED, start, engine.now)
            raise RankFailedError(dst, "fetch_add")
        self.stats.fetch_adds += 1
        wire = 0.0 if self.same_node(src, dst) else m.latency
        intra = m.intra_latency if (src != dst and wire == 0.0) else 0.0
        yield pooled_timeout(m.software_overhead)
        if wire or intra:
            yield pooled_timeout(wire + intra)
        nic = self.nics[dst]
        yield nic.acquire()
        old = counter.value
        counter.value += amount
        try:
            yield pooled_timeout(m.atomic_service)
        finally:
            nic.release()
        if wire or intra:
            yield pooled_timeout(wire + intra)
        trace.record(src, category, start, engine.now)
        return old

    # ------------------------------------------------------------------
    # Two-sided messages
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, tag: Any, payload: Any = None, nbytes: int = 64):
        """Fire-and-forget active message: initiator pays only ``o``.

        Delivery (latency + NIC occupancy at the target) proceeds as a
        daemon process; ordering between same-pair sends is preserved by
        the deterministic event queue.

        Under an active fault plan a message may be dropped (link loss,
        or the target died) or duplicated; the *sender* never learns —
        fire-and-forget means the initiator cost is identical either way.
        """
        self._check_rank(src)
        self._check_rank(dst)
        m = self.model
        self.stats.messages += 1
        self._account(src, nbytes)
        message = Message(src=src, tag=tag, payload=payload)
        intra = self.same_node(src, dst)
        fate = DELIVER if self.faults is None else self.faults.message_fate(src, dst)

        def delivery():
            if intra:
                yield pooled_timeout(2 * m.intra_latency + nbytes / m.intra_bandwidth)
            else:
                yield pooled_timeout(m.latency)
                nic = self.nics[dst]
                yield nic.acquire()
                try:
                    yield pooled_timeout(m.nic_occupancy + nbytes / m.bandwidth)
                finally:
                    nic.release()
            if self.faults is not None and self.faults.is_dead(dst):
                self.faults.stats["messages_dropped"] += 1.0
                return
            self._mailboxes[dst].deliver(message)
            if fate == DUPLICATE:
                self._mailboxes[dst].deliver(Message(src=src, tag=tag, payload=payload))

        if fate != DROP:
            self.engine.process(delivery(), name=f"deliver({src}->{dst})", daemon=True)
        yield pooled_timeout(m.software_overhead)

    def recv(self, rank: int, tag: Any = None, timeout: float | None = None):
        """Blocking receive of the next message matching ``tag`` (None=any).

        With ``timeout`` set, gives up after that many simulated seconds
        and returns ``None`` — the primitive under heartbeat-period
        parking in fault-tolerant models (an indefinite receive can wait
        forever on a message a dead rank will never send).
        """
        self._check_rank(rank)
        box = self._mailboxes[rank]
        ready = box.take(tag)
        if ready is not None:
            yield pooled_timeout(0.0)
            return ready
        event = SimEvent()
        entry = (tag, event)
        box.waiters.append(entry)
        if timeout is not None:
            check_non_negative("timeout", timeout)

            def expire() -> None:
                if not event.fired:
                    try:
                        box.waiters.remove(entry)
                    except ValueError:
                        pass
                    event.fire(None)

            self.engine.schedule(timeout, expire)
        message = yield event.wait()
        return message

    def try_recv(self, rank: int, tag: Any = None) -> Message | None:
        """Non-blocking receive: pop a matching message or return None."""
        self._check_rank(rank)
        return self._mailboxes[rank].take(tag)


@dataclass
class SharedCell:
    """A word of remotely-addressable memory (for fetch-and-add targets)."""

    value: int = 0
