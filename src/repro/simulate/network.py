"""LogGP-style network model with NIC serialization.

Cost model for a remote operation from *src* to *dst* carrying ``n`` bytes:

- initiator CPU overhead ``o`` (software_overhead),
- one-way wire latency ``L`` each direction,
- occupancy at the target NIC: per-op gap ``g`` plus payload streaming
  ``n / bandwidth`` (plus reduction time for accumulates, plus
  ``atomic_service`` for fetch-and-add).

The target NIC is a capacity-1 FIFO :class:`~repro.simulate.engine.Resource`
— *this serialization is where contention comes from*: when 512 ranks
hammer one counter, queueing delay at its home NIC grows without any
explicit "contention model", reproducing the centralized-dynamic-scheduling
bottleneck the paper discusses (experiment E6).

Two-sided messages (used by steal requests/responses and termination
tokens) are active messages delivered into per-rank mailboxes.

Hot-path notes: ``get``/``put`` return the shared :meth:`Network._rma`
generator directly instead of delegating through one more generator frame,
and the NIC hold is inlined (acquire / timed occupancy / release in a
``try/finally``) rather than composed via :func:`~repro.simulate.engine.hold`
— several frames fewer per remote operation, with identical event order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults.injector import DELIVER, DROP, DUPLICATE
from repro.simulate.engine import Engine, Resource, SimEvent, Timeout
from repro.util import (
    ConfigurationError,
    RankFailedError,
    check_non_negative,
    check_positive,
)

#: Trace category for time lost discovering a dead target. Must match
#: :data:`repro.runtime.trace.FAILED`; a literal here keeps ``simulate``
#: from importing the ``runtime`` layer (which imports this module).
_FAILED = "failed"


@dataclass(frozen=True)
class NetworkModel:
    """Network parameters (seconds and bytes/second).

    Attributes:
        latency: one-way wire latency L.
        bandwidth: payload streaming rate.
        software_overhead: initiator CPU time o per operation.
        nic_occupancy: per-op gap g at the target NIC.
        atomic_service: extra NIC service time for a fetch-and-add
            (read-modify-write at the memory controller).
        accumulate_bandwidth: effective rate for the reduction computation
            of an accumulate (adds ``n / accumulate_bandwidth`` occupancy).
        local_bandwidth: intra-rank memory copy rate for self-ops.
    """

    latency: float = 1.5e-6
    bandwidth: float = 5.0e9
    software_overhead: float = 0.4e-6
    nic_occupancy: float = 0.2e-6
    atomic_service: float = 0.25e-6
    accumulate_bandwidth: float = 8.0e9
    local_bandwidth: float = 2.0e10
    #: Same-node (shared-memory) path, used when the Network is built with
    #: a node topology: one cache-coherent hop instead of the wire.
    intra_latency: float = 0.15e-6
    intra_bandwidth: float = 1.2e10

    def __post_init__(self) -> None:
        for name in (
            "latency",
            "bandwidth",
            "software_overhead",
            "nic_occupancy",
            "atomic_service",
            "accumulate_bandwidth",
            "local_bandwidth",
            "intra_latency",
            "intra_bandwidth",
        ):
            check_non_negative(name, getattr(self, name))
        check_positive("bandwidth", self.bandwidth)
        check_positive("intra_bandwidth", self.intra_bandwidth)

    def transfer(self, nbytes: int) -> float:
        return nbytes / self.bandwidth


@dataclass(slots=True)
class Message:
    """A two-sided active message."""

    src: int
    tag: Any
    payload: Any


class _Mailbox:
    """Per-rank message store with tag-filtered blocking receive."""

    __slots__ = ("messages", "waiters")

    def __init__(self) -> None:
        self.messages: deque[Message] = deque()
        self.waiters: list[tuple[Any, SimEvent]] = []

    def deliver(self, message: Message) -> None:
        for idx, (tag, event) in enumerate(self.waiters):
            if tag is None or tag == message.tag:
                del self.waiters[idx]
                event.fire(message)
                return
        self.messages.append(message)

    def take(self, tag: Any) -> Message | None:
        for idx, message in enumerate(self.messages):
            if tag is None or message.tag == tag:
                del self.messages[idx]
                return message
        return None


@dataclass
class NetworkStats:
    """Aggregate operation counts and bytes moved."""

    gets: int = 0
    puts: int = 0
    accumulates: int = 0
    fetch_adds: int = 0
    messages: int = 0
    bytes_moved: int = 0
    #: Per-rank bytes initiated, as a plain float list (cheap ``+=``).
    per_rank_bytes: list[float] = field(default_factory=list)


class Network:
    """The simulated interconnect: one NIC resource + mailbox per rank.

    All operation methods are *generator functions* (or return a driven
    generator); rank processes drive them with ``yield from``, e.g.::

        value = yield from net.fetch_add(rank, home, counter)
    """

    __slots__ = (
        "engine",
        "model",
        "n_ranks",
        "node_of",
        "nics",
        "_mailboxes",
        "stats",
        "faults",
    )

    def __init__(
        self,
        engine: Engine,
        model: NetworkModel,
        n_ranks: int,
        node_of: "Callable[[int], int] | None" = None,
    ) -> None:
        check_positive("n_ranks", n_ranks)
        self.engine = engine
        self.model = model
        self.n_ranks = int(n_ranks)
        self.node_of = node_of
        self.nics = [Resource(1) for _ in range(n_ranks)]
        self._mailboxes = [_Mailbox() for _ in range(n_ranks)]
        self.stats = NetworkStats(per_rank_bytes=[0.0] * n_ranks)
        #: Optional :class:`repro.faults.FaultInjector`; ``None`` (the
        #: default) keeps every fault check on a single attribute test, so
        #: fault-free runs take exactly the pre-fault-subsystem code path.
        self.faults = None

    def same_node(self, a: int, b: int) -> bool:
        """Whether two ranks share a node (False without a topology)."""
        if a == b:
            return True
        if self.node_of is None:
            return False
        return self.node_of(a) == self.node_of(b)

    def _check_rank(self, rank: int) -> int:
        if not 0 <= rank < self.n_ranks:
            raise ConfigurationError(f"rank {rank} out of range [0, {self.n_ranks})")
        return rank

    def _account(self, src: int, nbytes: int) -> None:
        self.stats.bytes_moved += nbytes
        self.stats.per_rank_bytes[src] += nbytes

    def _dead_target_check(self, src: int, dst: int, operation: str):
        """Fail an operation whose remote target has crashed (generator).

        The initiator burns software overhead plus the plan's RMA timeout
        discovering the death, then gets :class:`RankFailedError` — the
        on-contact detection path. Self-ops never fail (a dead rank's own
        process is already cancelled).
        """
        if self.faults is not None and src != dst and self.faults.is_dead(dst):
            self.faults.note_rma_failure()
            yield Timeout(self.model.software_overhead + self.faults.plan.rma_timeout)
            raise RankFailedError(dst, operation)

    def drop_mailbox(self, rank: int) -> None:
        """Discard a crashed rank's queued and in-flight-awaited messages."""
        box = self._mailboxes[self._check_rank(rank)]
        box.messages.clear()
        box.waiters.clear()

    # ------------------------------------------------------------------
    # One-sided operations
    # ------------------------------------------------------------------
    def _rma(self, src: int, dst: int, nbytes: int):
        """Common cost shape of a synchronous one-sided read/write.

        Three tiers: self (memcpy), same node (shared memory, no NIC),
        remote (wire latency + target NIC occupancy).
        """
        n = self.n_ranks
        if not (0 <= src < n and 0 <= dst < n):
            self._check_rank(src)
            self._check_rank(dst)
        if self.faults is not None:
            yield from self._dead_target_check(src, dst, "rma")
        m = self.model
        stats = self.stats
        stats.bytes_moved += nbytes
        stats.per_rank_bytes[src] += nbytes
        if src == dst:
            yield Timeout(m.software_overhead + nbytes / m.local_bandwidth)
            return
        if self.same_node(src, dst):
            yield Timeout(
                m.software_overhead + 2 * m.intra_latency + nbytes / m.intra_bandwidth
            )
            return
        yield Timeout(m.software_overhead)
        yield Timeout(m.latency)
        nic = self.nics[dst]
        yield nic.acquire()
        try:
            yield Timeout(m.nic_occupancy + nbytes / m.bandwidth)
        finally:
            nic.release()
        yield Timeout(m.latency)

    def get(self, src: int, dst: int, nbytes: int):
        """Synchronous one-sided read of ``nbytes`` from ``dst``'s memory."""
        self.stats.gets += 1
        return self._rma(src, dst, nbytes)

    def put(self, src: int, dst: int, nbytes: int):
        """Synchronous one-sided write (completion acknowledged)."""
        self.stats.puts += 1
        return self._rma(src, dst, nbytes)

    def accumulate(self, src: int, dst: int, nbytes: int):
        """One-sided accumulate: remote read-modify-write of a block."""
        n = self.n_ranks
        if not (0 <= src < n and 0 <= dst < n):
            self._check_rank(src)
            self._check_rank(dst)
        if self.faults is not None:
            yield from self._dead_target_check(src, dst, "accumulate")
        m = self.model
        self.stats.accumulates += 1
        self._account(src, nbytes)
        reduce_time = nbytes / m.accumulate_bandwidth
        if src == dst:
            yield Timeout(m.software_overhead + nbytes / m.local_bandwidth + reduce_time)
            return
        if self.same_node(src, dst):
            yield Timeout(
                m.software_overhead
                + 2 * m.intra_latency
                + nbytes / m.intra_bandwidth
                + reduce_time
            )
            return
        yield Timeout(m.software_overhead)
        yield Timeout(m.latency)
        nic = self.nics[dst]
        yield nic.acquire()
        try:
            yield Timeout(m.nic_occupancy + nbytes / m.bandwidth + reduce_time)
        finally:
            nic.release()
        yield Timeout(m.latency)

    def fetch_add(self, src: int, dst: int, counter: "SharedCell", amount: int = 1):
        """Atomic fetch-and-add on a cell homed at ``dst``; returns old value.

        The read-modify-write happens while the target NIC is held, so
        concurrent updates serialize exactly as hardware atomics at a
        memory controller would.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if self.faults is not None:
            yield from self._dead_target_check(src, dst, "fetch_add")
        m = self.model
        self.stats.fetch_adds += 1
        # Wire latency only across nodes; the read-modify-write always
        # serializes at the home memory controller (the NIC resource),
        # local or not — that is what makes a counter a counter.
        wire = 0.0 if self.same_node(src, dst) else m.latency
        intra = m.intra_latency if (src != dst and wire == 0.0) else 0.0
        yield Timeout(m.software_overhead)
        if wire or intra:
            yield Timeout(wire + intra)
        yield self.nics[dst].acquire()
        old = counter.value
        counter.value += amount
        try:
            yield Timeout(m.atomic_service)
        finally:
            self.nics[dst].release()
        if wire or intra:
            yield Timeout(wire + intra)
        return old

    # ------------------------------------------------------------------
    # Traced one-sided operations (hot paths)
    # ------------------------------------------------------------------
    # These fold :class:`repro.runtime.comm.RankContext`'s interval
    # recording into the cost-shape generator itself: one generator frame
    # per operation instead of a wrapper frame plus a cost frame. Every
    # event send traverses the whole ``yield from`` chain, so on paths
    # that run millions of times per study the extra frame is measurable.
    # Cost shapes, stats updates, record values, and failure behaviour are
    # bit-identical to driving the untraced generator under a recorder.

    def rma_traced(self, src: int, dst: int, nbytes: int, trace, category: str):
        """:meth:`_rma` with the caller's interval tracing inlined."""
        n = self.n_ranks
        if not (0 <= src < n and 0 <= dst < n):
            self._check_rank(src)
            self._check_rank(dst)
        engine = self.engine
        start = engine.now
        m = self.model
        faults = self.faults
        if faults is not None and src != dst and faults.is_dead(dst):
            faults.note_rma_failure()
            yield Timeout(m.software_overhead + faults.plan.rma_timeout)
            trace.record(src, _FAILED, start, engine.now)
            raise RankFailedError(dst, "rma")
        stats = self.stats
        stats.bytes_moved += nbytes
        stats.per_rank_bytes[src] += nbytes
        if src == dst:
            yield Timeout(m.software_overhead + nbytes / m.local_bandwidth)
            trace.record(src, category, start, engine.now)
            return
        if self.same_node(src, dst):
            yield Timeout(
                m.software_overhead + 2 * m.intra_latency + nbytes / m.intra_bandwidth
            )
            trace.record(src, category, start, engine.now)
            return
        yield Timeout(m.software_overhead)
        yield Timeout(m.latency)
        nic = self.nics[dst]
        yield nic.acquire()
        try:
            yield Timeout(m.nic_occupancy + nbytes / m.bandwidth)
        finally:
            nic.release()
        yield Timeout(m.latency)
        trace.record(src, category, start, engine.now)

    def accumulate_traced(
        self, src: int, dst: int, nbytes: int, trace, category: str
    ):
        """:meth:`accumulate` with the caller's interval tracing inlined."""
        n = self.n_ranks
        if not (0 <= src < n and 0 <= dst < n):
            self._check_rank(src)
            self._check_rank(dst)
        engine = self.engine
        start = engine.now
        m = self.model
        faults = self.faults
        if faults is not None and src != dst and faults.is_dead(dst):
            faults.note_rma_failure()
            yield Timeout(m.software_overhead + faults.plan.rma_timeout)
            trace.record(src, _FAILED, start, engine.now)
            raise RankFailedError(dst, "accumulate")
        stats = self.stats
        stats.accumulates += 1
        stats.bytes_moved += nbytes
        stats.per_rank_bytes[src] += nbytes
        reduce_time = nbytes / m.accumulate_bandwidth
        if src == dst:
            yield Timeout(
                m.software_overhead + nbytes / m.local_bandwidth + reduce_time
            )
            trace.record(src, category, start, engine.now)
            return
        if self.same_node(src, dst):
            yield Timeout(
                m.software_overhead
                + 2 * m.intra_latency
                + nbytes / m.intra_bandwidth
                + reduce_time
            )
            trace.record(src, category, start, engine.now)
            return
        yield Timeout(m.software_overhead)
        yield Timeout(m.latency)
        nic = self.nics[dst]
        yield nic.acquire()
        try:
            yield Timeout(m.nic_occupancy + nbytes / m.bandwidth + reduce_time)
        finally:
            nic.release()
        yield Timeout(m.latency)
        trace.record(src, category, start, engine.now)

    def fetch_add_traced(
        self,
        src: int,
        dst: int,
        counter: "SharedCell",
        amount: int,
        trace,
        category: str,
    ):
        """:meth:`fetch_add` with the caller's interval tracing inlined."""
        self._check_rank(src)
        self._check_rank(dst)
        engine = self.engine
        start = engine.now
        m = self.model
        faults = self.faults
        if faults is not None and src != dst and faults.is_dead(dst):
            faults.note_rma_failure()
            yield Timeout(m.software_overhead + faults.plan.rma_timeout)
            trace.record(src, _FAILED, start, engine.now)
            raise RankFailedError(dst, "fetch_add")
        self.stats.fetch_adds += 1
        wire = 0.0 if self.same_node(src, dst) else m.latency
        intra = m.intra_latency if (src != dst and wire == 0.0) else 0.0
        yield Timeout(m.software_overhead)
        if wire or intra:
            yield Timeout(wire + intra)
        nic = self.nics[dst]
        yield nic.acquire()
        old = counter.value
        counter.value += amount
        try:
            yield Timeout(m.atomic_service)
        finally:
            nic.release()
        if wire or intra:
            yield Timeout(wire + intra)
        trace.record(src, category, start, engine.now)
        return old

    # ------------------------------------------------------------------
    # Two-sided messages
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, tag: Any, payload: Any = None, nbytes: int = 64):
        """Fire-and-forget active message: initiator pays only ``o``.

        Delivery (latency + NIC occupancy at the target) proceeds as a
        daemon process; ordering between same-pair sends is preserved by
        the deterministic event queue.

        Under an active fault plan a message may be dropped (link loss,
        or the target died) or duplicated; the *sender* never learns —
        fire-and-forget means the initiator cost is identical either way.
        """
        self._check_rank(src)
        self._check_rank(dst)
        m = self.model
        self.stats.messages += 1
        self._account(src, nbytes)
        message = Message(src=src, tag=tag, payload=payload)
        intra = self.same_node(src, dst)
        fate = DELIVER if self.faults is None else self.faults.message_fate(src, dst)

        def delivery():
            if intra:
                yield Timeout(2 * m.intra_latency + nbytes / m.intra_bandwidth)
            else:
                yield Timeout(m.latency)
                nic = self.nics[dst]
                yield nic.acquire()
                try:
                    yield Timeout(m.nic_occupancy + nbytes / m.bandwidth)
                finally:
                    nic.release()
            if self.faults is not None and self.faults.is_dead(dst):
                self.faults.stats["messages_dropped"] += 1.0
                return
            self._mailboxes[dst].deliver(message)
            if fate == DUPLICATE:
                self._mailboxes[dst].deliver(Message(src=src, tag=tag, payload=payload))

        if fate != DROP:
            self.engine.process(delivery(), name=f"deliver({src}->{dst})", daemon=True)
        yield Timeout(m.software_overhead)

    def recv(self, rank: int, tag: Any = None, timeout: float | None = None):
        """Blocking receive of the next message matching ``tag`` (None=any).

        With ``timeout`` set, gives up after that many simulated seconds
        and returns ``None`` — the primitive under heartbeat-period
        parking in fault-tolerant models (an indefinite receive can wait
        forever on a message a dead rank will never send).
        """
        self._check_rank(rank)
        box = self._mailboxes[rank]
        ready = box.take(tag)
        if ready is not None:
            yield Timeout(0.0)
            return ready
        event = SimEvent()
        entry = (tag, event)
        box.waiters.append(entry)
        if timeout is not None:
            check_non_negative("timeout", timeout)

            def expire() -> None:
                if not event.fired:
                    try:
                        box.waiters.remove(entry)
                    except ValueError:
                        pass
                    event.fire(None)

            self.engine.schedule(timeout, expire)
        message = yield event.wait()
        return message

    def try_recv(self, rank: int, tag: Any = None) -> Message | None:
        """Non-blocking receive: pop a matching message or return None."""
        self._check_rank(rank)
        return self._mailboxes[rank].take(tag)


@dataclass
class SharedCell:
    """A word of remotely-addressable memory (for fetch-and-add targets)."""

    value: int = 0
