"""Discrete-event simulation core.

A tiny SimPy-like engine, purpose-built for this study:

- **Deterministic.** Events at equal timestamps fire in schedule order (a
  monotone sequence number breaks ties), so a run is a pure function of its
  inputs and seed — a property the reproducibility tests assert.
- **Generator processes.** A simulated activity is a Python generator that
  yields :class:`Request` objects (timeouts, resource acquisitions, event
  waits). Sub-activities compose with ``yield from``, which is how the
  network layer builds get/put/accumulate out of primitives.
- **Deadlock detection.** :meth:`Engine.run` raises
  :class:`~repro.util.errors.SimulationError` if the event heap drains
  while non-daemon processes are still blocked — this is how tests catch
  broken termination-detection protocols instead of hanging.

Fast-path design (the perf-critical part):

The majority of events in steal-heavy runs are *zero-delay* wake-ups —
process starts, resource grants, fired-event notifications, ``Timeout(0)``
resumes. Pushing those through the heap costs a ``heappush``/``heappop``
pair plus a fresh closure per event. Instead the engine keeps a plain FIFO
**run-queue** (:attr:`Engine._ready`) of ``(seq, callback, arg)`` entries
for events due at the current timestamp. This is *provably
order-identical* to the all-heap engine: sequence numbers are allocated
from one global counter regardless of destination, equal-time heap entries
already fire in seq order (FIFO), and the run loop interleaves the heap
head against the run-queue head by seq whenever both hold events at the
current time. Every ready entry is created at the current ``now`` with a
seq larger than any already-dispatched event, so dispatching by
``(time, seq)`` across both structures reproduces the heap-only order
exactly — the bit-for-bit equivalence suite pins this.

Scheduling uses cached bound methods (``process._resume``) instead of
per-event lambdas, and :meth:`Process.resume` dispatches ``Timeout`` — by
far the most common request — inline, without the ``activate`` indirection.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Generator
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable

from repro.util import SimulationError, check_non_negative


class Request:
    """Base class for things a process can ``yield``.

    Subclasses implement :meth:`activate`, arranging for
    ``process.resume(value)`` to be called when the request completes.
    """

    __slots__ = ()

    def activate(self, engine: "Engine", process: "Process") -> None:
        raise NotImplementedError


class Engine:
    """The event loop: a heap of ``(time, seq, callback)`` entries plus a
    FIFO run-queue of ``(seq, callback, arg)`` entries due *now*.

    Attributes:
        events_dispatched: total callbacks fired (heap + run-queue); a
            deterministic measure of simulated event volume.
        ready_dispatched: callbacks fired via the zero-delay run-queue
            (a subset of ``events_dispatched``).
        bucket_dispatched: callbacks fired via a bucketed timeline (always
            0 here; the :class:`~repro.simulate.sched.BucketEngine`
            subclass counts its timeline pops in this slot so result
            counters have one shape across engine modes).
        timeout_allocs: ``Timeout`` requests consumed by the resume fast
            path — the demand the freelist and the fused network ops
            exist to shrink. Counted at consumption (not construction) so
            the number is unaffected by pool reuse: engines running the
            same request mix report the same count. (Networks default
            fused ops on per :attr:`drives_fused_ops`, which *changes*
            the request mix — fused delays are bare callbacks, not
            Timeouts.)
        grant_resumes: resource grants actually delivered to a waiting
            process or fused operation (``Resource._deliver_grant``
            wake-ups, excluding re-released grants to cancelled holders).
    """

    __slots__ = (
        "now",
        "_heap",
        "_ready",
        "_seq",
        "_processes",
        "events_dispatched",
        "ready_dispatched",
        "bucket_dispatched",
        "timeout_allocs",
        "grant_resumes",
    )

    #: Process class instantiated by :meth:`process`; scheduler subclasses
    #: (``repro.simulate.sched``) swap in a Process whose Timeout fast path
    #: targets their timeline instead of the heap.
    _process_cls: type["Process"]

    #: Whether Networks built on this engine should default to the fused
    #: (generator-free) traced-op path. False here: the pure-Python walk
    #: of a fused delay program is slower than the generator it replaces;
    #: only the compiled engine (which walks programs in C) flips this.
    drives_fused_ops = False

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._ready: deque[tuple[int, Callable[[Any], None], Any]] = deque()
        self._seq = 0
        self._processes: list[Process] = []
        self.events_dispatched = 0
        self.ready_dispatched = 0
        self.bucket_dispatched = 0
        self.timeout_allocs = 0
        self.grant_resumes = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` (FIFO among equal times)."""
        check_non_negative("delay", delay)
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (self.now + delay, seq, callback))

    def call_now(self, callback: Callable[[Any], None], arg: Any = None) -> None:
        """Run ``callback(arg)`` at the current time via the run-queue.

        Order-equivalent to ``schedule(0.0, lambda: callback(arg))`` but
        without the heap churn or the closure allocation — the entry
        receives the next global sequence number, so it fires after every
        already-scheduled event at the current timestamp and before any
        later-scheduled one, exactly as a zero-delay heap entry would.
        """
        seq = self._seq
        self._seq = seq + 1
        self._ready.append((seq, callback, arg))

    def process(
        self,
        generator: Generator[Request, Any, Any],
        name: str = "process",
        daemon: bool = False,
        on_finish: Callable[[], None] | None = None,
    ) -> "Process":
        """Register and start a process from a generator."""
        proc = self._process_cls(
            self, generator, name=name, daemon=daemon, on_finish=on_finish
        )
        self._processes.append(proc)
        self.call_now(proc._resume, None)
        return proc

    def run(self, until: float = math.inf) -> float:
        """Drain the event heap (up to time ``until``); return final time.

        The deadlock check only runs when the heap drains *completely*:
        a bounded ``run(until=...)`` that stops because the next event
        lies beyond ``until`` returns normally even if processes are
        blocked — they may legitimately be waiting for events scheduled
        past the horizon. After a bounded run, call :meth:`blocked` to
        see which non-daemon processes have not finished; with an empty
        heap a non-empty :meth:`blocked` list *is* a deadlock.

        Raises:
            SimulationError: on deadlock — the heap drained before all
                non-daemon processes finished.
        """
        heap = self._heap
        ready = self._ready
        pop_ready = ready.popleft
        dispatched = self.events_dispatched
        from_ready = self.ready_dispatched
        # ``now`` only advances in this loop, so a local mirror is safe;
        # the attribute is kept current for callbacks that read it.
        now = self.now
        try:
            while True:
                if ready:
                    # Heap entries never lie in the past, so ``time <=
                    # now`` means *at* now; among equal-time events the
                    # lower seq fires first, matching the all-heap order.
                    if heap and heap[0][0] <= now and heap[0][1] < ready[0][0]:
                        time, _, callback = heappop(heap)
                        dispatched += 1
                        callback()
                    else:
                        _, callback, arg = pop_ready()
                        dispatched += 1
                        from_ready += 1
                        callback(arg)
                elif heap:
                    time, _, callback = heap[0]
                    if time > until:
                        self.now = until
                        return until
                    heappop(heap)
                    self.now = now = time
                    dispatched += 1
                    callback()
                else:
                    break
        finally:
            self.events_dispatched = dispatched
            self.ready_dispatched = from_ready
        stuck = [p.name for p in self.blocked()]
        if stuck:
            raise SimulationError(
                f"deadlock at t={self.now:.6g}: processes still blocked: {stuck[:10]}"
                + ("..." if len(stuck) > 10 else "")
            )
        return self.now

    def blocked(self) -> list["Process"]:
        """Non-daemon processes that have not finished (nor been cancelled).

        After ``run(until=t)`` returns at the time horizon this is merely
        "still in flight"; after an unbounded ``run()`` (or once the heap
        is empty) any entry here is genuinely stuck.
        """
        return [p for p in self._processes if not p.done and not p.daemon]

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled (0 = everything has drained)."""
        return len(self._heap) + len(self._ready)


class Process:
    """A generator-driven simulated activity.

    Attributes:
        done: True once the generator has returned (or was cancelled).
        cancelled: True if the process was killed via :meth:`cancel`.
        result: the generator's return value (``StopIteration.value``).
    """

    __slots__ = (
        "engine",
        "generator",
        "name",
        "daemon",
        "done",
        "cancelled",
        "result",
        "_completion",
        "_resume",
        "_send",
        "_on_finish",
    )

    def __init__(
        self,
        engine: Engine,
        generator: Generator[Request, Any, Any],
        name: str = "process",
        daemon: bool = False,
        on_finish: Callable[[], None] | None = None,
    ) -> None:
        self.engine = engine
        self.generator = generator
        self.name = name
        self.daemon = daemon
        self.done = False
        self.cancelled = False
        self.result: Any = None
        self._completion: SimEvent | None = None
        # One bound method reused for every wake-up of this process,
        # instead of a fresh lambda per scheduled event — and the
        # generator's send cached the same way.
        self._resume = self.resume
        self._send = generator.send
        # Called synchronously (no event) when the generator returns;
        # not called on cancellation, mirroring a trailing statement
        # after ``yield from`` that a close() would skip.
        self._on_finish = on_finish

    def cancel(self) -> None:
        """Kill the process immediately (fault injection: a rank crash).

        Closes the generator — ``finally`` blocks run, so held resources
        (NIC slots, queue locks) are released rather than leaked — and
        marks the process done. Late wake-ups (a queued resource grant, a
        message delivery) find ``cancelled`` set and are ignored instead
        of deadlocking the heap. Joiners are resumed with ``None``.
        """
        if self.done:
            return
        self.done = True
        self.cancelled = True
        self.generator.close()
        if self._completion is not None and not self._completion.fired:
            self._completion.fire(None)

    def resume(self, value: Any = None) -> None:
        """Advance the generator; route the next request or finish."""
        if self.done:
            if self.cancelled:
                return  # a wake-up raced with cancellation; drop it
            raise SimulationError(f"process {self.name!r} resumed after completion")
        try:
            request = self._send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        if request.__class__ is Timeout:
            # Inline the dominant request type: skip activate() dispatch.
            engine = self.engine
            engine.timeout_allocs += 1
            seq = engine._seq
            engine._seq = seq + 1
            delay = request.delay
            if getrefcount(request) == 2:
                # We hold the only reference (the generator yielded a
                # fresh instance and kept none): recycle it.
                _timeout_pool_append(request)
            if delay == 0.0:
                engine._ready.append((seq, self._resume, None))
            else:
                heappush(engine._heap, (engine.now + delay, seq, self._resume))
            return
        if not isinstance(request, Request):
            raise SimulationError(
                f"process {self.name!r} yielded {request!r}; processes must "
                "yield Request instances (Timeout, acquire(), wait(), ...)"
            )
        request.activate(self.engine, self)

    def _finish(self, value: Any) -> None:
        """Complete the process: run ``on_finish``, record the result, fire
        joiners. Shared by :meth:`resume` and the compiled resume path
        (``repro.simulate._engine_core``), which must stay semantically
        identical to this method.
        """
        if self._on_finish is not None:
            self._on_finish()
        self.done = True
        self.result = value
        if self._completion is not None:
            self._completion.fire(value)

    def join(self) -> Request:
        """Request that completes when this process finishes."""
        if self._completion is None:
            self._completion = SimEvent()
            if self.done:
                self._completion.fire(self.result)
        return self._completion.wait()


Engine._process_cls = Process


#: Freelist of consumed ``Timeout`` instances. A Timeout normally lives
#: for exactly one yield: constructed, yielded, its ``delay`` read by the
#: resume fast path, then discarded — so the pool stays a handful of
#: entries deep while eliminating millions of allocations per run. The
#: fast paths recycle only when the refcount proves sole ownership, so an
#: instance a generator (or test) holds onto is never reused under it.
#: ``list.append``/``pop`` are GIL-atomic, which keeps the shared pool
#: safe when the study service runs simulations on several threads.
_timeout_pool: list["Timeout"] = []
_timeout_pool_append = _timeout_pool.append


class Timeout(Request):
    """Resume the process after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        # `delay < 0` is the only rejected case (matching
        # check_non_negative); anything else skips the helper call.
        if delay < 0:
            check_non_negative("delay", delay)
        self.delay = delay

    def activate(self, engine: Engine, process: Process) -> None:
        engine.schedule(self.delay, process._resume)


def pooled_timeout(delay: float) -> Timeout:
    """A :class:`Timeout`, served from the freelist when one is banked.

    A plain function beats ``Timeout.__new__`` pooling by ~2.5x per
    construction (class-call machinery runs two Python frames, a factory
    runs one and skips allocation entirely on a hit) and, unlike an
    override, costs the public ``Timeout(...)`` constructor nothing. The
    per-event generators below (network ops, compute/overhead delays)
    route through this; everything else keeps the ordinary constructor.
    """
    if _timeout_pool:
        timeout = _timeout_pool.pop()
        if delay < 0:
            check_non_negative("delay", delay)
        timeout.delay = delay
        return timeout
    return Timeout(delay)


class SimEvent:
    """A one-shot event carrying a value; late waiters resume immediately."""

    __slots__ = ("fired", "value", "_waiters")

    def __init__(self) -> None:
        self.fired = False
        self.value: Any = None
        self._waiters: list[Process] = []

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise SimulationError("SimEvent fired twice")
        self.fired = True
        self.value = value
        waiters = self._waiters
        if waiters:
            self._waiters = []
            # Registration order == seq order == resume order; each waiter
            # takes one run-queue slot instead of a heap entry + closure.
            engine = waiters[0].engine
            ready = engine._ready
            seq = engine._seq
            for proc in waiters:
                ready.append((seq, proc._resume, value))
                seq += 1
            engine._seq = seq

    def wait(self) -> Request:
        return _EventWait(self)


class _EventWait(Request):
    __slots__ = ("event",)

    def __init__(self, event: SimEvent) -> None:
        self.event = event

    def activate(self, engine: Engine, process: Process) -> None:
        event = self.event
        if event.fired:
            engine.call_now(process._resume, event.value)
        else:
            event._waiters.append(process)


class Resource:
    """A FIFO resource with integer capacity (e.g. a NIC, a core).

    ``yield resource.acquire()`` blocks until a slot is free; the holder
    must call :meth:`release` exactly once. FIFO granting makes queueing
    delay — the contention signal of experiment E6 — deterministic.
    """

    __slots__ = ("capacity", "in_use", "_queue", "total_waits", "total_acquisitions")

    def __init__(self, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.in_use = 0
        self._queue: deque[Process] = deque()
        #: Total processes that ever waited (contention statistic).
        self.total_waits = 0
        #: Total acquisitions granted.
        self.total_acquisitions = 0

    def acquire(self) -> Request:
        return _ResourceAcquire(self)

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        queue = self._queue
        while queue:
            proc = queue.popleft()
            if proc.done:
                continue  # cancelled while queued; the slot passes it by
            self.total_acquisitions += 1
            proc.engine.call_now(self._deliver_grant, proc)
            return
        self.in_use -= 1

    def _deliver_grant(self, proc: Process) -> None:
        """Hand an already-counted slot to ``proc`` at its wake-up.

        If ``proc`` was cancelled between the grant and the wake-up, the
        slot is released again instead of being held by a dead process.
        """
        if proc.done:
            self.release()
        else:
            proc.engine.grant_resumes += 1
            proc.resume(None)


class _ResourceAcquire(Request):
    __slots__ = ("resource",)

    def __init__(self, resource: Resource) -> None:
        self.resource = resource

    def activate(self, engine: Engine, process: Process) -> None:
        res = self.resource
        if res.in_use < res.capacity:
            res.in_use += 1
            res.total_acquisitions += 1
            engine.call_now(res._deliver_grant, process)
        else:
            res.total_waits += 1
            res._queue.append(process)


def hold(resource: Resource, duration: float) -> Generator[Request, Any, None]:
    """Acquire ``resource``, hold it for ``duration``, release it."""
    yield resource.acquire()
    try:
        yield pooled_timeout(duration)
    finally:
        resource.release()
