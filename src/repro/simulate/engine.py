"""Discrete-event simulation core.

A tiny SimPy-like engine, purpose-built for this study:

- **Deterministic.** Events at equal timestamps fire in schedule order (a
  monotone sequence number breaks ties), so a run is a pure function of its
  inputs and seed — a property the reproducibility tests assert.
- **Generator processes.** A simulated activity is a Python generator that
  yields :class:`Request` objects (timeouts, resource acquisitions, event
  waits). Sub-activities compose with ``yield from``, which is how the
  network layer builds get/put/accumulate out of primitives.
- **Deadlock detection.** :meth:`Engine.run` raises
  :class:`~repro.util.errors.SimulationError` if the event heap drains
  while non-daemon processes are still blocked — this is how tests catch
  broken termination-detection protocols instead of hanging.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from collections.abc import Generator
from typing import Any, Callable

from repro.util import SimulationError, check_non_negative


class Request:
    """Base class for things a process can ``yield``.

    Subclasses implement :meth:`activate`, arranging for
    ``process.resume(value)`` to be called when the request completes.
    """

    def activate(self, engine: "Engine", process: "Process") -> None:
        raise NotImplementedError


class Engine:
    """The event loop: a heap of ``(time, seq, callback)`` entries."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._processes: list[Process] = []

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` (FIFO among equal times)."""
        check_non_negative("delay", delay)
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), callback))

    def process(
        self,
        generator: Generator[Request, Any, Any],
        name: str = "process",
        daemon: bool = False,
    ) -> "Process":
        """Register and start a process from a generator."""
        proc = Process(self, generator, name=name, daemon=daemon)
        self._processes.append(proc)
        self.schedule(0.0, lambda: proc.resume(None))
        return proc

    def run(self, until: float = math.inf) -> float:
        """Drain the event heap (up to time ``until``); return final time.

        The deadlock check only runs when the heap drains *completely*:
        a bounded ``run(until=...)`` that stops because the next event
        lies beyond ``until`` returns normally even if processes are
        blocked — they may legitimately be waiting for events scheduled
        past the horizon. After a bounded run, call :meth:`blocked` to
        see which non-daemon processes have not finished; with an empty
        heap a non-empty :meth:`blocked` list *is* a deadlock.

        Raises:
            SimulationError: on deadlock — the heap drained before all
                non-daemon processes finished.
        """
        while self._heap:
            time, _, callback = self._heap[0]
            if time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            callback()
        stuck = [p.name for p in self.blocked()]
        if stuck:
            raise SimulationError(
                f"deadlock at t={self.now:.6g}: processes still blocked: {stuck[:10]}"
                + ("..." if len(stuck) > 10 else "")
            )
        return self.now

    def blocked(self) -> list["Process"]:
        """Non-daemon processes that have not finished (nor been cancelled).

        After ``run(until=t)`` returns at the time horizon this is merely
        "still in flight"; after an unbounded ``run()`` (or once the heap
        is empty) any entry here is genuinely stuck.
        """
        return [p for p in self._processes if not p.done and not p.daemon]

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled (0 = the heap has drained)."""
        return len(self._heap)


class Process:
    """A generator-driven simulated activity.

    Attributes:
        done: True once the generator has returned (or was cancelled).
        cancelled: True if the process was killed via :meth:`cancel`.
        result: the generator's return value (``StopIteration.value``).
    """

    def __init__(
        self,
        engine: Engine,
        generator: Generator[Request, Any, Any],
        name: str = "process",
        daemon: bool = False,
    ) -> None:
        self.engine = engine
        self.generator = generator
        self.name = name
        self.daemon = daemon
        self.done = False
        self.cancelled = False
        self.result: Any = None
        self._completion: SimEvent | None = None

    def cancel(self) -> None:
        """Kill the process immediately (fault injection: a rank crash).

        Closes the generator — ``finally`` blocks run, so held resources
        (NIC slots, queue locks) are released rather than leaked — and
        marks the process done. Late wake-ups (a queued resource grant, a
        message delivery) find ``cancelled`` set and are ignored instead
        of deadlocking the heap. Joiners are resumed with ``None``.
        """
        if self.done:
            return
        self.done = True
        self.cancelled = True
        self.generator.close()
        if self._completion is not None and not self._completion.fired:
            self._completion.fire(None)

    def resume(self, value: Any) -> None:
        """Advance the generator; route the next request or finish."""
        if self.cancelled:
            return  # a wake-up raced with cancellation; drop it
        if self.done:
            raise SimulationError(f"process {self.name!r} resumed after completion")
        try:
            request = self.generator.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            if self._completion is not None:
                self._completion.fire(stop.value)
            return
        if not isinstance(request, Request):
            raise SimulationError(
                f"process {self.name!r} yielded {request!r}; processes must "
                "yield Request instances (Timeout, acquire(), wait(), ...)"
            )
        request.activate(self.engine, self)

    def join(self) -> Request:
        """Request that completes when this process finishes."""
        if self._completion is None:
            self._completion = SimEvent()
            if self.done:
                self._completion.fire(self.result)
        return self._completion.wait()


class Timeout(Request):
    """Resume the process after a fixed simulated delay."""

    def __init__(self, delay: float) -> None:
        self.delay = check_non_negative("delay", delay)

    def activate(self, engine: Engine, process: Process) -> None:
        engine.schedule(self.delay, lambda: process.resume(None))


class SimEvent:
    """A one-shot event carrying a value; late waiters resume immediately."""

    def __init__(self) -> None:
        self.fired = False
        self.value: Any = None
        self._waiters: list[Process] = []

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise SimulationError("SimEvent fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc.engine.schedule(0.0, lambda p=proc: p.resume(value))

    def wait(self) -> Request:
        return _EventWait(self)


class _EventWait(Request):
    def __init__(self, event: SimEvent) -> None:
        self.event = event

    def activate(self, engine: Engine, process: Process) -> None:
        if self.event.fired:
            engine.schedule(0.0, lambda: process.resume(self.event.value))
        else:
            self.event._waiters.append(process)


class Resource:
    """A FIFO resource with integer capacity (e.g. a NIC, a core).

    ``yield resource.acquire()`` blocks until a slot is free; the holder
    must call :meth:`release` exactly once. FIFO granting makes queueing
    delay — the contention signal of experiment E6 — deterministic.
    """

    def __init__(self, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.in_use = 0
        self._queue: deque[Process] = deque()
        #: Total processes that ever waited (contention statistic).
        self.total_waits = 0
        #: Total acquisitions granted.
        self.total_acquisitions = 0

    def acquire(self) -> Request:
        return _ResourceAcquire(self)

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        while self._queue:
            proc = self._queue.popleft()
            if proc.done:
                continue  # cancelled while queued; the slot passes it by
            self.total_acquisitions += 1
            self._schedule_grant(proc)
            return
        self.in_use -= 1

    def _schedule_grant(self, proc: Process) -> None:
        """Hand the (already counted) slot to ``proc`` at the next tick.

        If ``proc`` is cancelled between the grant and the wake-up, the
        slot is released again instead of being held by a dead process.
        """
        proc.engine.schedule(0.0, lambda: self._deliver_grant(proc))

    def _deliver_grant(self, proc: Process) -> None:
        if proc.done:
            self.release()
        else:
            proc.resume(None)


class _ResourceAcquire(Request):
    def __init__(self, resource: Resource) -> None:
        self.resource = resource

    def activate(self, engine: Engine, process: Process) -> None:
        res = self.resource
        if res.in_use < res.capacity:
            res.in_use += 1
            res.total_acquisitions += 1
            res._schedule_grant(process)
        else:
            res.total_waits += 1
            res._queue.append(process)


def hold(resource: Resource, duration: float) -> Generator[Request, Any, None]:
    """Acquire ``resource``, hold it for ``duration``, release it."""
    yield resource.acquire()
    try:
        yield Timeout(duration)
    finally:
        resource.release()
