/* Compiled run loop for repro.simulate.engine.Engine.
 *
 * This extension moves the two hottest frames of the discrete-event
 * simulator -- Engine.run() and the Process.resume() Timeout fast path --
 * out of the interpreter. It operates on the *same* data layout as the
 * pure-Python engine (the `_heap` list of (time, seq, callback) tuples,
 * the `_ready` deque of (seq, callback, arg) tuples, the `_seq` counter,
 * the `now` float and the dispatch counters), mutating them through the
 * slot descriptors, so Python-side scheduling (SimEvent.fire, Resource
 * grants, call_now from callbacks) interleaves with the C loop exactly as
 * it does with the Python loop.
 *
 * Bit-for-bit contract: every control-flow branch here mirrors a line of
 * Engine.run / Process.resume; `now + delay` is the same IEEE-754 double
 * addition CPython performs; seq allocation and the heap/run-queue
 * interleave rule are identical. The golden-digest suites are run under
 * REPRO_ENGINE=compiled in CI to pin this.
 *
 * Built on demand by repro.simulate.sched (cc -O2 -fPIC -shared); no
 * third-party headers, C99 + Python.h only.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

/* Registered by setup(): the engine's collaborator classes. */
static PyObject *g_process_cls = NULL;
static PyObject *g_timeout_cls = NULL;
static PyObject *g_request_cls = NULL;
static PyObject *g_sim_error = NULL;
static PyObject *g_resume_func = NULL; /* Process.resume, the plain function */
static PyObject *g_heappush = NULL;
static PyObject *g_heappop = NULL;

/* Interned attribute names. */
static PyObject *s_heap, *s_ready, *s_seq, *s_now;
static PyObject *s_events_dispatched, *s_ready_dispatched;
static PyObject *s_popleft, *s_append;
static PyObject *s_done, *s_cancelled, *s_send, *s_resume_attr, *s_engine;
static PyObject *s_delay, *s_name, *s_value, *s_finish, *s_activate;

typedef struct {
    PyObject *engine;       /* borrowed */
    PyObject *heap;         /* owned; the engine's _heap list */
    PyObject *ready;        /* owned; the engine's _ready deque */
    PyObject *ready_append; /* owned; bound _ready.append */
} RunCtx;

static int
get_ll(PyObject *obj, PyObject *name, long long *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    *out = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
set_ll(PyObject *obj, PyObject *name, long long value)
{
    PyObject *v = PyLong_FromLongLong(value);
    if (v == NULL)
        return -1;
    int rc = PyObject_SetAttr(obj, name, v);
    Py_DECREF(v);
    return rc;
}

static int
get_double(PyObject *obj, PyObject *name, double *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    *out = PyFloat_AsDouble(v);
    Py_DECREF(v);
    if (*out == -1.0 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
set_double(PyObject *obj, PyObject *name, double value)
{
    PyObject *v = PyFloat_FromDouble(value);
    if (v == NULL)
        return -1;
    int rc = PyObject_SetAttr(obj, name, v);
    Py_DECREF(v);
    return rc;
}

/* Extract (time, seq) from a heap entry; rejects malformed entries. */
static int
entry_key(PyObject *entry, double *time, long long *seq)
{
    if (!PyTuple_Check(entry) || PyTuple_GET_SIZE(entry) != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "engine heap entry is not a (time, seq, callback) tuple");
        return -1;
    }
    *time = PyFloat_AsDouble(PyTuple_GET_ITEM(entry, 0));
    if (*time == -1.0 && PyErr_Occurred())
        return -1;
    *seq = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 1));
    if (*seq == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* Process.resume(value), compiled. Returns 0 on success, -1 with an
 * exception set on failure. Mirrors the Python method line for line. */
static int
resume_fast(RunCtx *ctx, PyObject *proc, PyObject *value)
{
    /* if self.done: return / raise */
    PyObject *done = PyObject_GetAttr(proc, s_done);
    if (done == NULL)
        return -1;
    int is_done = PyObject_IsTrue(done);
    Py_DECREF(done);
    if (is_done < 0)
        return -1;
    if (is_done) {
        PyObject *cancelled = PyObject_GetAttr(proc, s_cancelled);
        if (cancelled == NULL)
            return -1;
        int is_cancelled = PyObject_IsTrue(cancelled);
        Py_DECREF(cancelled);
        if (is_cancelled < 0)
            return -1;
        if (is_cancelled)
            return 0; /* a wake-up raced with cancellation; drop it */
        PyObject *name = PyObject_GetAttr(proc, s_name);
        PyErr_Format(g_sim_error, "process %R resumed after completion",
                     name ? name : Py_None);
        Py_XDECREF(name);
        return -1;
    }

    /* request = self._send(value) */
    PyObject *send = PyObject_GetAttr(proc, s_send);
    if (send == NULL)
        return -1;
    PyObject *request = PyObject_CallOneArg(send, value);
    Py_DECREF(send);

    if (request == NULL) {
        if (!PyErr_ExceptionMatches(PyExc_StopIteration))
            return -1;
        /* generator returned: self._finish(stop.value) */
        PyObject *et, *ev, *etb;
        PyErr_Fetch(&et, &ev, &etb);
        PyErr_NormalizeException(&et, &ev, &etb);
        PyObject *stop_value = NULL;
        if (ev != NULL)
            stop_value = PyObject_GetAttr(ev, s_value);
        if (stop_value == NULL) {
            PyErr_Clear();
            stop_value = Py_None;
            Py_INCREF(stop_value);
        }
        Py_XDECREF(et);
        Py_XDECREF(ev);
        Py_XDECREF(etb);
        PyObject *finish = PyObject_GetAttr(proc, s_finish);
        if (finish == NULL) {
            Py_DECREF(stop_value);
            return -1;
        }
        PyObject *r = PyObject_CallOneArg(finish, stop_value);
        Py_DECREF(finish);
        Py_DECREF(stop_value);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }

    /* if request.__class__ is Timeout: inline dispatch */
    if ((PyObject *)Py_TYPE(request) == g_timeout_cls) {
        int rc = -1;
        PyObject *engine = NULL, *seqobj = NULL, *newseq = NULL;
        PyObject *delayobj = NULL, *resume_cb = NULL, *tup = NULL;
        engine = PyObject_GetAttr(proc, s_engine);
        if (engine == NULL)
            goto timeout_done;
        seqobj = PyObject_GetAttr(engine, s_seq);
        if (seqobj == NULL)
            goto timeout_done;
        long long seq = PyLong_AsLongLong(seqobj);
        if (seq == -1 && PyErr_Occurred())
            goto timeout_done;
        newseq = PyLong_FromLongLong(seq + 1);
        if (newseq == NULL || PyObject_SetAttr(engine, s_seq, newseq) < 0)
            goto timeout_done;
        delayobj = PyObject_GetAttr(request, s_delay);
        if (delayobj == NULL)
            goto timeout_done;
        double delay = PyFloat_AsDouble(delayobj);
        if (delay == -1.0 && PyErr_Occurred())
            goto timeout_done;
        resume_cb = PyObject_GetAttr(proc, s_resume_attr);
        if (resume_cb == NULL)
            goto timeout_done;
        if (delay == 0.0) {
            tup = PyTuple_Pack(3, seqobj, resume_cb, Py_None);
            if (tup == NULL)
                goto timeout_done;
            PyObject *r;
            if (engine == ctx->engine) {
                r = PyObject_CallOneArg(ctx->ready_append, tup);
            }
            else {
                PyObject *ready = PyObject_GetAttr(engine, s_ready);
                if (ready == NULL)
                    goto timeout_done;
                r = PyObject_CallMethodOneArg(ready, s_append, tup);
                Py_DECREF(ready);
            }
            if (r == NULL)
                goto timeout_done;
            Py_DECREF(r);
        }
        else {
            double now;
            if (get_double(engine, s_now, &now) < 0)
                goto timeout_done;
            PyObject *timeobj = PyFloat_FromDouble(now + delay);
            if (timeobj == NULL)
                goto timeout_done;
            tup = PyTuple_Pack(3, timeobj, seqobj, resume_cb);
            Py_DECREF(timeobj);
            if (tup == NULL)
                goto timeout_done;
            PyObject *heap;
            if (engine == ctx->engine) {
                heap = ctx->heap;
                Py_INCREF(heap);
            }
            else {
                heap = PyObject_GetAttr(engine, s_heap);
                if (heap == NULL)
                    goto timeout_done;
            }
            PyObject *r = PyObject_CallFunctionObjArgs(g_heappush, heap, tup, NULL);
            Py_DECREF(heap);
            if (r == NULL)
                goto timeout_done;
            Py_DECREF(r);
        }
        rc = 0;
    timeout_done:
        Py_XDECREF(tup);
        Py_XDECREF(resume_cb);
        Py_XDECREF(delayobj);
        Py_XDECREF(newseq);
        Py_XDECREF(seqobj);
        Py_XDECREF(engine);
        Py_DECREF(request);
        return rc;
    }

    /* if not isinstance(request, Request): raise */
    int is_request = PyObject_IsInstance(request, g_request_cls);
    if (is_request < 0) {
        Py_DECREF(request);
        return -1;
    }
    if (!is_request) {
        PyObject *name = PyObject_GetAttr(proc, s_name);
        PyErr_Format(g_sim_error,
                     "process %R yielded %R; processes must yield Request "
                     "instances (Timeout, acquire(), wait(), ...)",
                     name ? name : Py_None, request);
        Py_XDECREF(name);
        Py_DECREF(request);
        return -1;
    }

    /* request.activate(self.engine, self) */
    PyObject *engine = PyObject_GetAttr(proc, s_engine);
    if (engine == NULL) {
        Py_DECREF(request);
        return -1;
    }
    PyObject *activate = PyObject_GetAttr(request, s_activate);
    Py_DECREF(request);
    if (activate == NULL) {
        Py_DECREF(engine);
        return -1;
    }
    PyObject *r = PyObject_CallFunctionObjArgs(activate, engine, proc, NULL);
    Py_DECREF(activate);
    Py_DECREF(engine);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Call a dispatched callback. `arg == NULL` means the heap convention
 * (no-argument call); otherwise the run-queue convention cb(arg). Bound
 * Process.resume methods short-circuit into resume_fast. */
static int
invoke_callback(RunCtx *ctx, PyObject *cb, PyObject *arg)
{
    if (PyMethod_Check(cb) && PyMethod_GET_FUNCTION(cb) == g_resume_func) {
        PyObject *self = PyMethod_GET_SELF(cb);
        return resume_fast(ctx, self, arg != NULL ? arg : Py_None);
    }
    PyObject *r = arg != NULL ? PyObject_CallOneArg(cb, arg)
                              : PyObject_CallNoArgs(cb);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* run(engine, until) -> 1 if stopped at the horizon, 0 if drained.
 * Counters and `now` are written back on every exit path (the Python
 * loop's `finally`), and callback exceptions propagate unchanged. */
static PyObject *
core_run(PyObject *self, PyObject *args)
{
    PyObject *engine;
    double until;
    if (!PyArg_ParseTuple(args, "Od:run", &engine, &until))
        return NULL;
    if (g_resume_func == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "_engine_core.setup() was not called");
        return NULL;
    }

    RunCtx ctx;
    ctx.engine = engine;
    ctx.heap = PyObject_GetAttr(engine, s_heap);
    ctx.ready = PyObject_GetAttr(engine, s_ready);
    ctx.ready_append = ctx.ready ? PyObject_GetAttr(ctx.ready, s_append) : NULL;
    PyObject *pop_ready =
        ctx.ready ? PyObject_GetAttr(ctx.ready, s_popleft) : NULL;

    long long dispatched = 0, from_ready = 0;
    double now = 0.0;
    int err = 0, horizon = 0;

    if (ctx.heap == NULL || ctx.ready == NULL || ctx.ready_append == NULL ||
        pop_ready == NULL || !PyList_Check(ctx.heap) ||
        get_ll(engine, s_events_dispatched, &dispatched) < 0 ||
        get_ll(engine, s_ready_dispatched, &from_ready) < 0 ||
        get_double(engine, s_now, &now) < 0) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "engine._heap must be a list");
        Py_XDECREF(ctx.heap);
        Py_XDECREF(ctx.ready);
        Py_XDECREF(ctx.ready_append);
        Py_XDECREF(pop_ready);
        return NULL;
    }

    for (;;) {
        Py_ssize_t nready = PyObject_Size(ctx.ready);
        if (nready < 0) {
            err = 1;
            break;
        }
        if (nready > 0) {
            int use_heap = 0;
            if (PyList_GET_SIZE(ctx.heap) > 0) {
                double ht;
                long long hs;
                if (entry_key(PyList_GET_ITEM(ctx.heap, 0), &ht, &hs) < 0) {
                    err = 1;
                    break;
                }
                if (ht <= now) {
                    PyObject *r0 = PySequence_GetItem(ctx.ready, 0);
                    if (r0 == NULL || !PyTuple_Check(r0) ||
                        PyTuple_GET_SIZE(r0) != 3) {
                        Py_XDECREF(r0);
                        if (!PyErr_Occurred())
                            PyErr_SetString(
                                PyExc_TypeError,
                                "run-queue entry is not a (seq, cb, arg) tuple");
                        err = 1;
                        break;
                    }
                    long long rs = PyLong_AsLongLong(PyTuple_GET_ITEM(r0, 0));
                    Py_DECREF(r0);
                    if (rs == -1 && PyErr_Occurred()) {
                        err = 1;
                        break;
                    }
                    if (hs < rs)
                        use_heap = 1;
                }
            }
            if (use_heap) {
                PyObject *item = PyObject_CallOneArg(g_heappop, ctx.heap);
                if (item == NULL) {
                    err = 1;
                    break;
                }
                dispatched++;
                int rc = invoke_callback(&ctx, PyTuple_GET_ITEM(item, 2), NULL);
                Py_DECREF(item);
                if (rc < 0) {
                    err = 1;
                    break;
                }
            }
            else {
                PyObject *item = PyObject_CallNoArgs(pop_ready);
                if (item == NULL || !PyTuple_Check(item) ||
                    PyTuple_GET_SIZE(item) != 3) {
                    Py_XDECREF(item);
                    if (!PyErr_Occurred())
                        PyErr_SetString(
                            PyExc_TypeError,
                            "run-queue entry is not a (seq, cb, arg) tuple");
                    err = 1;
                    break;
                }
                dispatched++;
                from_ready++;
                int rc = invoke_callback(&ctx, PyTuple_GET_ITEM(item, 1),
                                         PyTuple_GET_ITEM(item, 2));
                Py_DECREF(item);
                if (rc < 0) {
                    err = 1;
                    break;
                }
            }
        }
        else if (PyList_GET_SIZE(ctx.heap) > 0) {
            double ht;
            long long hs;
            if (entry_key(PyList_GET_ITEM(ctx.heap, 0), &ht, &hs) < 0) {
                err = 1;
                break;
            }
            if (ht > until) {
                now = until;
                if (set_double(engine, s_now, until) < 0)
                    err = 1;
                else
                    horizon = 1;
                break;
            }
            PyObject *item = PyObject_CallOneArg(g_heappop, ctx.heap);
            if (item == NULL) {
                err = 1;
                break;
            }
            now = ht;
            if (set_double(engine, s_now, now) < 0) {
                Py_DECREF(item);
                err = 1;
                break;
            }
            dispatched++;
            int rc = invoke_callback(&ctx, PyTuple_GET_ITEM(item, 2), NULL);
            Py_DECREF(item);
            if (rc < 0) {
                err = 1;
                break;
            }
        }
        else {
            break;
        }
    }

    /* finally: write the counters back, preserving any pending exception */
    PyObject *et = NULL, *ev = NULL, *etb = NULL;
    if (err)
        PyErr_Fetch(&et, &ev, &etb);
    if (set_ll(engine, s_events_dispatched, dispatched) < 0 && !err)
        err = 1;
    else if (set_ll(engine, s_ready_dispatched, from_ready) < 0 && !err)
        err = 1;
    if (et != NULL || ev != NULL || etb != NULL)
        PyErr_Restore(et, ev, etb);
    Py_DECREF(ctx.heap);
    Py_DECREF(ctx.ready);
    Py_DECREF(ctx.ready_append);
    Py_DECREF(pop_ready);
    if (err)
        return NULL;
    return PyLong_FromLong(horizon);
}

static PyObject *
core_setup(PyObject *self, PyObject *args)
{
    PyObject *process_cls, *timeout_cls, *request_cls, *sim_error;
    if (!PyArg_ParseTuple(args, "OOOO:setup", &process_cls, &timeout_cls,
                          &request_cls, &sim_error))
        return NULL;
    PyObject *resume = PyObject_GetAttrString(process_cls, "resume");
    if (resume == NULL)
        return NULL;
    Py_XSETREF(g_process_cls, Py_NewRef(process_cls));
    Py_XSETREF(g_timeout_cls, Py_NewRef(timeout_cls));
    Py_XSETREF(g_request_cls, Py_NewRef(request_cls));
    Py_XSETREF(g_sim_error, Py_NewRef(sim_error));
    Py_XSETREF(g_resume_func, resume);
    Py_RETURN_NONE;
}

static PyMethodDef core_methods[] = {
    {"run", core_run, METH_VARARGS,
     "run(engine, until) -> int: drain the engine's event structures in "
     "(time, seq) order; 1 when stopped at the horizon, 0 when drained."},
    {"setup", core_setup, METH_VARARGS,
     "setup(Process, Timeout, Request, SimulationError): register the "
     "engine's collaborator classes."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef core_module = {
    PyModuleDef_HEAD_INIT,
    "_engine_core",
    "Compiled run loop for the repro discrete-event engine.",
    -1,
    core_methods,
};

PyMODINIT_FUNC
PyInit__engine_core(void)
{
    PyObject *heapq = PyImport_ImportModule("_heapq");
    if (heapq == NULL) {
        PyErr_Clear();
        heapq = PyImport_ImportModule("heapq");
        if (heapq == NULL)
            return NULL;
    }
    g_heappush = PyObject_GetAttrString(heapq, "heappush");
    g_heappop = PyObject_GetAttrString(heapq, "heappop");
    Py_DECREF(heapq);
    if (g_heappush == NULL || g_heappop == NULL)
        return NULL;

#define INTERN(var, text)                                                      \
    do {                                                                       \
        var = PyUnicode_InternFromString(text);                                \
        if (var == NULL)                                                       \
            return NULL;                                                       \
    } while (0)

    INTERN(s_heap, "_heap");
    INTERN(s_ready, "_ready");
    INTERN(s_seq, "_seq");
    INTERN(s_now, "now");
    INTERN(s_events_dispatched, "events_dispatched");
    INTERN(s_ready_dispatched, "ready_dispatched");
    INTERN(s_popleft, "popleft");
    INTERN(s_append, "append");
    INTERN(s_done, "done");
    INTERN(s_cancelled, "cancelled");
    INTERN(s_send, "_send");
    INTERN(s_resume_attr, "_resume");
    INTERN(s_engine, "engine");
    INTERN(s_delay, "delay");
    INTERN(s_name, "name");
    INTERN(s_value, "value");
    INTERN(s_finish, "_finish");
    INTERN(s_activate, "activate");
#undef INTERN

    return PyModule_Create(&core_module);
}
