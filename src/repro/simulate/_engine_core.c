/* Compiled run loop for repro.simulate.engine.Engine.
 *
 * This extension moves the hottest frames of the discrete-event
 * simulator -- Engine.run(), the Process.resume() Timeout fast path, and
 * Resource._deliver_grant() -- out of the interpreter. It operates on
 * the *same* data layout as the pure-Python engine (the `_heap` list of
 * (time, seq, callback) tuples, the `_ready` deque of (seq, callback,
 * arg) tuples, the `_seq` counter, the `now` float and the dispatch
 * counters), mutating them through attribute access, so Python-side
 * scheduling (SimEvent.fire, Resource grants, call_now from callbacks,
 * fused network ops scheduling their own delay steps) interleaves with
 * the C loop exactly as it does with the Python loop.
 *
 * Two C-side structures exist only *inside* one core_run() call:
 *
 * - the **timeout-event heap**: a binary heap of plain C structs
 *   {time, seq, process} fed by the resume fast path. A timed Timeout
 *   wake-up costs no tuple, no PyFloat/PyLong boxing for the key, and
 *   no heapq call; the struct array doubles as its own freelist (slots
 *   are reused in place and the buffer is recycled across runs). Events
 *   still pending when the loop exits (horizon stop, exception) are
 *   flushed back into the Python heap as ordinary tuples, so the
 *   engine's observable state after run() is identical to the Python
 *   engine's.
 *
 * - consumed ``Timeout`` *request objects* are recycled into the
 *   Python-side freelist shared with ``Timeout.__new__`` when their
 *   refcount proves sole ownership -- the C half of the allocation-free
 *   Timeout cycle.
 *
 * Bit-for-bit contract: every control-flow branch here mirrors a line of
 * Engine.run / Process.resume / Resource._deliver_grant; `now + delay`
 * is the same IEEE-754 double addition CPython performs; seq allocation
 * and the heap/run-queue interleave rule are identical (the C heap and
 * the Python heap are merged by the full (time, seq) key, and seqs are
 * globally unique). The golden-digest suites are run under
 * REPRO_ENGINE=compiled in CI to pin this.
 *
 * Built on demand by repro.simulate.sched (cc -O2 -fPIC -shared); no
 * third-party headers, C99 + Python.h only.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdlib.h>

/* Registered by setup(): the engine's collaborator classes. */
static PyObject *g_process_cls = NULL;
static PyObject *g_timeout_cls = NULL;
static PyObject *g_request_cls = NULL;
static PyObject *g_sim_error = NULL;
static PyObject *g_resume_func = NULL;  /* Process.resume, the plain function */
static PyObject *g_deliver_func = NULL; /* Resource._deliver_grant, plain function */
static PyObject *g_timeout_pool = NULL; /* engine._timeout_pool, shared freelist */
static PyObject *g_fusedop_cls = NULL;  /* network._FusedOp */
static PyObject *g_advance_func = NULL; /* _FusedOp._advance, plain function */
static PyObject *g_heappush = NULL;
static PyObject *g_heappop = NULL;

/* Interned attribute names. */
static PyObject *s_heap, *s_ready, *s_seq, *s_now;
static PyObject *s_events_dispatched, *s_ready_dispatched;
static PyObject *s_timeout_allocs, *s_grant_resumes;
static PyObject *s_popleft, *s_append;
static PyObject *s_done, *s_cancelled, *s_send, *s_resume_attr, *s_engine;
static PyObject *s_delay, *s_name, *s_value, *s_finish, *s_activate;
static PyObject *s_release, *s_resume_pub;
static PyObject *s_pre, *s_nic, *s_hold, *s_post, *s_trace, *s_src, *s_category;
static PyObject *s_counter, *s_amount, *s_proc, *s_start, *s_phase, *s_idx;
static PyObject *s_holding, *s_result, *s_step, *s_advance_name;
static PyObject *s_in_use, *s_capacity, *s_total_acquisitions, *s_total_waits;
static PyObject *s_queue, *s_deliver_name, *s_record;

/* What firing a C-held event means. */
enum { EV_RESUME = 0, EV_FUSED = 1 };

/* One timed wake-up held C-side: at (time, seq), either resume a
 * Process (EV_RESUME) or advance a fused network op (EV_FUSED). */
typedef struct {
    double time;
    long long seq;
    PyObject *obj; /* owned: the Process or the _FusedOp */
    int kind;
} CEvent;

typedef struct {
    PyObject *engine;       /* borrowed */
    PyObject *heap;         /* owned; the engine's _heap list */
    PyObject *ready;        /* owned; the engine's _ready deque */
    PyObject *ready_append; /* owned; bound _ready.append */
    CEvent *ch;             /* C timeout-event heap (binary heap array) */
    Py_ssize_t ch_len, ch_cap;
    int ch_owned; /* buffer is ours to free (spare was busy) */
    /* Fast-path counter *deltas*, folded into the engine attributes on
     * exit. Deltas, not absolutes: Python code running inside a
     * dispatched callback (e.g. a fused network op resuming its process
     * through Python Process.resume) bumps the attributes directly, and
     * an absolute writeback would erase those increments. */
    long long timeout_allocs;
    long long grants;
} RunCtx;

/* Buffer recycled across runs: engine runs do not nest in practice, so
 * one process-wide spare avoids a malloc per run(). */
static CEvent *g_spare = NULL;
static Py_ssize_t g_spare_cap = 0;
static int g_spare_busy = 0;

static int
cheap_push(RunCtx *ctx, double time, long long seq, PyObject *obj, int kind)
{
    if (ctx->ch_len == ctx->ch_cap) {
        Py_ssize_t cap = ctx->ch_cap ? ctx->ch_cap * 2 : 256;
        CEvent *data = (CEvent *)realloc(ctx->ch, (size_t)cap * sizeof(CEvent));
        if (data == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        ctx->ch = data;
        ctx->ch_cap = cap;
    }
    CEvent *ch = ctx->ch;
    Py_ssize_t i = ctx->ch_len++;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        CEvent *p = &ch[parent];
        if (p->time < time || (p->time == time && p->seq < seq))
            break;
        ch[i] = *p;
        i = parent;
    }
    ch[i].time = time;
    ch[i].seq = seq;
    Py_INCREF(obj);
    ch[i].obj = obj;
    ch[i].kind = kind;
    return 0;
}

/* Pop the minimal (time, seq) entry; caller owns the returned obj ref.
 * Only call with ch_len > 0. */
static CEvent
cheap_pop(RunCtx *ctx)
{
    CEvent *ch = ctx->ch;
    CEvent top = ch[0];
    Py_ssize_t len = --ctx->ch_len;
    if (len > 0) {
        CEvent last = ch[len];
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t child = 2 * i + 1;
            if (child >= len)
                break;
            if (child + 1 < len) {
                CEvent *a = &ch[child], *b = &ch[child + 1];
                if (b->time < a->time || (b->time == a->time && b->seq < a->seq))
                    child += 1;
            }
            CEvent *c = &ch[child];
            if (last.time < c->time || (last.time == c->time && last.seq < c->seq))
                break;
            ch[i] = *c;
            i = child;
        }
        ch[i] = last;
    }
    return top;
}

static int
get_ll(PyObject *obj, PyObject *name, long long *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    *out = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
set_ll(PyObject *obj, PyObject *name, long long value)
{
    PyObject *v = PyLong_FromLongLong(value);
    if (v == NULL)
        return -1;
    int rc = PyObject_SetAttr(obj, name, v);
    Py_DECREF(v);
    return rc;
}

static int
get_double(PyObject *obj, PyObject *name, double *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    *out = PyFloat_AsDouble(v);
    Py_DECREF(v);
    if (*out == -1.0 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
set_double(PyObject *obj, PyObject *name, double value)
{
    PyObject *v = PyFloat_FromDouble(value);
    if (v == NULL)
        return -1;
    int rc = PyObject_SetAttr(obj, name, v);
    Py_DECREF(v);
    return rc;
}

/* obj.<name> += 1 through attribute access (the rare cross-engine path). */
static int
bump_ll_attr(PyObject *obj, PyObject *name)
{
    long long v;
    if (get_ll(obj, name, &v) < 0)
        return -1;
    return set_ll(obj, name, v + 1);
}

/* Extract (time, seq) from a heap entry; rejects malformed entries. */
static int
entry_key(PyObject *entry, double *time, long long *seq)
{
    if (!PyTuple_Check(entry) || PyTuple_GET_SIZE(entry) != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "engine heap entry is not a (time, seq, callback) tuple");
        return -1;
    }
    *time = PyFloat_AsDouble(PyTuple_GET_ITEM(entry, 0));
    if (*time == -1.0 && PyErr_Occurred())
        return -1;
    *seq = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 1));
    if (*seq == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

static int fused_activate(RunCtx *ctx, PyObject *op, PyObject *proc);
static int fused_advance(RunCtx *ctx, PyObject *op);
static int fused_resume(RunCtx *ctx, PyObject *op);

/* Process.resume(value), compiled. Returns 0 on success, -1 with an
 * exception set on failure. Mirrors the Python method line for line. */
static int
resume_fast(RunCtx *ctx, PyObject *proc, PyObject *value)
{
    /* if self.done: return / raise */
    PyObject *done = PyObject_GetAttr(proc, s_done);
    if (done == NULL)
        return -1;
    int is_done = PyObject_IsTrue(done);
    Py_DECREF(done);
    if (is_done < 0)
        return -1;
    if (is_done) {
        PyObject *cancelled = PyObject_GetAttr(proc, s_cancelled);
        if (cancelled == NULL)
            return -1;
        int is_cancelled = PyObject_IsTrue(cancelled);
        Py_DECREF(cancelled);
        if (is_cancelled < 0)
            return -1;
        if (is_cancelled)
            return 0; /* a wake-up raced with cancellation; drop it */
        PyObject *name = PyObject_GetAttr(proc, s_name);
        PyErr_Format(g_sim_error, "process %R resumed after completion",
                     name ? name : Py_None);
        Py_XDECREF(name);
        return -1;
    }

    /* request = self._send(value) */
    PyObject *send = PyObject_GetAttr(proc, s_send);
    if (send == NULL)
        return -1;
    PyObject *request = PyObject_CallOneArg(send, value);
    Py_DECREF(send);

    if (request == NULL) {
        if (!PyErr_ExceptionMatches(PyExc_StopIteration))
            return -1;
        /* generator returned: self._finish(stop.value) */
        PyObject *et, *ev, *etb;
        PyErr_Fetch(&et, &ev, &etb);
        PyErr_NormalizeException(&et, &ev, &etb);
        PyObject *stop_value = NULL;
        if (ev != NULL)
            stop_value = PyObject_GetAttr(ev, s_value);
        if (stop_value == NULL) {
            PyErr_Clear();
            stop_value = Py_None;
            Py_INCREF(stop_value);
        }
        Py_XDECREF(et);
        Py_XDECREF(ev);
        Py_XDECREF(etb);
        PyObject *finish = PyObject_GetAttr(proc, s_finish);
        if (finish == NULL) {
            Py_DECREF(stop_value);
            return -1;
        }
        PyObject *r = PyObject_CallOneArg(finish, stop_value);
        Py_DECREF(finish);
        Py_DECREF(stop_value);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }

    /* if request.__class__ is Timeout: inline dispatch */
    if ((PyObject *)Py_TYPE(request) == g_timeout_cls) {
        int rc = -1;
        PyObject *engine = NULL, *seqobj = NULL, *newseq = NULL;
        PyObject *delayobj = NULL, *resume_cb = NULL, *tup = NULL;
        engine = PyObject_GetAttr(proc, s_engine);
        if (engine == NULL)
            goto timeout_done;
        int own_engine = (engine == ctx->engine);
        /* engine.timeout_allocs += 1 */
        if (own_engine)
            ctx->timeout_allocs++;
        else if (bump_ll_attr(engine, s_timeout_allocs) < 0)
            goto timeout_done;
        seqobj = PyObject_GetAttr(engine, s_seq);
        if (seqobj == NULL)
            goto timeout_done;
        long long seq = PyLong_AsLongLong(seqobj);
        if (seq == -1 && PyErr_Occurred())
            goto timeout_done;
        newseq = PyLong_FromLongLong(seq + 1);
        if (newseq == NULL || PyObject_SetAttr(engine, s_seq, newseq) < 0)
            goto timeout_done;
        delayobj = PyObject_GetAttr(request, s_delay);
        if (delayobj == NULL)
            goto timeout_done;
        double delay = PyFloat_AsDouble(delayobj);
        if (delay == -1.0 && PyErr_Occurred())
            goto timeout_done;
        /* The request's delay is consumed; recycle the object into the
         * freelist shared with Timeout.__new__ when we hold the only
         * reference (the generator yielded a fresh instance). */
        if (Py_REFCNT(request) == 1 && g_timeout_pool != NULL) {
            if (PyList_Append(g_timeout_pool, request) < 0)
                PyErr_Clear(); /* best-effort: recycling is an optimization */
        }
        if (delay == 0.0) {
            resume_cb = PyObject_GetAttr(proc, s_resume_attr);
            if (resume_cb == NULL)
                goto timeout_done;
            tup = PyTuple_Pack(3, seqobj, resume_cb, Py_None);
            if (tup == NULL)
                goto timeout_done;
            PyObject *r;
            if (own_engine) {
                r = PyObject_CallOneArg(ctx->ready_append, tup);
            }
            else {
                PyObject *ready = PyObject_GetAttr(engine, s_ready);
                if (ready == NULL)
                    goto timeout_done;
                r = PyObject_CallMethodOneArg(ready, s_append, tup);
                Py_DECREF(ready);
            }
            if (r == NULL)
                goto timeout_done;
            Py_DECREF(r);
        }
        else if (own_engine) {
            /* The C timeout-event heap: no tuple, no boxed key, no
             * heapq call. Flushed back to engine._heap on loop exit. */
            double now;
            if (get_double(engine, s_now, &now) < 0)
                goto timeout_done;
            if (cheap_push(ctx, now + delay, seq, proc, EV_RESUME) < 0)
                goto timeout_done;
        }
        else {
            double now;
            if (get_double(engine, s_now, &now) < 0)
                goto timeout_done;
            PyObject *timeobj = PyFloat_FromDouble(now + delay);
            if (timeobj == NULL)
                goto timeout_done;
            resume_cb = PyObject_GetAttr(proc, s_resume_attr);
            if (resume_cb == NULL) {
                Py_DECREF(timeobj);
                goto timeout_done;
            }
            tup = PyTuple_Pack(3, timeobj, seqobj, resume_cb);
            Py_DECREF(timeobj);
            if (tup == NULL)
                goto timeout_done;
            PyObject *heap = PyObject_GetAttr(engine, s_heap);
            if (heap == NULL)
                goto timeout_done;
            PyObject *r = PyObject_CallFunctionObjArgs(g_heappush, heap, tup, NULL);
            Py_DECREF(heap);
            if (r == NULL)
                goto timeout_done;
            Py_DECREF(r);
        }
        rc = 0;
    timeout_done:
        Py_XDECREF(tup);
        Py_XDECREF(resume_cb);
        Py_XDECREF(delayobj);
        Py_XDECREF(newseq);
        Py_XDECREF(seqobj);
        Py_XDECREF(engine);
        Py_DECREF(request);
        return rc;
    }

    /* Fused network op: run its activation (and the whole program walk)
     * compiled. Exact-type check, like the Timeout branch. */
    if ((PyObject *)Py_TYPE(request) == g_fusedop_cls) {
        int rc = fused_activate(ctx, request, proc);
        Py_DECREF(request);
        return rc;
    }

    /* if not isinstance(request, Request): raise */
    int is_request = PyObject_IsInstance(request, g_request_cls);
    if (is_request < 0) {
        Py_DECREF(request);
        return -1;
    }
    if (!is_request) {
        PyObject *name = PyObject_GetAttr(proc, s_name);
        PyErr_Format(g_sim_error,
                     "process %R yielded %R; processes must yield Request "
                     "instances (Timeout, acquire(), wait(), ...)",
                     name ? name : Py_None, request);
        Py_XDECREF(name);
        Py_DECREF(request);
        return -1;
    }

    /* request.activate(self.engine, self) */
    PyObject *engine = PyObject_GetAttr(proc, s_engine);
    if (engine == NULL) {
        Py_DECREF(request);
        return -1;
    }
    PyObject *activate = PyObject_GetAttr(request, s_activate);
    Py_DECREF(request);
    if (activate == NULL) {
        Py_DECREF(engine);
        return -1;
    }
    PyObject *r = PyObject_CallFunctionObjArgs(activate, engine, proc, NULL);
    Py_DECREF(activate);
    Py_DECREF(engine);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* ---- fused network operations (network._FusedOp), compiled ----
 *
 * A fused op walks a precomputed (pre, hold, post) delay program. Under
 * the Python engines each step is a bound-method callback plus an
 * engine.schedule() call; here the walk runs in C and timed steps go
 * straight into the C event heap -- no tuple, no boxed key, no Python
 * frame per delay. Every branch mirrors a line of _FusedOp.activate /
 * .resume / ._advance / ._complete, and every seq allocation happens at
 * exactly the same dispatch, so (time, seq) orders are unchanged. */

/* The op's next step after `delay`: run-queue for zero delays, C event
 * heap otherwise. Mirrors _FusedOp._dispatch (engine == ctx->engine is
 * guaranteed by the callers). */
static int
fused_dispatch(RunCtx *ctx, PyObject *op, PyObject *engine, double delay)
{
    long long seq;
    if (get_ll(engine, s_seq, &seq) < 0 || set_ll(engine, s_seq, seq + 1) < 0)
        return -1;
    if (delay == 0.0) {
        PyObject *seqobj = PyLong_FromLongLong(seq);
        PyObject *step = seqobj ? PyObject_GetAttr(op, s_step) : NULL;
        PyObject *tup = step ? PyTuple_Pack(3, seqobj, step, Py_None) : NULL;
        Py_XDECREF(step);
        Py_XDECREF(seqobj);
        if (tup == NULL)
            return -1;
        PyObject *r = PyObject_CallOneArg(ctx->ready_append, tup);
        Py_DECREF(tup);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    double now;
    if (get_double(engine, s_now, &now) < 0)
        return -1;
    return cheap_push(ctx, now + delay, seq, op, EV_FUSED);
}

/* _FusedOp._complete: mark done, emit the trace record, resume the
 * waiting process with the op's result. */
static int
fused_complete(RunCtx *ctx, PyObject *op, PyObject *engine)
{
    if (PyObject_SetAttr(op, s_done, Py_True) < 0)
        return -1;
    PyObject *trace = PyObject_GetAttr(op, s_trace);
    PyObject *src = trace ? PyObject_GetAttr(op, s_src) : NULL;
    PyObject *cat = src ? PyObject_GetAttr(op, s_category) : NULL;
    PyObject *start = cat ? PyObject_GetAttr(op, s_start) : NULL;
    PyObject *nowobj = start ? PyObject_GetAttr(engine, s_now) : NULL;
    PyObject *r = NULL;
    if (nowobj != NULL)
        r = PyObject_CallMethodObjArgs(trace, s_record, src, cat, start, nowobj,
                                       NULL);
    Py_XDECREF(nowobj);
    Py_XDECREF(start);
    Py_XDECREF(cat);
    Py_XDECREF(src);
    Py_XDECREF(trace);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    PyObject *proc = PyObject_GetAttr(op, s_proc);
    if (proc == NULL)
        return -1;
    PyObject *result = PyObject_GetAttr(op, s_result);
    if (result == NULL) {
        Py_DECREF(proc);
        return -1;
    }
    int rc;
    if ((PyObject *)Py_TYPE(proc) == g_process_cls)
        rc = resume_fast(ctx, proc, result);
    else {
        PyObject *rr = PyObject_CallMethodOneArg(proc, s_resume_pub, result);
        rc = rr == NULL ? -1 : 0;
        Py_XDECREF(rr);
    }
    Py_DECREF(result);
    Py_DECREF(proc);
    return rc;
}

/* _FusedOp.resume: the NIC grant arrived. fetch_add's read-modify-write
 * happens here (while the home NIC is held), then the held occupancy is
 * scheduled. */
static int
fused_resume(RunCtx *ctx, PyObject *op)
{
    PyObject *counter = PyObject_GetAttr(op, s_counter);
    if (counter == NULL)
        return -1;
    if (counter != Py_None) {
        PyObject *value = PyObject_GetAttr(counter, s_value);
        if (value == NULL || PyObject_SetAttr(op, s_result, value) < 0) {
            Py_XDECREF(value);
            Py_DECREF(counter);
            return -1;
        }
        PyObject *amount = PyObject_GetAttr(op, s_amount);
        PyObject *newval =
            amount == NULL ? NULL : PyNumber_InPlaceAdd(value, amount);
        Py_XDECREF(amount);
        Py_DECREF(value);
        int rc2 = newval == NULL ? -1 : PyObject_SetAttr(counter, s_value, newval);
        Py_XDECREF(newval);
        Py_DECREF(counter);
        if (rc2 < 0)
            return -1;
    }
    else
        Py_DECREF(counter);
    if (PyObject_SetAttr(op, s_holding, Py_True) < 0)
        return -1;
    if (set_ll(op, s_phase, 2) < 0)
        return -1;
    PyObject *engine = PyObject_GetAttr(op, s_engine);
    if (engine == NULL)
        return -1;
    PyObject *holdobj = PyObject_GetAttr(op, s_hold);
    if (holdobj == NULL) {
        Py_DECREF(engine);
        return -1;
    }
    double hold = PyFloat_AsDouble(holdobj);
    Py_DECREF(holdobj);
    if (hold == -1.0 && PyErr_Occurred()) {
        Py_DECREF(engine);
        return -1;
    }
    int rc = fused_dispatch(ctx, op, engine, hold);
    Py_DECREF(engine);
    return rc;
}

/* _FusedOp._advance: one step of the delay program. */
static int
fused_advance(RunCtx *ctx, PyObject *op)
{
    PyObject *done = PyObject_GetAttr(op, s_done);
    if (done == NULL)
        return -1;
    int is_done = PyObject_IsTrue(done);
    Py_DECREF(done);
    if (is_done < 0)
        return -1;
    if (is_done)
        return 0; /* late wake-up raced with cancellation */
    PyObject *engine = PyObject_GetAttr(op, s_engine);
    if (engine == NULL)
        return -1;
    if (engine != ctx->engine) {
        /* not this loop's engine: take the Python path verbatim */
        Py_DECREF(engine);
        PyObject *r = PyObject_CallMethodOneArg(op, s_advance_name, Py_None);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    int rc = -1;
    long long phase;
    if (get_ll(op, s_phase, &phase) < 0)
        goto out;
    if (phase == 0) {
        PyObject *pre = PyObject_GetAttr(op, s_pre);
        if (pre == NULL || !PyTuple_Check(pre)) {
            Py_XDECREF(pre);
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_TypeError, "fused op delays must be tuples");
            goto out;
        }
        long long idx;
        if (get_ll(op, s_idx, &idx) < 0) {
            Py_DECREF(pre);
            goto out;
        }
        if (idx < PyTuple_GET_SIZE(pre)) {
            double d = PyFloat_AsDouble(PyTuple_GET_ITEM(pre, idx));
            Py_DECREF(pre);
            if (d == -1.0 && PyErr_Occurred())
                goto out;
            if (set_ll(op, s_idx, idx + 1) < 0)
                goto out;
            rc = fused_dispatch(ctx, op, engine, d);
            goto out;
        }
        Py_DECREF(pre);
        PyObject *nic = PyObject_GetAttr(op, s_nic);
        if (nic == NULL)
            goto out;
        if (nic == Py_None) {
            Py_DECREF(nic);
            rc = fused_complete(ctx, op, engine);
            goto out;
        }
        /* nic.acquire(): inline _ResourceAcquire.activate */
        if (set_ll(op, s_phase, 1) < 0) {
            Py_DECREF(nic);
            goto out;
        }
        long long in_use, capacity;
        if (get_ll(nic, s_in_use, &in_use) < 0 ||
            get_ll(nic, s_capacity, &capacity) < 0) {
            Py_DECREF(nic);
            goto out;
        }
        if (in_use < capacity) {
            long long acq, seq;
            if (set_ll(nic, s_in_use, in_use + 1) < 0 ||
                get_ll(nic, s_total_acquisitions, &acq) < 0 ||
                set_ll(nic, s_total_acquisitions, acq + 1) < 0 ||
                get_ll(engine, s_seq, &seq) < 0 ||
                set_ll(engine, s_seq, seq + 1) < 0) {
                Py_DECREF(nic);
                goto out;
            }
            /* engine.call_now(nic._deliver_grant, op) */
            PyObject *seqobj = PyLong_FromLongLong(seq);
            PyObject *deliver =
                seqobj == NULL ? NULL : PyObject_GetAttr(nic, s_deliver_name);
            PyObject *tup =
                deliver == NULL ? NULL : PyTuple_Pack(3, seqobj, deliver, op);
            Py_XDECREF(deliver);
            Py_XDECREF(seqobj);
            Py_DECREF(nic);
            if (tup == NULL)
                goto out;
            PyObject *r = PyObject_CallOneArg(ctx->ready_append, tup);
            Py_DECREF(tup);
            if (r == NULL)
                goto out;
            Py_DECREF(r);
            rc = 0;
            goto out;
        }
        long long waits;
        if (get_ll(nic, s_total_waits, &waits) < 0 ||
            set_ll(nic, s_total_waits, waits + 1) < 0) {
            Py_DECREF(nic);
            goto out;
        }
        PyObject *queue = PyObject_GetAttr(nic, s_queue);
        Py_DECREF(nic);
        if (queue == NULL)
            goto out;
        PyObject *r = PyObject_CallMethodOneArg(queue, s_append, op);
        Py_DECREF(queue);
        if (r == NULL)
            goto out;
        Py_DECREF(r);
        rc = 0;
        goto out;
    }
    if (phase == 2) {
        /* hold expired: release first (the next waiter's grant takes
         * its seq here, as the generator's finally did), then the
         * return-path delays. */
        if (PyObject_SetAttr(op, s_holding, Py_False) < 0)
            goto out;
        PyObject *nic = PyObject_GetAttr(op, s_nic);
        if (nic == NULL)
            goto out;
        PyObject *r = PyObject_CallMethodNoArgs(nic, s_release);
        Py_DECREF(nic);
        if (r == NULL)
            goto out;
        Py_DECREF(r);
        PyObject *post = PyObject_GetAttr(op, s_post);
        if (post == NULL || !PyTuple_Check(post)) {
            Py_XDECREF(post);
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_TypeError, "fused op delays must be tuples");
            goto out;
        }
        if (PyTuple_GET_SIZE(post) > 0) {
            double d = PyFloat_AsDouble(PyTuple_GET_ITEM(post, 0));
            Py_DECREF(post);
            if (d == -1.0 && PyErr_Occurred())
                goto out;
            if (set_ll(op, s_phase, 3) < 0 || set_ll(op, s_idx, 1) < 0)
                goto out;
            rc = fused_dispatch(ctx, op, engine, d);
        }
        else {
            Py_DECREF(post);
            rc = fused_complete(ctx, op, engine);
        }
        goto out;
    }
    /* phase 3: walk the remaining return-path delays */
    {
        PyObject *post = PyObject_GetAttr(op, s_post);
        if (post == NULL || !PyTuple_Check(post)) {
            Py_XDECREF(post);
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_TypeError, "fused op delays must be tuples");
            goto out;
        }
        long long idx;
        if (get_ll(op, s_idx, &idx) < 0) {
            Py_DECREF(post);
            goto out;
        }
        if (idx < PyTuple_GET_SIZE(post)) {
            double d = PyFloat_AsDouble(PyTuple_GET_ITEM(post, idx));
            Py_DECREF(post);
            if (d == -1.0 && PyErr_Occurred())
                goto out;
            if (set_ll(op, s_idx, idx + 1) < 0)
                goto out;
            rc = fused_dispatch(ctx, op, engine, d);
        }
        else {
            Py_DECREF(post);
            rc = fused_complete(ctx, op, engine);
        }
    }
out:
    Py_DECREF(engine);
    return rc;
}

/* _FusedOp.activate: bind the op to its process and dispatch the first
 * pre-delay. */
static int
fused_activate(RunCtx *ctx, PyObject *op, PyObject *proc)
{
    PyObject *engine = PyObject_GetAttr(proc, s_engine);
    if (engine == NULL)
        return -1;
    if (engine != ctx->engine) {
        /* cross-engine: take the Python path verbatim */
        PyObject *r =
            PyObject_CallMethodObjArgs(op, s_activate, engine, proc, NULL);
        Py_DECREF(engine);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    int rc = -1;
    PyObject *nowobj = NULL, *step = NULL, *pre = NULL;
    if (PyObject_SetAttr(op, s_engine, engine) < 0 ||
        PyObject_SetAttr(op, s_proc, proc) < 0)
        goto out;
    nowobj = PyObject_GetAttr(engine, s_now);
    if (nowobj == NULL || PyObject_SetAttr(op, s_start, nowobj) < 0)
        goto out;
    if (set_ll(op, s_phase, 0) < 0 || set_ll(op, s_idx, 1) < 0)
        goto out;
    step = PyObject_GetAttr(op, s_advance_name); /* bound self._advance */
    if (step == NULL || PyObject_SetAttr(op, s_step, step) < 0)
        goto out;
    pre = PyObject_GetAttr(op, s_pre);
    if (pre == NULL)
        goto out;
    if (!PyTuple_Check(pre) || PyTuple_GET_SIZE(pre) < 1) {
        PyErr_SetString(PyExc_TypeError,
                        "fused op pre-delays must be a non-empty tuple");
        goto out;
    }
    double d = PyFloat_AsDouble(PyTuple_GET_ITEM(pre, 0));
    if (d == -1.0 && PyErr_Occurred())
        goto out;
    rc = fused_dispatch(ctx, op, engine, d);
out:
    Py_XDECREF(pre);
    Py_XDECREF(step);
    Py_XDECREF(nowobj);
    Py_DECREF(engine);
    return rc;
}

/* Resource._deliver_grant(proc), compiled: the done-check plus dispatch
 * to the resume fast path (Process) or the waiter's own resume (fused
 * network ops), without the Python frame. */
static int
deliver_grant_fast(RunCtx *ctx, PyObject *resource, PyObject *proc)
{
    PyObject *done = PyObject_GetAttr(proc, s_done);
    if (done == NULL)
        return -1;
    int is_done = PyObject_IsTrue(done);
    Py_DECREF(done);
    if (is_done < 0)
        return -1;
    if (is_done) {
        /* cancelled between grant and wake-up: the slot is re-offered */
        PyObject *r = PyObject_CallMethodNoArgs(resource, s_release);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    /* proc.engine.grant_resumes += 1 */
    PyObject *engine = PyObject_GetAttr(proc, s_engine);
    if (engine == NULL)
        return -1;
    if (engine == ctx->engine)
        ctx->grants++;
    else if (bump_ll_attr(engine, s_grant_resumes) < 0) {
        Py_DECREF(engine);
        return -1;
    }
    Py_DECREF(engine);
    if ((PyObject *)Py_TYPE(proc) == g_process_cls)
        return resume_fast(ctx, proc, Py_None);
    if ((PyObject *)Py_TYPE(proc) == g_fusedop_cls)
        return fused_resume(ctx, proc);
    PyObject *r = PyObject_CallMethodOneArg(proc, s_resume_pub, Py_None);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Call a dispatched callback. `arg == NULL` means the heap convention
 * (no-argument call); otherwise the run-queue convention cb(arg). Bound
 * Process.resume / Resource._deliver_grant methods short-circuit into
 * the compiled fast paths. */
static int
invoke_callback(RunCtx *ctx, PyObject *cb, PyObject *arg)
{
    if (PyMethod_Check(cb)) {
        PyObject *func = PyMethod_GET_FUNCTION(cb);
        if (func == g_resume_func)
            return resume_fast(ctx, PyMethod_GET_SELF(cb),
                               arg != NULL ? arg : Py_None);
        if (func == g_deliver_func && arg != NULL && arg != Py_None)
            return deliver_grant_fast(ctx, PyMethod_GET_SELF(cb), arg);
        if (func == g_advance_func)
            return fused_advance(ctx, PyMethod_GET_SELF(cb));
    }
    PyObject *r = arg != NULL ? PyObject_CallOneArg(cb, arg)
                              : PyObject_CallNoArgs(cb);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Flush C-held events back into the Python heap as ordinary
 * (time, seq, callback) tuples -- run on every loop exit so the
 * engine's observable pending-event state matches the Python engine's.
 * Resume events carry proc._resume; fused-op steps carry the same bound
 * _advance the Python dispatcher stored in op._step.
 * Returns -1 (with an exception set) if any event could not be moved. */
static int
flush_cheap(RunCtx *ctx)
{
    int rc = 0;
    while (ctx->ch_len > 0) {
        CEvent ev = cheap_pop(ctx);
        if (rc == 0) {
            PyObject *timeobj = PyFloat_FromDouble(ev.time);
            PyObject *seqobj = PyLong_FromLongLong(ev.seq);
            PyObject *cb = NULL;
            if (timeobj && seqobj)
                cb = PyObject_GetAttr(
                    ev.obj, ev.kind == EV_RESUME ? s_resume_attr : s_step);
            PyObject *tup =
                cb != NULL ? PyTuple_Pack(3, timeobj, seqobj, cb) : NULL;
            Py_XDECREF(timeobj);
            Py_XDECREF(seqobj);
            Py_XDECREF(cb);
            if (tup == NULL)
                rc = -1;
            else {
                PyObject *r =
                    PyObject_CallFunctionObjArgs(g_heappush, ctx->heap, tup, NULL);
                Py_DECREF(tup);
                if (r == NULL)
                    rc = -1;
                else
                    Py_DECREF(r);
            }
        }
        Py_DECREF(ev.obj);
    }
    return rc;
}

/* run(engine, until) -> 1 if stopped at the horizon, 0 if drained.
 * Counters and `now` are written back on every exit path (the Python
 * loop's `finally`), and callback exceptions propagate unchanged. */
static PyObject *
core_run(PyObject *self, PyObject *args)
{
    PyObject *engine;
    double until;
    if (!PyArg_ParseTuple(args, "Od:run", &engine, &until))
        return NULL;
    if (g_resume_func == NULL) {
        PyErr_SetString(PyExc_RuntimeError, "_engine_core.setup() was not called");
        return NULL;
    }

    RunCtx ctx;
    ctx.engine = engine;
    ctx.heap = PyObject_GetAttr(engine, s_heap);
    ctx.ready = PyObject_GetAttr(engine, s_ready);
    ctx.ready_append = ctx.ready ? PyObject_GetAttr(ctx.ready, s_append) : NULL;
    PyObject *pop_ready =
        ctx.ready ? PyObject_GetAttr(ctx.ready, s_popleft) : NULL;
    if (!g_spare_busy) {
        ctx.ch = g_spare;
        ctx.ch_cap = g_spare_cap;
        ctx.ch_owned = 0;
        g_spare_busy = 1;
    }
    else {
        ctx.ch = NULL;
        ctx.ch_cap = 0;
        ctx.ch_owned = 1;
    }
    ctx.ch_len = 0;
    ctx.timeout_allocs = 0;
    ctx.grants = 0;

    long long dispatched = 0, from_ready = 0;
    double now = 0.0;
    int err = 0, horizon = 0;

    if (ctx.heap == NULL || ctx.ready == NULL || ctx.ready_append == NULL ||
        pop_ready == NULL || !PyList_Check(ctx.heap) ||
        get_ll(engine, s_events_dispatched, &dispatched) < 0 ||
        get_ll(engine, s_ready_dispatched, &from_ready) < 0 ||
        get_double(engine, s_now, &now) < 0) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "engine._heap must be a list");
        Py_XDECREF(ctx.heap);
        Py_XDECREF(ctx.ready);
        Py_XDECREF(ctx.ready_append);
        Py_XDECREF(pop_ready);
        if (ctx.ch_owned)
            free(ctx.ch);
        else
            g_spare_busy = 0;
        return NULL;
    }

    for (;;) {
        Py_ssize_t nready = PyObject_Size(ctx.ready);
        if (nready < 0) {
            err = 1;
            break;
        }

        /* best pending timed event across the Python and C heaps */
        int have_best = 0, best_c = 0;
        double bt = 0.0;
        long long bs = 0;
        if (PyList_GET_SIZE(ctx.heap) > 0) {
            if (entry_key(PyList_GET_ITEM(ctx.heap, 0), &bt, &bs) < 0) {
                err = 1;
                break;
            }
            have_best = 1;
        }
        if (ctx.ch_len > 0) {
            CEvent *h = &ctx.ch[0];
            if (!have_best || h->time < bt || (h->time == bt && h->seq < bs)) {
                bt = h->time;
                bs = h->seq;
                best_c = 1;
            }
            have_best = 1;
        }

        if (nready > 0) {
            int use_heap = 0;
            if (have_best && bt <= now) {
                PyObject *r0 = PySequence_GetItem(ctx.ready, 0);
                if (r0 == NULL || !PyTuple_Check(r0) ||
                    PyTuple_GET_SIZE(r0) != 3) {
                    Py_XDECREF(r0);
                    if (!PyErr_Occurred())
                        PyErr_SetString(
                            PyExc_TypeError,
                            "run-queue entry is not a (seq, cb, arg) tuple");
                    err = 1;
                    break;
                }
                long long rs = PyLong_AsLongLong(PyTuple_GET_ITEM(r0, 0));
                Py_DECREF(r0);
                if (rs == -1 && PyErr_Occurred()) {
                    err = 1;
                    break;
                }
                if (bs < rs)
                    use_heap = 1;
            }
            if (use_heap) {
                dispatched++;
                int rc;
                if (best_c) {
                    CEvent ev = cheap_pop(&ctx);
                    rc = ev.kind == EV_RESUME
                             ? resume_fast(&ctx, ev.obj, Py_None)
                             : fused_advance(&ctx, ev.obj);
                    Py_DECREF(ev.obj);
                }
                else {
                    PyObject *item = PyObject_CallOneArg(g_heappop, ctx.heap);
                    if (item == NULL) {
                        err = 1;
                        break;
                    }
                    rc = invoke_callback(&ctx, PyTuple_GET_ITEM(item, 2), NULL);
                    Py_DECREF(item);
                }
                if (rc < 0) {
                    err = 1;
                    break;
                }
            }
            else {
                PyObject *item = PyObject_CallNoArgs(pop_ready);
                if (item == NULL || !PyTuple_Check(item) ||
                    PyTuple_GET_SIZE(item) != 3) {
                    Py_XDECREF(item);
                    if (!PyErr_Occurred())
                        PyErr_SetString(
                            PyExc_TypeError,
                            "run-queue entry is not a (seq, cb, arg) tuple");
                    err = 1;
                    break;
                }
                dispatched++;
                from_ready++;
                int rc = invoke_callback(&ctx, PyTuple_GET_ITEM(item, 1),
                                         PyTuple_GET_ITEM(item, 2));
                Py_DECREF(item);
                if (rc < 0) {
                    err = 1;
                    break;
                }
            }
        }
        else if (have_best) {
            if (bt > until) {
                now = until;
                if (set_double(engine, s_now, until) < 0)
                    err = 1;
                else
                    horizon = 1;
                break;
            }
            now = bt;
            if (set_double(engine, s_now, now) < 0) {
                err = 1;
                break;
            }
            dispatched++;
            int rc;
            if (best_c) {
                CEvent ev = cheap_pop(&ctx);
                rc = ev.kind == EV_RESUME ? resume_fast(&ctx, ev.obj, Py_None)
                                          : fused_advance(&ctx, ev.obj);
                Py_DECREF(ev.obj);
            }
            else {
                PyObject *item = PyObject_CallOneArg(g_heappop, ctx.heap);
                if (item == NULL) {
                    err = 1;
                    break;
                }
                rc = invoke_callback(&ctx, PyTuple_GET_ITEM(item, 2), NULL);
                Py_DECREF(item);
            }
            if (rc < 0) {
                err = 1;
                break;
            }
        }
        else {
            break;
        }
    }

    /* finally: restore the engine's observable state -- flush C-held
     * events into the Python heap and write the counters back --
     * preserving any pending exception. */
    PyObject *et = NULL, *ev = NULL, *etb = NULL;
    if (err)
        PyErr_Fetch(&et, &ev, &etb);
    if (flush_cheap(&ctx) < 0 && !err)
        err = 1;
    if (set_ll(engine, s_events_dispatched, dispatched) < 0 && !err)
        err = 1;
    else if (set_ll(engine, s_ready_dispatched, from_ready) < 0 && !err)
        err = 1;
    /* Fold the fast-path deltas into whatever Python-side callbacks
     * already accumulated on the attributes during this run. */
    long long base;
    if (!err && ctx.timeout_allocs != 0) {
        if (get_ll(engine, s_timeout_allocs, &base) < 0 ||
            set_ll(engine, s_timeout_allocs, base + ctx.timeout_allocs) < 0)
            err = 1;
    }
    if (!err && ctx.grants != 0) {
        if (get_ll(engine, s_grant_resumes, &base) < 0 ||
            set_ll(engine, s_grant_resumes, base + ctx.grants) < 0)
            err = 1;
    }
    if (et != NULL || ev != NULL || etb != NULL)
        PyErr_Restore(et, ev, etb);
    Py_DECREF(ctx.heap);
    Py_DECREF(ctx.ready);
    Py_DECREF(ctx.ready_append);
    Py_DECREF(pop_ready);
    if (ctx.ch_owned)
        free(ctx.ch);
    else {
        g_spare = ctx.ch;
        g_spare_cap = ctx.ch_cap;
        g_spare_busy = 0;
    }
    if (err)
        return NULL;
    return PyLong_FromLong(horizon);
}

static PyObject *
core_setup(PyObject *self, PyObject *args)
{
    PyObject *process_cls, *timeout_cls, *request_cls, *sim_error;
    PyObject *resource_cls, *timeout_pool, *fusedop_cls;
    if (!PyArg_ParseTuple(args, "OOOOOOO:setup", &process_cls, &timeout_cls,
                          &request_cls, &sim_error, &resource_cls,
                          &timeout_pool, &fusedop_cls))
        return NULL;
    if (!PyList_Check(timeout_pool)) {
        PyErr_SetString(PyExc_TypeError, "timeout_pool must be a list");
        return NULL;
    }
    PyObject *resume = PyObject_GetAttrString(process_cls, "resume");
    if (resume == NULL)
        return NULL;
    PyObject *deliver = PyObject_GetAttrString(resource_cls, "_deliver_grant");
    if (deliver == NULL) {
        Py_DECREF(resume);
        return NULL;
    }
    PyObject *advance = PyObject_GetAttrString(fusedop_cls, "_advance");
    if (advance == NULL) {
        Py_DECREF(resume);
        Py_DECREF(deliver);
        return NULL;
    }
    Py_XSETREF(g_process_cls, Py_NewRef(process_cls));
    Py_XSETREF(g_timeout_cls, Py_NewRef(timeout_cls));
    Py_XSETREF(g_request_cls, Py_NewRef(request_cls));
    Py_XSETREF(g_sim_error, Py_NewRef(sim_error));
    Py_XSETREF(g_resume_func, resume);
    Py_XSETREF(g_deliver_func, deliver);
    Py_XSETREF(g_timeout_pool, Py_NewRef(timeout_pool));
    Py_XSETREF(g_fusedop_cls, Py_NewRef(fusedop_cls));
    Py_XSETREF(g_advance_func, advance);
    Py_RETURN_NONE;
}

static PyMethodDef core_methods[] = {
    {"run", core_run, METH_VARARGS,
     "run(engine, until) -> int: drain the engine's event structures in "
     "(time, seq) order; 1 when stopped at the horizon, 0 when drained."},
    {"setup", core_setup, METH_VARARGS,
     "setup(Process, Timeout, Request, SimulationError, Resource, "
     "timeout_pool, FusedOp): register the engine's collaborator classes "
     "and the shared Timeout freelist."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef core_module = {
    PyModuleDef_HEAD_INIT,
    "_engine_core",
    "Compiled run loop for the repro discrete-event engine.",
    -1,
    core_methods,
};

PyMODINIT_FUNC
PyInit__engine_core(void)
{
    PyObject *heapq = PyImport_ImportModule("_heapq");
    if (heapq == NULL) {
        PyErr_Clear();
        heapq = PyImport_ImportModule("heapq");
        if (heapq == NULL)
            return NULL;
    }
    g_heappush = PyObject_GetAttrString(heapq, "heappush");
    g_heappop = PyObject_GetAttrString(heapq, "heappop");
    Py_DECREF(heapq);
    if (g_heappush == NULL || g_heappop == NULL)
        return NULL;

#define INTERN(var, text)                                                      \
    do {                                                                       \
        var = PyUnicode_InternFromString(text);                                \
        if (var == NULL)                                                       \
            return NULL;                                                       \
    } while (0)

    INTERN(s_heap, "_heap");
    INTERN(s_ready, "_ready");
    INTERN(s_seq, "_seq");
    INTERN(s_now, "now");
    INTERN(s_events_dispatched, "events_dispatched");
    INTERN(s_ready_dispatched, "ready_dispatched");
    INTERN(s_timeout_allocs, "timeout_allocs");
    INTERN(s_grant_resumes, "grant_resumes");
    INTERN(s_popleft, "popleft");
    INTERN(s_append, "append");
    INTERN(s_done, "done");
    INTERN(s_cancelled, "cancelled");
    INTERN(s_send, "_send");
    INTERN(s_resume_attr, "_resume");
    INTERN(s_engine, "engine");
    INTERN(s_delay, "delay");
    INTERN(s_name, "name");
    INTERN(s_value, "value");
    INTERN(s_finish, "_finish");
    INTERN(s_activate, "activate");
    INTERN(s_release, "release");
    INTERN(s_resume_pub, "resume");
    INTERN(s_pre, "pre");
    INTERN(s_nic, "nic");
    INTERN(s_hold, "hold");
    INTERN(s_post, "post");
    INTERN(s_trace, "trace");
    INTERN(s_src, "src");
    INTERN(s_category, "category");
    INTERN(s_counter, "counter");
    INTERN(s_amount, "amount");
    INTERN(s_proc, "proc");
    INTERN(s_start, "start");
    INTERN(s_phase, "phase");
    INTERN(s_idx, "idx");
    INTERN(s_holding, "holding");
    INTERN(s_result, "result");
    INTERN(s_step, "_step");
    INTERN(s_advance_name, "_advance");
    INTERN(s_in_use, "in_use");
    INTERN(s_capacity, "capacity");
    INTERN(s_total_acquisitions, "total_acquisitions");
    INTERN(s_total_waits, "total_waits");
    INTERN(s_queue, "_queue");
    INTERN(s_deliver_name, "_deliver_grant");
    INTERN(s_record, "record");
#undef INTERN

    return PyModule_Create(&core_module);
}
