"""Performance-variability models (the paper's "energy-induced" dynamics).

Experiment E7 injects rank slowdowns and measures how each execution model
absorbs them. A variability model maps ``(rank, time) -> speed multiplier``
(1.0 = nominal; 0.5 = half speed). Compute durations divide by the
multiplier sampled at task start.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable

import numpy as np

from repro.util import ConfigurationError, check_positive, spawn_rng


class VariabilityModel(ABC):
    """Maps (rank, simulated time) to a speed multiplier."""

    #: True when ``speed(rank, t)`` is constant in ``t``. Time-independent
    #: models allow batch evaluation of per-task compute costs (one NumPy
    #: division per dispatch burst instead of a ``speed`` call per task);
    #: time-dependent models must stay on the per-task path because the
    #: multiplier is sampled at each task's start time.
    time_independent: bool = False

    @abstractmethod
    def speed(self, rank: int, time: float) -> float:
        """Speed multiplier for ``rank`` at ``time``; must be > 0."""


class NoVariability(VariabilityModel):
    """Homogeneous machine: every rank runs at nominal speed."""

    time_independent = True

    def speed(self, rank: int, time: float) -> float:
        return 1.0


class StaticHeterogeneity(VariabilityModel):
    """A fixed set of ranks runs at a fixed fraction of nominal speed.

    This is the classic "slow node" scenario: e.g. 4 of 128 ranks at 0.5x
    models thermally throttled sockets.
    """

    time_independent = True

    def __init__(self, slow_ranks: Iterable[int], factor: float) -> None:
        check_positive("factor", factor)
        self.slow_ranks = frozenset(int(r) for r in slow_ranks)
        self.factor = float(factor)

    def speed(self, rank: int, time: float) -> float:
        return self.factor if rank in self.slow_ranks else 1.0


class RandomStaticVariability(VariabilityModel):
    """Per-rank lognormal speed multipliers, fixed over time.

    ``sigma`` is the standard deviation of log-speed; multipliers are
    normalized so their mean is 1.0 (total machine capacity is conserved,
    only its distribution varies).
    """

    time_independent = True

    def __init__(self, n_ranks: int, sigma: float, seed: int = 0) -> None:
        check_positive("n_ranks", n_ranks)
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        rng = spawn_rng(seed, "random_static_variability", n_ranks)
        speeds = np.exp(rng.normal(0.0, sigma, size=n_ranks))
        self._speeds = speeds / speeds.mean()

    def speed(self, rank: int, time: float) -> float:
        return float(self._speeds[rank])


class PeriodicThrottle(VariabilityModel):
    """DVFS-style duty cycling: ranks periodically drop to a lower speed.

    Each affected rank runs at ``factor`` for the first ``duty`` fraction
    of every ``period`` seconds, at nominal speed otherwise. Per-rank
    phase offsets are derived from the seed so throttling windows are
    decorrelated across the machine — the "energy-induced performance
    variability" regime of the paper's conclusion in its most literal
    form.
    """

    def __init__(
        self,
        n_ranks: int,
        period: float,
        duty: float,
        factor: float,
        seed: int = 0,
        affected: Iterable[int] | None = None,
    ) -> None:
        check_positive("n_ranks", n_ranks)
        check_positive("period", period)
        check_positive("factor", factor)
        if not 0.0 <= duty <= 1.0:
            raise ConfigurationError(f"duty must be in [0, 1], got {duty}")
        self.period = float(period)
        self.duty = float(duty)
        self.factor = float(factor)
        self.affected = (
            frozenset(range(n_ranks)) if affected is None else frozenset(affected)
        )
        rng = spawn_rng(seed, "periodic_throttle", n_ranks)
        self._phases = rng.uniform(0.0, self.period, size=n_ranks)

    def speed(self, rank: int, time: float) -> float:
        if rank not in self.affected:
            return 1.0
        position = (time + self._phases[rank]) % self.period
        return self.factor if position < self.duty * self.period else 1.0


class TransientSlowdown(VariabilityModel):
    """Time-windowed slowdowns: ``(rank, t_start, t_end, factor)`` tuples.

    Outside its windows a rank runs at nominal speed; overlapping windows
    multiply (two 0.5x windows give 0.25x).
    """

    def __init__(self, windows: Iterable[tuple[int, float, float, float]]) -> None:
        self.windows: list[tuple[int, float, float, float]] = []
        for rank, t0, t1, factor in windows:
            if t1 <= t0:
                raise ConfigurationError(f"window end {t1} must exceed start {t0}")
            check_positive("factor", factor)
            self.windows.append((int(rank), float(t0), float(t1), float(factor)))

    def speed(self, rank: int, time: float) -> float:
        mult = 1.0
        for wrank, t0, t1, factor in self.windows:
            if wrank == rank and t0 <= time < t1:
                mult *= factor
        return mult
