"""ASCII execution timelines (Gantt charts) from traced runs.

Requires the run to have been made with ``trace_intervals=True`` so the
:class:`~repro.exec_models.base.RunResult` carries raw intervals. Each
rank becomes one row of width ``width``; every column shows the activity
that dominated that time slice:

    # compute   - communication   o scheduling overhead   . idle   x failed

These are the pictures behind experiment E2's numbers: a static-block run
shows a staircase of ``.`` tails, a stealing run shows near-solid ``#``
with sparse ``o`` flecks. Fault runs (E16) add ``x`` stretches: RMA
timeouts against dead ranks, and the dead span of a crashed rank itself.
"""

from __future__ import annotations

import numpy as np

from repro.exec_models.base import RunResult
from repro.runtime.trace import COMM, COMPUTE, FAILED, IDLE, OVERHEAD
from repro.util import ConfigurationError, check_positive

_GLYPHS = {COMPUTE: "#", COMM: "-", OVERHEAD: "o", IDLE: ".", FAILED: "x"}
#: Priority when a slice holds several activities: show the busiest
#: non-idle one; idle only when nothing else happened.
_PRIORITY = (COMPUTE, COMM, OVERHEAD, FAILED, IDLE)


def rank_timeline(result: RunResult, rank: int, width: int = 80) -> str:
    """One rank's activity as a ``width``-character strip."""
    check_positive("width", width)
    if result.intervals is None:
        raise ConfigurationError(
            "run was not traced with trace_intervals=True; re-run the model "
            "with trace_intervals=True to render timelines"
        )
    if not 0 <= rank < result.n_ranks:
        raise ConfigurationError(f"rank {rank} outside [0, {result.n_ranks})")
    makespan = result.makespan
    if makespan <= 0:
        return "." * width
    # Accumulate per-slice seconds by category. Explicit IDLE intervals
    # are skipped: idle is the default glyph for empty columns, and the
    # busiest-wins rule should never let idle mask real activity.
    totals = {cat: np.zeros(width) for cat in (COMPUTE, COMM, OVERHEAD, FAILED)}
    scale = width / makespan
    for irank, category, start, end in result.intervals:
        if irank != rank or category == IDLE:
            continue
        lo = start * scale
        hi = min(end * scale, width)
        first = int(lo)
        last = min(int(np.ceil(hi)), width)
        for col in range(first, last):
            overlap = min(hi, col + 1) - max(lo, col)
            if overlap > 0:
                totals[category][col] += overlap
    chars = []
    for col in range(width):
        values = {cat: totals[cat][col] for cat in totals}
        busiest = max(values, key=lambda c: values[c])
        if values[busiest] <= 1e-12:
            chars.append(_GLYPHS[IDLE])
        else:
            chars.append(_GLYPHS[busiest])
    return "".join(chars)


def ascii_gantt(
    result: RunResult, width: int = 80, max_ranks: int = 32
) -> str:
    """Multi-rank timeline; subsamples evenly when there are many ranks."""
    check_positive("width", width)
    check_positive("max_ranks", max_ranks)
    if result.n_ranks <= max_ranks:
        ranks = list(range(result.n_ranks))
    else:
        ranks = sorted(
            {int(r) for r in np.linspace(0, result.n_ranks - 1, max_ranks)}
        )
    header = (
        f"{result.model}: makespan {result.makespan * 1e3:.3f} ms, "
        f"utilization {result.mean_utilization:.2f}   "
        f"[{_GLYPHS[COMPUTE]}=compute {_GLYPHS[COMM]}=comm "
        f"{_GLYPHS[OVERHEAD]}=overhead {_GLYPHS[IDLE]}=idle "
        f"{_GLYPHS[FAILED]}=failed]"
    )
    lines = [header]
    for rank in ranks:
        lines.append(f"r{rank:<4d} |{rank_timeline(result, rank, width)}|")
    return "\n".join(lines)
