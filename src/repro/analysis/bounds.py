"""Makespan bounds: how close did a schedule get to the machine's limit?

Two lower bounds on any execution of a task graph over a machine:

- **work bound** — total modeled flops spread perfectly over all ranks at
  nominal speed;
- **critical-task bound** — the single most expensive task cannot be
  split.

``bound_efficiency`` reports measured makespan against the tighter of the
two; it is the "how much was left on the table" number that complements
per-category breakdowns (a model can be 100% utilized and still slow if
it moved work to slow ranks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chemistry.tasks import TaskGraph
from repro.exec_models.base import RunResult
from repro.simulate.machine import MachineSpec
from repro.util import ConfigurationError


@dataclass(frozen=True)
class MakespanBounds:
    """Lower bounds (seconds) for one (graph, machine) pair."""

    work_bound: float
    critical_task_bound: float

    @property
    def tightest(self) -> float:
        return max(self.work_bound, self.critical_task_bound)


def makespan_bounds(graph: TaskGraph, machine: MachineSpec) -> MakespanBounds:
    """Compute both lower bounds at nominal rank speed."""
    costs = graph.costs
    rate = machine.flops_per_second
    if costs.size == 0:
        return MakespanBounds(0.0, 0.0)
    return MakespanBounds(
        work_bound=float(costs.sum() / (machine.n_ranks * rate)),
        critical_task_bound=float(costs.max() / rate),
    )


def bound_efficiency(result: RunResult, graph: TaskGraph, machine: MachineSpec) -> float:
    """``tightest_lower_bound / makespan`` in (0, 1]; 1 is unimprovable.

    Only meaningful on a homogeneous machine at nominal speed (variability
    shifts the true bound; the nominal bound then underestimates).
    """
    if result.n_tasks != graph.n_tasks:
        raise ConfigurationError(
            f"result covers {result.n_tasks} tasks, graph has {graph.n_tasks}"
        )
    if result.makespan <= 0:
        return 0.0
    bounds = makespan_bounds(graph, machine)
    return min(1.0, bounds.tightest / result.makespan)
