"""SVG execution-timeline export (no plotting dependencies).

Produces a self-contained SVG Gantt chart from an interval-traced
:class:`~repro.exec_models.base.RunResult`: one lane per rank, colored by
activity category, with a time axis and a legend — the publication-grade
sibling of :func:`repro.analysis.timeline.ascii_gantt`.
"""

from __future__ import annotations

import html
import pathlib

import numpy as np

from repro.exec_models.base import RunResult
from repro.runtime.trace import COMM, COMPUTE, FAILED, IDLE, OVERHEAD
from repro.util import ConfigurationError, check_positive

_COLORS = {
    COMPUTE: "#2f7ed8",
    COMM: "#8bbc21",
    OVERHEAD: "#f28f43",
    IDLE: "#e8e8e8",
    FAILED: "#c0392b",
}
_LANE_HEIGHT = 14
_LANE_GAP = 3
_MARGIN_LEFT = 56
_MARGIN_TOP = 42
_AXIS_HEIGHT = 26


def timeline_svg(
    result: RunResult, width: int = 900, max_ranks: int = 64
) -> str:
    """Render one run's per-rank timeline as an SVG document string."""
    check_positive("width", width)
    check_positive("max_ranks", max_ranks)
    if result.intervals is None:
        raise ConfigurationError(
            "run was not traced with trace_intervals=True; re-run the model "
            "with trace_intervals=True to export SVG timelines"
        )
    makespan = result.makespan
    if makespan <= 0:
        raise ConfigurationError("empty run: nothing to render")
    if result.n_ranks <= max_ranks:
        ranks = list(range(result.n_ranks))
    else:
        ranks = sorted({int(r) for r in np.linspace(0, result.n_ranks - 1, max_ranks)})
    lane_of = {rank: idx for idx, rank in enumerate(ranks)}
    plot_width = width - _MARGIN_LEFT - 12
    height = (
        _MARGIN_TOP + len(ranks) * (_LANE_HEIGHT + _LANE_GAP) + _AXIS_HEIGHT
    )
    scale = plot_width / makespan

    parts: list[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="10">'
    )
    title = html.escape(
        f"{result.model} - makespan {makespan * 1e3:.3f} ms, "
        f"utilization {result.mean_utilization:.2f}"
    )
    parts.append(f'<text x="{_MARGIN_LEFT}" y="14" font-size="12">{title}</text>')
    # Legend.
    x = _MARGIN_LEFT
    for cat in (COMPUTE, COMM, OVERHEAD, IDLE, FAILED):
        parts.append(
            f'<rect x="{x}" y="20" width="10" height="10" fill="{_COLORS[cat]}"/>'
            f'<text x="{x + 13}" y="29">{cat}</text>'
        )
        x += 13 + 8 * len(cat) + 16

    # Idle background lanes.
    for rank in ranks:
        y = _MARGIN_TOP + lane_of[rank] * (_LANE_HEIGHT + _LANE_GAP)
        parts.append(
            f'<text x="4" y="{y + _LANE_HEIGHT - 3}">r{rank}</text>'
            f'<rect x="{_MARGIN_LEFT}" y="{y}" width="{plot_width:.2f}" '
            f'height="{_LANE_HEIGHT}" fill="{_COLORS[IDLE]}"/>'
        )
    # Activity rectangles. Explicit IDLE intervals are skipped — the
    # idle-colored background lane already shows them.
    for rank, category, start, end in result.intervals:
        if rank not in lane_of or end <= start or category == IDLE:
            continue
        y = _MARGIN_TOP + lane_of[rank] * (_LANE_HEIGHT + _LANE_GAP)
        x0 = _MARGIN_LEFT + start * scale
        w = max((end - start) * scale, 0.3)
        parts.append(
            f'<rect x="{x0:.2f}" y="{y}" width="{w:.2f}" '
            f'height="{_LANE_HEIGHT}" fill="{_COLORS[category]}"/>'
        )
    # Time axis.
    axis_y = _MARGIN_TOP + len(ranks) * (_LANE_HEIGHT + _LANE_GAP) + 12
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{axis_y - 8}" '
        f'x2="{_MARGIN_LEFT + plot_width}" y2="{axis_y - 8}" stroke="#888"/>'
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x0 = _MARGIN_LEFT + frac * plot_width
        label = f"{frac * makespan * 1e3:.2f} ms"
        parts.append(
            f'<line x1="{x0:.1f}" y1="{axis_y - 11}" x2="{x0:.1f}" '
            f'y2="{axis_y - 5}" stroke="#888"/>'
            f'<text x="{x0:.1f}" y="{axis_y + 4}" text-anchor="middle">{label}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def save_timeline_svg(
    result: RunResult, path: str | pathlib.Path, width: int = 900, max_ranks: int = 64
) -> None:
    """Write the SVG timeline to ``path``."""
    pathlib.Path(path).write_text(timeline_svg(result, width, max_ranks))
