"""Structured export of run results (JSON round-trip).

Keeps downstream tooling (plotting notebooks, regression dashboards) out
of the library: a :class:`~repro.exec_models.base.RunResult` serializes
to plain JSON and loads back with full numeric fidelity.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

import numpy as np

from repro.core.results import StudyReport
from repro.exec_models.base import RunResult
from repro.util import ConfigurationError

_SCHEMA_VERSION = 1


def result_to_dict(result: RunResult) -> dict[str, Any]:
    """JSON-serializable dictionary of one run (intervals included if kept)."""
    return {
        "schema": _SCHEMA_VERSION,
        "model": result.model,
        "n_ranks": result.n_ranks,
        "n_tasks": result.n_tasks,
        "makespan": result.makespan,
        "breakdown": {k: v.tolist() for k, v in result.breakdown.items()},
        "assignment": result.assignment.tolist(),
        "task_starts": result.task_starts.tolist(),
        "task_durations": result.task_durations.tolist(),
        "finish_times": result.finish_times.tolist(),
        "counters": dict(result.counters),
        "network": dict(result.network),
        "total_flops": result.total_flops,
        "nominal_flops_per_second": result.nominal_flops_per_second,
        "failed_ranks": list(result.failed_ranks),
        "completion_rate": result.completion_rate,
        "intervals": result.intervals,
    }


def result_from_dict(data: dict[str, Any]) -> RunResult:
    """Inverse of :func:`result_to_dict`."""
    if data.get("schema") != _SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported result schema {data.get('schema')!r}"
        )
    intervals = data.get("intervals")
    return RunResult(
        model=data["model"],
        n_ranks=int(data["n_ranks"]),
        n_tasks=int(data["n_tasks"]),
        makespan=float(data["makespan"]),
        breakdown={k: np.asarray(v) for k, v in data["breakdown"].items()},
        assignment=np.asarray(data["assignment"], dtype=np.int64),
        task_starts=np.asarray(data["task_starts"]),
        task_durations=np.asarray(data["task_durations"]),
        finish_times=np.asarray(data["finish_times"]),
        counters=dict(data["counters"]),
        network=dict(data["network"]),
        total_flops=float(data["total_flops"]),
        nominal_flops_per_second=float(data["nominal_flops_per_second"]),
        failed_ranks=tuple(int(r) for r in data.get("failed_ranks", ())),
        completion_rate=float(data.get("completion_rate", 1.0)),
        intervals=[tuple(iv) for iv in intervals] if intervals is not None else None,
    )


def save_result_json(result: RunResult, path: str | pathlib.Path) -> None:
    """Write one run result as JSON."""
    pathlib.Path(path).write_text(json.dumps(result_to_dict(result)))


def load_result_json(path: str | pathlib.Path) -> RunResult:
    """Load a run result saved by :func:`save_result_json`."""
    return result_from_dict(json.loads(pathlib.Path(path).read_text()))


# ----------------------------------------------------------------------
# Whole-report round-trip (the sweep path's merge/export unit)
# ----------------------------------------------------------------------

def report_to_dict(report: StudyReport) -> dict[str, Any]:
    """JSON-serializable form of a whole study report.

    Provenance ("cached"/"fresh" per cell, when the report came from a
    sweep) rides along so dashboards can show cache behaviour; it never
    affects the numeric payload.
    """
    return {
        "schema": _SCHEMA_VERSION,
        "cells": [
            {
                "provenance": report.provenance.get(key),
                "result": result_to_dict(result),
            }
            for key, result in sorted(report.results.items(), key=lambda kv: (kv[0][1], kv[0][0]))
        ],
    }


def report_from_dict(data: dict[str, Any]) -> StudyReport:
    """Inverse of :func:`report_to_dict`."""
    if data.get("schema") != _SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported report schema {data.get('schema')!r}"
        )
    report = StudyReport()
    for cell in data["cells"]:
        report.add(result_from_dict(cell["result"]), provenance=cell.get("provenance"))
    return report


def save_report_json(report: StudyReport, path: str | pathlib.Path) -> None:
    """Write a whole study report as JSON."""
    pathlib.Path(path).write_text(json.dumps(report_to_dict(report)))


def load_report_json(path: str | pathlib.Path) -> StudyReport:
    """Load a report saved by :func:`save_report_json`."""
    return report_from_dict(json.loads(pathlib.Path(path).read_text()))


def merge_reports(*reports: StudyReport) -> StudyReport:
    """Combine several (partial) reports into one; later reports win ties.

    The sweep workflow shards a large grid across benchmark files or CI
    jobs and stitches the saved partial reports back together here —
    cached and fresh cells merge transparently because they are
    bit-for-bit identical.
    """
    merged = StudyReport()
    for report in reports:
        merged.merge(report)
    return merged
