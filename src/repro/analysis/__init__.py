"""Post-run analysis: timelines, distributions, structured export.

Everything here consumes :class:`~repro.exec_models.base.RunResult` (or a
plain cost array) and produces either terminal-friendly text or
JSON-serializable dictionaries — no plotting dependencies.
"""

from repro.analysis.timeline import ascii_gantt, rank_timeline
from repro.analysis.distribution import (
    ascii_histogram,
    cost_statistics,
    gini_coefficient,
)
from repro.analysis.export import (
    load_report_json,
    load_result_json,
    merge_reports,
    report_from_dict,
    report_to_dict,
    result_to_dict,
    save_report_json,
    save_result_json,
)
from repro.analysis.bounds import MakespanBounds, makespan_bounds, bound_efficiency
from repro.analysis.svg import timeline_svg, save_timeline_svg

__all__ = [
    "timeline_svg",
    "save_timeline_svg",
    "MakespanBounds",
    "makespan_bounds",
    "bound_efficiency",
    "ascii_gantt",
    "rank_timeline",
    "ascii_histogram",
    "cost_statistics",
    "gini_coefficient",
    "result_to_dict",
    "save_result_json",
    "load_result_json",
    "report_to_dict",
    "report_from_dict",
    "save_report_json",
    "load_report_json",
    "merge_reports",
]
