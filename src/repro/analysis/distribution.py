"""Task-cost distribution analysis.

The screening-induced heavy tail is the physical cause of every load-
balancing effect in the study; these helpers quantify and display it.
"""

from __future__ import annotations

import numpy as np

from repro.util import ConfigurationError, check_positive


def cost_statistics(costs: np.ndarray) -> dict[str, float]:
    """Summary statistics of a cost distribution.

    Returns count, total, mean, median, max, coefficient of variation,
    Gini coefficient, and the share of total cost carried by the top 10%
    of tasks (the tail-dominance number).
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.size == 0:
        return {
            "count": 0.0, "total": 0.0, "mean": 0.0, "median": 0.0,
            "max": 0.0, "cv": 0.0, "gini": 0.0, "top10_share": 0.0,
        }
    if np.any(costs < 0):
        raise ConfigurationError("costs must be non-negative")
    total = float(costs.sum())
    ordered = np.sort(costs)[::-1]
    top_k = max(1, costs.size // 10)
    return {
        "count": float(costs.size),
        "total": total,
        "mean": float(costs.mean()),
        "median": float(np.median(costs)),
        "max": float(costs.max()),
        "cv": float(costs.std() / costs.mean()) if costs.mean() > 0 else 0.0,
        "gini": gini_coefficient(costs),
        "top10_share": float(ordered[:top_k].sum() / total) if total > 0 else 0.0,
    }


def gini_coefficient(costs: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution (0 = uniform)."""
    costs = np.sort(np.asarray(costs, dtype=np.float64))
    if costs.size == 0 or costs.sum() == 0:
        return 0.0
    if np.any(costs < 0):
        raise ConfigurationError("costs must be non-negative")
    n = costs.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * costs).sum()) / (n * costs.sum()) - (n + 1.0) / n)


def ascii_histogram(
    costs: np.ndarray,
    bins: int = 12,
    width: int = 50,
    log_bins: bool = True,
) -> str:
    """Terminal histogram of task costs (log-spaced bins by default)."""
    check_positive("bins", bins)
    check_positive("width", width)
    costs = np.asarray(costs, dtype=np.float64)
    if costs.size == 0:
        return "(no tasks)"
    positive = costs[costs > 0]
    if log_bins and positive.size and positive.max() > positive.min():
        edges = np.geomspace(positive.min(), positive.max(), bins + 1)
        data = positive
    else:
        edges = np.linspace(costs.min(), costs.max() + 1e-300, bins + 1)
        data = costs
    counts, edges = np.histogram(data, bins=edges)
    peak = counts.max() if counts.max() > 0 else 1
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{edges[i]:>12.3e} - {edges[i + 1]:>12.3e} |{bar:<{width}}| {count}")
    return "\n".join(lines)
