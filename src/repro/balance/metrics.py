"""Schedule-quality metrics shared by all balancers and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.chemistry.tasks import TaskGraph
from repro.runtime.garrays import BlockDistribution
from repro.util import ConfigurationError, check_positive


def rank_loads(costs: np.ndarray, assignment: np.ndarray, n_ranks: int) -> np.ndarray:
    """``(n_ranks,)`` total assigned cost per rank."""
    check_positive("n_ranks", n_ranks)
    costs = np.asarray(costs, dtype=np.float64)
    assignment = np.asarray(assignment, dtype=np.int64)
    if costs.shape != assignment.shape:
        raise ConfigurationError(
            f"costs {costs.shape} and assignment {assignment.shape} differ"
        )
    if assignment.size and (assignment.min() < 0 or assignment.max() >= n_ranks):
        raise ConfigurationError(f"assignment references ranks outside [0, {n_ranks})")
    return np.bincount(assignment, weights=costs, minlength=n_ranks)


def imbalance(costs: np.ndarray, assignment: np.ndarray, n_ranks: int) -> float:
    """Load-imbalance factor lambda = max load / mean load (>= 1)."""
    loads = rank_loads(costs, assignment, n_ranks)
    mean = loads.mean()
    return float(loads.max() / mean) if mean > 0 else 1.0


def makespan_lower_bound(costs: np.ndarray, n_ranks: int) -> float:
    """max(total/P, largest task): no schedule can beat this."""
    check_positive("n_ranks", n_ranks)
    costs = np.asarray(costs, dtype=np.float64)
    if costs.size == 0:
        return 0.0
    return float(max(costs.sum() / n_ranks, costs.max()))


def communication_volume(
    graph: TaskGraph, assignment: np.ndarray, distribution: BlockDistribution
) -> int:
    """Total remote bytes moved by a schedule.

    Sums the size of every density get and Fock accumulate whose block
    owner differs from the executing rank — the locality objective the
    semi-matching and hypergraph balancers trade against pure balance.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.size != graph.n_tasks:
        raise ConfigurationError(
            f"assignment covers {assignment.size} tasks, graph has {graph.n_tasks}"
        )
    rows, cols, tids = graph.footprint_arrays
    if rows.size == 0:
        return 0
    nb = distribution.n_blocks
    bad = (rows < 0) | (rows >= nb) | (cols < 0) | (cols >= nb)
    if np.any(bad):
        k = int(np.flatnonzero(bad)[0])
        ref = (int(rows[k]), int(cols[k]))
        raise ConfigurationError(f"block {ref} out of range for {nb} blocks")
    remote = distribution.owner_matrix()[rows, cols] != assignment[tids]
    sizes = graph.blocks.sizes()
    # Exact integer arithmetic, so summation order is irrelevant.
    return int(np.sum(sizes[rows] * sizes[cols] * 8 * remote))
