"""Greedy list-scheduling balancers.

LPT (Longest Processing Time first) is the classic 4/3-approximate
makespan heuristic and the quality yardstick the fancier balancers must at
least match on pure balance; :func:`locality_greedy` adds a locality
preference, and :func:`capacity_lpt` handles heterogeneous rank speeds
(used by persistence-based rebalancing under variability).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.chemistry.tasks import TaskGraph
from repro.runtime.garrays import BlockDistribution
from repro.util import ConfigurationError, check_positive


def lpt(costs: np.ndarray, n_ranks: int) -> np.ndarray:
    """Longest-processing-time-first list scheduling.

    Tasks in decreasing cost, each to the currently least-loaded rank.
    """
    check_positive("n_ranks", n_ranks)
    costs = np.asarray(costs, dtype=np.float64)
    assignment = np.empty(costs.size, dtype=np.int64)
    # Plain-float heap entries: ``costs[tid]`` is an ndarray scalar, and
    # carrying it into the heap tuples makes every sift comparison box
    # and dispatch through np.float64 richcompare — the dominant cost of
    # this loop. Python floats hold the same IEEE doubles, so the heap
    # order (and the assignment) is bit-for-bit unchanged.
    cost_list: list[float] = costs.tolist()
    heap: list[tuple[float, int]] = [(0.0, r) for r in range(n_ranks)]
    heapq.heapify(heap)
    heappop, heappush = heapq.heappop, heapq.heappush
    for tid in np.argsort(-costs, kind="stable").tolist():
        load, rank = heappop(heap)
        assignment[tid] = rank
        heappush(heap, (load + cost_list[tid], rank))
    return assignment


def capacity_lpt(costs: np.ndarray, capacities: np.ndarray) -> np.ndarray:
    """LPT on heterogeneous ranks: minimize predicted completion time.

    ``capacities[r]`` is rank *r*'s relative speed; each task goes to the
    rank with the smallest ``(load + cost) / capacity``.
    """
    costs = np.asarray(costs, dtype=np.float64)
    capacities = np.asarray(capacities, dtype=np.float64)
    if capacities.ndim != 1 or capacities.size == 0:
        raise ConfigurationError("capacities must be a non-empty 1-D array")
    if np.any(capacities <= 0):
        raise ConfigurationError("all capacities must be positive")
    n_ranks = capacities.size
    assignment = np.empty(costs.size, dtype=np.int64)
    loads = np.zeros(n_ranks)
    # Heap keyed on completion time if the task lands there; since the key
    # depends on the task, fall back to a full argmin per task (n_ranks is
    # small relative to n_tasks, and this stays vectorized). Reusing one
    # scratch buffer avoids two allocations per task; the elementwise adds
    # and divides are the same operations in the same order.
    cost_list: list[float] = costs.tolist()
    finish = np.empty(n_ranks)
    for tid in np.argsort(-costs, kind="stable").tolist():
        cost = cost_list[tid]
        np.add(loads, cost, out=finish)
        np.divide(finish, capacities, out=finish)
        rank = int(np.argmin(finish))
        assignment[tid] = rank
        loads[rank] += cost
    return assignment


def locality_greedy(
    graph: TaskGraph,
    n_ranks: int,
    distribution: BlockDistribution | None,
    slack: float = 0.15,
) -> np.ndarray:
    """LPT with a locality preference.

    Each task prefers the least-loaded rank among the owners of its data
    blocks; it spills to the globally least-loaded rank only when every
    owner is already loaded beyond ``(1 + slack) * ideal``.
    """
    check_positive("n_ranks", n_ranks)
    if distribution is None:
        return lpt(graph.costs, n_ranks)
    costs = graph.costs
    ideal = float(costs.sum()) / n_ranks if costs.size else 0.0
    limit = (1.0 + slack) * ideal
    # Loads as a plain-float list: every task does several keyed lookups
    # plus an argmin over loads, and ndarray scalar indexing would box a
    # np.float64 per touch. ``min(range(n), key=...)`` returns the first
    # minimum, exactly like np.argmin. Values are identical IEEE doubles,
    # so the assignment is unchanged.
    loads: list[float] = [0.0] * n_ranks
    cost_list: list[float] = costs.tolist()
    all_ranks = range(n_ranks)
    assignment = np.empty(graph.n_tasks, dtype=np.int64)
    owner = distribution.owner
    tasks = graph.tasks
    for tid in np.argsort(-costs, kind="stable").tolist():
        task = tasks[tid]
        owners = {owner(ref) for ref in (*task.reads, *task.writes)}
        best_owner = min(owners, key=loads.__getitem__)
        cost = cost_list[tid]
        if loads[best_owner] + cost <= limit or ideal == 0.0:
            rank = best_owner
        else:
            rank = min(all_ranks, key=loads.__getitem__)
        assignment[tid] = rank
        loads[rank] += cost
    return assignment


def lpt_balancer(
    graph: TaskGraph, n_ranks: int, distribution: BlockDistribution | None = None
) -> np.ndarray:
    """Balancer-signature wrapper around plain LPT (ignores locality)."""
    return lpt(graph.costs, n_ranks)
