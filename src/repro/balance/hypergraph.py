"""Hypergraph model of the Fock task graph.

Vertices are tasks (weighted by modeled cost); nets are matrix data blocks
(weighted by bytes), each connecting every task that reads or accumulates
that block. A k-way partition with small *connectivity-1* cut

    cut(P) = sum_nets w_e * (lambda_e - 1)

co-locates tasks that share data, minimizing replicated block traffic —
the classic (and computationally expensive) formulation the paper compares
semi-matching against.
"""

from __future__ import annotations

import numpy as np

from repro.chemistry.tasks import TaskGraph
from repro.util import ConfigurationError


class Hypergraph:
    """An immutable weighted hypergraph.

    Attributes:
        vertex_weights: ``(n_vertices,)`` float weights.
        nets: list of 1-D int arrays of distinct vertex ids (pins).
        net_weights: ``(n_nets,)`` float weights.
    """

    def __init__(
        self,
        vertex_weights: np.ndarray,
        nets: list[np.ndarray],
        net_weights: np.ndarray,
    ) -> None:
        self.vertex_weights = np.asarray(vertex_weights, dtype=np.float64)
        if self.vertex_weights.ndim != 1:
            raise ConfigurationError("vertex_weights must be 1-D")
        if np.any(self.vertex_weights < 0):
            raise ConfigurationError("vertex weights must be non-negative")
        n = self.vertex_weights.size
        self.nets = []
        for idx, net in enumerate(nets):
            pins = np.asarray(net, dtype=np.int64)
            if pins.size == 0:
                raise ConfigurationError(f"net {idx} has no pins")
            if pins.size != np.unique(pins).size:
                raise ConfigurationError(f"net {idx} has duplicate pins")
            if pins.min() < 0 or pins.max() >= n:
                raise ConfigurationError(f"net {idx} references vertices outside [0, {n})")
            self.nets.append(pins)
        self.net_weights = np.asarray(net_weights, dtype=np.float64)
        if self.net_weights.shape != (len(self.nets),):
            raise ConfigurationError(
                f"{len(self.nets)} nets but net_weights has shape {self.net_weights.shape}"
            )
        if np.any(self.net_weights < 0):
            raise ConfigurationError("net weights must be non-negative")
        self._vertex_nets: list[list[int]] | None = None

    @property
    def n_vertices(self) -> int:
        return int(self.vertex_weights.size)

    @property
    def n_nets(self) -> int:
        return len(self.nets)

    @property
    def n_pins(self) -> int:
        return int(sum(net.size for net in self.nets))

    @property
    def total_vertex_weight(self) -> float:
        return float(self.vertex_weights.sum())

    def vertex_nets(self) -> list[list[int]]:
        """Incidence: for each vertex, the net ids containing it (cached)."""
        if self._vertex_nets is None:
            incidence: list[list[int]] = [[] for _ in range(self.n_vertices)]
            for eid, net in enumerate(self.nets):
                for v in net:
                    incidence[v].append(eid)
            self._vertex_nets = incidence
        return self._vertex_nets


def fock_hypergraph(graph: TaskGraph) -> Hypergraph:
    """Build the task/data-block hypergraph for a Fock task graph."""
    pins_by_block: dict[tuple[int, int], list[int]] = {}
    for task in graph.tasks:
        for ref in dict.fromkeys((*task.reads, *task.writes)):
            pins_by_block.setdefault(ref, []).append(task.tid)
    nets: list[np.ndarray] = []
    weights: list[float] = []
    for ref in sorted(pins_by_block):
        pins = pins_by_block[ref]
        nets.append(np.array(sorted(set(pins)), dtype=np.int64))
        weights.append(float(graph.block_bytes(ref)))
    return Hypergraph(graph.costs, nets, np.array(weights))


def connectivity_cut(hg: Hypergraph, parts: np.ndarray) -> float:
    """Connectivity-1 metric: ``sum_e w_e * (lambda_e - 1)``."""
    parts = np.asarray(parts, dtype=np.int64)
    if parts.shape != (hg.n_vertices,):
        raise ConfigurationError(
            f"parts must be ({hg.n_vertices},), got {parts.shape}"
        )
    total = 0.0
    for net, weight in zip(hg.nets, hg.net_weights):
        lam = np.unique(parts[net]).size
        total += weight * (lam - 1)
    return float(total)


def part_weights(hg: Hypergraph, parts: np.ndarray, k: int) -> np.ndarray:
    """``(k,)`` total vertex weight per part."""
    parts = np.asarray(parts, dtype=np.int64)
    if parts.size and (parts.min() < 0 or parts.max() >= k):
        raise ConfigurationError(f"parts reference ids outside [0, {k})")
    return np.bincount(parts, weights=hg.vertex_weights, minlength=k)
