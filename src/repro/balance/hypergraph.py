"""Hypergraph model of the Fock task graph.

Vertices are tasks (weighted by modeled cost); nets are matrix data blocks
(weighted by bytes), each connecting every task that reads or accumulates
that block. A k-way partition with small *connectivity-1* cut

    cut(P) = sum_nets w_e * (lambda_e - 1)

co-locates tasks that share data, minimizing replicated block traffic —
the classic (and computationally expensive) formulation the paper compares
semi-matching against.

Internally the pin structure is CSR-style: one concatenated ``pins``
array plus ``xpins`` segment offsets. Construction, validation, incidence
and the cut metrics all run as NumPy segment operations; ``nets`` (the
list-of-arrays view the partitioner's inner loops iterate) is materialized
lazily as zero-copy slices of ``pins``.
"""

from __future__ import annotations

import numpy as np

from repro.chemistry.tasks import TaskGraph
from repro.util import ConfigurationError


def _store():
    # Call-time import: repro.core's package init reaches back into this
    # layer, so a module-level import would be circular.
    from repro.core.artifacts import default_store

    return default_store()


class Hypergraph:
    """An immutable weighted hypergraph.

    Attributes:
        vertex_weights: ``(n_vertices,)`` float weights.
        nets: list of 1-D int arrays of distinct vertex ids (pins);
            zero-copy views into ``pins``.
        net_weights: ``(n_nets,)`` float weights.
        pins: ``(n_pins,)`` concatenated pin array (CSR values).
        xpins: ``(n_nets + 1,)`` segment offsets into ``pins``.
    """

    def __init__(
        self,
        vertex_weights: np.ndarray,
        nets: list[np.ndarray],
        net_weights: np.ndarray,
    ) -> None:
        self.vertex_weights = np.asarray(vertex_weights, dtype=np.float64)
        if self.vertex_weights.ndim != 1:
            raise ConfigurationError("vertex_weights must be 1-D")
        if np.any(self.vertex_weights < 0):
            raise ConfigurationError("vertex weights must be non-negative")
        n = self.vertex_weights.size
        pin_arrays = [np.asarray(net, dtype=np.int64).reshape(-1) for net in nets]
        sizes = np.fromiter(
            (p.size for p in pin_arrays), dtype=np.int64, count=len(pin_arrays)
        )
        if np.any(sizes == 0):
            idx = int(np.flatnonzero(sizes == 0)[0])
            raise ConfigurationError(f"net {idx} has no pins")
        pins = (
            np.concatenate(pin_arrays) if pin_arrays else np.empty(0, dtype=np.int64)
        )
        xpins = np.zeros(len(pin_arrays) + 1, dtype=np.int64)
        np.cumsum(sizes, out=xpins[1:])
        if pins.size:
            seg = np.repeat(np.arange(len(pin_arrays)), sizes)
            out_of_range = (pins < 0) | (pins >= n)
            if np.any(out_of_range):
                idx = int(seg[np.flatnonzero(out_of_range)[0]])
                raise ConfigurationError(
                    f"net {idx} references vertices outside [0, {n})"
                )
            order = np.lexsort((pins, seg))
            sv = pins[order]
            dup = (seg[1:] == seg[:-1]) & (sv[1:] == sv[:-1])
            if np.any(dup):
                idx = int(seg[np.flatnonzero(dup)[0] + 1])
                raise ConfigurationError(f"net {idx} has duplicate pins")
        self.pins = pins
        self.xpins = xpins
        self._nets: list[np.ndarray] | None = pin_arrays
        self.net_weights = np.asarray(net_weights, dtype=np.float64)
        if self.net_weights.shape != (len(pin_arrays),):
            raise ConfigurationError(
                f"{len(pin_arrays)} nets but net_weights has shape {self.net_weights.shape}"
            )
        if np.any(self.net_weights < 0):
            raise ConfigurationError("net weights must be non-negative")
        self._vertex_nets: list[list[int]] | None = None

    @classmethod
    def from_csr(
        cls,
        vertex_weights: np.ndarray,
        xpins: np.ndarray,
        pins: np.ndarray,
        net_weights: np.ndarray,
    ) -> "Hypergraph":
        """Trusted constructor from CSR arrays (no validation).

        For internal producers whose output is correct by construction
        (the vectorized Fock builder, contraction, induction, the
        artifact-store codec); skips the per-net validation pass.
        """
        hg = cls.__new__(cls)
        hg.vertex_weights = np.asarray(vertex_weights, dtype=np.float64)
        hg.xpins = np.asarray(xpins, dtype=np.int64)
        hg.pins = np.asarray(pins, dtype=np.int64)
        hg.net_weights = np.asarray(net_weights, dtype=np.float64)
        hg._nets = None
        hg._vertex_nets = None
        return hg

    @property
    def nets(self) -> list[np.ndarray]:
        if self._nets is None:
            self._nets = np.split(self.pins, self.xpins[1:-1])
        return self._nets

    @property
    def n_vertices(self) -> int:
        return int(self.vertex_weights.size)

    @property
    def n_nets(self) -> int:
        return self.xpins.size - 1

    @property
    def n_pins(self) -> int:
        return int(self.pins.size)

    @property
    def net_sizes(self) -> np.ndarray:
        return np.diff(self.xpins)

    @property
    def total_vertex_weight(self) -> float:
        return float(self.vertex_weights.sum())

    def vertex_nets(self) -> list[list[int]]:
        """Incidence: for each vertex, the net ids containing it (cached).

        Built by one stable argsort over the pin array; within each
        vertex's list, net ids appear in ascending order — exactly the
        append order of the former per-net Python loop.
        """
        if self._vertex_nets is None:
            if self.n_vertices == 0:
                self._vertex_nets = []
            else:
                eids = np.repeat(np.arange(self.n_nets), self.net_sizes)
                order = np.argsort(self.pins, kind="stable")
                counts = np.bincount(self.pins, minlength=self.n_vertices)
                self._vertex_nets = [
                    chunk.tolist()
                    for chunk in np.split(eids[order], np.cumsum(counts[:-1]))
                ]
        return self._vertex_nets


def fock_hypergraph(graph: TaskGraph) -> Hypergraph:
    """Build the task/data-block hypergraph for a Fock task graph.

    Vectorized: the four block refs of every task — ``(C,D), (B,D),
    (A,B), (A,C)`` in footprint order, first-occurrence-deduplicated
    within the task — are encoded as integers, grouped by one stable
    sort, and split into CSR segments. Net order (sorted refs) and pin
    order (ascending task id) are identical to the former dict-of-lists
    construction.
    """
    store = _store()
    if store is not None:
        # Content-addressed by the graph: the CSR arrays round-trip
        # losslessly, and a memo hit shares one Hypergraph instance —
        # including its cached incidence lists — across every consumer.
        return store.fetch(
            store.key("fock_hypergraph", graph.content_key),
            lambda: _fock_hypergraph(graph),
            encode=lambda hg: (
                {
                    "vertex_weights": hg.vertex_weights,
                    "xpins": hg.xpins,
                    "pins": hg.pins,
                    "net_weights": hg.net_weights,
                },
                {},
            ),
            decode=lambda arrays, _meta: Hypergraph.from_csr(
                arrays["vertex_weights"],
                arrays["xpins"],
                arrays["pins"],
                arrays["net_weights"],
            ),
        )
    return _fock_hypergraph(graph)


def _fock_hypergraph(graph: TaskGraph) -> Hypergraph:
    nb = graph.blocks.n_blocks
    n = graph.n_tasks
    q = graph.quartet_array
    if n == 0:
        return Hypergraph.from_csr(
            graph.costs,
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    a, b, c, d = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
    # Ref columns in dict.fromkeys((*reads, *writes)) order.
    r1 = np.stack([c, b, a, a], axis=1)
    r2 = np.stack([d, d, b, c], axis=1)
    code = r1 * nb + r2
    keep = np.empty((n, 4), dtype=bool)
    keep[:, 0] = True
    keep[:, 1] = code[:, 1] != code[:, 0]
    keep[:, 2] = (code[:, 2] != code[:, 0]) & (code[:, 2] != code[:, 1])
    keep[:, 3] = (
        (code[:, 3] != code[:, 0])
        & (code[:, 3] != code[:, 1])
        & (code[:, 3] != code[:, 2])
    )
    tids = np.broadcast_to(np.arange(n, dtype=np.int64)[:, None], (n, 4))
    codes_f = code[keep]
    tids_f = tids[keep]
    order = np.argsort(codes_f, kind="stable")
    sorted_codes = codes_f[order]
    pins = tids_f[order]
    new_net = np.ones(sorted_codes.size, dtype=bool)
    new_net[1:] = sorted_codes[1:] != sorted_codes[:-1]
    starts = np.flatnonzero(new_net)
    xpins = np.concatenate([starts, [sorted_codes.size]]).astype(np.int64)
    refs = sorted_codes[starts]
    ra, rb = np.divmod(refs, nb)
    sizes = graph.blocks.sizes()
    weights = (sizes[ra] * sizes[rb] * 8).astype(np.float64)
    return Hypergraph.from_csr(graph.costs, xpins, pins, weights)


def connectivity_cut(hg: Hypergraph, parts: np.ndarray) -> float:
    """Connectivity-1 metric: ``sum_e w_e * (lambda_e - 1)``."""
    parts = np.asarray(parts, dtype=np.int64)
    if parts.shape != (hg.n_vertices,):
        raise ConfigurationError(
            f"parts must be ({hg.n_vertices},), got {parts.shape}"
        )
    if hg.n_nets == 0:
        return 0.0
    # lambda per net: distinct part count, via one segment sort.
    vals = parts[hg.pins]
    seg = np.repeat(np.arange(hg.n_nets), hg.net_sizes)
    order = np.lexsort((vals, seg))
    sv = vals[order]
    first = np.ones(sv.size, dtype=bool)
    first[1:] = (seg[1:] != seg[:-1]) | (sv[1:] != sv[:-1])
    lam = np.bincount(seg[first], minlength=hg.n_nets)
    # Net-order sequential accumulation keeps the exact FP sum of the
    # former per-net loop.
    total = 0.0
    for contrib in (hg.net_weights * (lam - 1)).tolist():
        total += contrib
    return float(total)


def part_weights(hg: Hypergraph, parts: np.ndarray, k: int) -> np.ndarray:
    """``(k,)`` total vertex weight per part."""
    parts = np.asarray(parts, dtype=np.int64)
    if parts.size and (parts.min() < 0 or parts.max() >= k):
        raise ConfigurationError(f"parts reference ids outside [0, {k})")
    return np.bincount(parts, weights=hg.vertex_weights, minlength=k)
