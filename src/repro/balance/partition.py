"""Multilevel hypergraph partitioner (recursive bisection + FM).

A from-scratch implementation of the standard multilevel stack
(PaToH/hMETIS class), the "traditional, computationally expensive"
comparator of the paper's claim C2:

1. **Coarsening** — heavy-connectivity matching: vertices pair with the
   unmatched neighbor sharing the most net weight (normalized by net
   size); matched pairs contract, identical nets merge, single-pin nets
   drop. Repeats until the hypergraph is small or contraction stalls.
2. **Initial bisection** — greedy weight-balanced placement on the
   coarsest hypergraph, best of several randomized starts.
3. **Uncoarsening** — project the bisection through each level and refine
   with Fiduccia-Mattheyses passes: exact delta-gain updates on critical
   nets, gain-ordered moves under a balance constraint, rollback to the
   best feasible prefix.

k-way partitions come from recursive bisection with proportional weight
targets (handles non-power-of-two k).
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.balance.hypergraph import Hypergraph, fock_hypergraph
from repro.chemistry.tasks import TaskGraph
from repro.runtime.garrays import BlockDistribution
from repro.util import PartitionError, check_positive, spawn_rng

#: Stop coarsening at this many vertices.
_COARSEN_TARGET = 80
#: Nets larger than this are ignored while scoring matches (standard
#: heuristic: huge nets carry almost no locality signal per pin).
_MAX_NET_MATCH = 64
#: Maximum FM passes per level.
_FM_PASSES = 4
#: Randomized initial-bisection restarts.
_INIT_TRIES = 4


def partition_hypergraph(
    hg: Hypergraph, k: int, eps: float = 0.05, seed: int = 0
) -> np.ndarray:
    """Partition ``hg`` into ``k`` parts balancing vertex weight.

    Args:
        eps: per-bisection balance slack (fraction of total weight).

    Returns:
        ``(n_vertices,)`` part ids in ``[0, k)``.
    """
    check_positive("k", k)
    if eps < 0:
        raise PartitionError(f"eps must be >= 0, got {eps}")
    parts = np.zeros(hg.n_vertices, dtype=np.int64)
    rng = spawn_rng(seed, "hypergraph_partition", k)
    # Bisection slack compounds multiplicatively down the recursion tree;
    # scale the per-level budget so the k-way result lands near eps.
    levels = max(1, int(np.ceil(np.log2(k))) ) if k > 1 else 1
    eps_level = max(0.015, eps / levels)
    _recurse(hg, np.arange(hg.n_vertices), k, 0, parts, eps_level, rng)
    if k > 1:
        _kway_repair(hg, parts, k, eps)
    return parts


def _kway_repair(hg: Hypergraph, parts: np.ndarray, k: int, eps: float) -> None:
    """Greedy balance repair: drain overloaded parts with min-damage moves.

    Moves the cheapest-to-move vertices (by connectivity damage per unit
    weight) from parts above ``(1 + eps) * ideal`` to the lightest part,
    in place. A bounded number of moves guards against pathological
    weight distributions where balance is unattainable (e.g. one vertex
    heavier than ideal).
    """
    weights = hg.vertex_weights
    loads = np.bincount(parts, weights=weights, minlength=k)
    ideal = weights.sum() / k
    limit = (1.0 + eps) * ideal
    incidence = hg.vertex_nets()
    budget = 4 * hg.n_vertices
    while budget > 0:
        src = int(np.argmax(loads))
        if loads[src] <= limit + 1e-12:
            break
        dst = int(np.argmin(loads))
        members = np.nonzero(parts == src)[0]
        if members.size <= 1:
            break
        overload = loads[src] - ideal
        best_v = -1
        best_key: tuple[float, float] | None = None
        for v in members:
            w = weights[v]
            if w <= 0 or w > overload + ideal - loads[dst]:
                continue
            damage = 0.0
            for eid in incidence[v]:
                pins = parts[hg.nets[eid]]
                if not np.any(pins == dst):
                    damage += hg.net_weights[eid]
                if np.count_nonzero(pins == src) == 1:
                    damage -= hg.net_weights[eid]
            key = (damage / w, -w)
            if best_key is None or key < best_key:
                best_key = key
                best_v = int(v)
        if best_v < 0:
            break
        parts[best_v] = dst
        loads[src] -= weights[best_v]
        loads[dst] += weights[best_v]
        budget -= 1


def hypergraph_balancer(
    graph: TaskGraph,
    n_ranks: int,
    distribution: BlockDistribution | None = None,
    eps: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """Balancer-signature entry point: partition the Fock hypergraph."""
    hg = fock_hypergraph(graph)
    return partition_hypergraph(hg, n_ranks, eps=eps, seed=seed)


# ----------------------------------------------------------------------
# Recursive bisection
# ----------------------------------------------------------------------
def _recurse(
    hg: Hypergraph,
    vertex_ids: np.ndarray,
    k: int,
    part_offset: int,
    parts: np.ndarray,
    eps: float,
    rng: np.random.Generator,
) -> None:
    if k == 1 or hg.n_vertices == 0:
        parts[vertex_ids] = part_offset
        return
    k0 = k // 2
    frac0 = k0 / k
    side = _multilevel_bisect(hg, frac0, eps, rng)
    for side_value, sub_k, sub_offset in (
        (0, k0, part_offset),
        (1, k - k0, part_offset + k0),
    ):
        mask = side == side_value
        if not mask.any():
            continue
        sub_hg = _induce(hg, mask)
        _recurse(sub_hg, vertex_ids[mask], sub_k, sub_offset, parts, eps, rng)


def _induce(hg: Hypergraph, mask: np.ndarray) -> Hypergraph:
    """Sub-hypergraph on ``mask`` vertices (drops nets with < 2 pins)."""
    remap = -np.ones(hg.n_vertices, dtype=np.int64)
    remap[mask] = np.arange(int(mask.sum()))
    nets: list[np.ndarray] = []
    weights: list[float] = []
    for net, w in zip(hg.nets, hg.net_weights):
        pins = remap[net]
        pins = pins[pins >= 0]
        if pins.size >= 2:
            nets.append(np.sort(pins))
            weights.append(float(w))
    return Hypergraph(hg.vertex_weights[mask], nets, np.array(weights))


# ----------------------------------------------------------------------
# Multilevel bisection
# ----------------------------------------------------------------------
def _multilevel_bisect(
    hg: Hypergraph, frac0: float, eps: float, rng: np.random.Generator
) -> np.ndarray:
    levels: list[tuple[Hypergraph, np.ndarray]] = []  # (fine_hg, fine->coarse map)
    current = hg
    while current.n_vertices > _COARSEN_TARGET:
        match = _heavy_connectivity_matching(current, rng)
        coarse, vmap = _contract(current, match)
        if coarse.n_vertices > 0.95 * current.n_vertices:
            break
        levels.append((current, vmap))
        current = coarse

    side = _initial_bisection(current, frac0, rng)
    side = _fm_refine(current, side, frac0, eps)
    for fine_hg, vmap in reversed(levels):
        side = side[vmap]
        side = _fm_refine(fine_hg, side, frac0, eps)
    return side


def _heavy_connectivity_matching(
    hg: Hypergraph, rng: np.random.Generator
) -> np.ndarray:
    """Pair vertices by shared net weight; returns partner (or self)."""
    n = hg.n_vertices
    match = -np.ones(n, dtype=np.int64)
    incidence = hg.vertex_nets()
    weight_cap = 1.5 * hg.total_vertex_weight / max(_COARSEN_TARGET, 1)
    for v in rng.permutation(n):
        v = int(v)
        if match[v] >= 0:
            continue
        scores: dict[int, float] = {}
        for eid in incidence[v]:
            net = hg.nets[eid]
            if net.size > _MAX_NET_MATCH or net.size < 2:
                continue
            score = hg.net_weights[eid] / (net.size - 1)
            for u in net:
                u = int(u)
                if u != v and match[u] < 0:
                    scores[u] = scores.get(u, 0.0) + score
        partner = -1
        best = 0.0
        wv = hg.vertex_weights[v]
        for u, s in scores.items():
            if s > best and wv + hg.vertex_weights[u] <= weight_cap:
                best = s
                partner = u
        if partner >= 0:
            match[v] = partner
            match[partner] = v
        else:
            match[v] = v
    return match


def _contract(hg: Hypergraph, match: np.ndarray) -> tuple[Hypergraph, np.ndarray]:
    """Contract matched pairs; merge identical nets; drop singletons."""
    n = hg.n_vertices
    vmap = -np.ones(n, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if vmap[v] >= 0:
            continue
        vmap[v] = next_id
        partner = int(match[v])
        if partner != v and vmap[partner] < 0:
            vmap[partner] = next_id
        next_id += 1
    weights = np.bincount(vmap, weights=hg.vertex_weights, minlength=next_id)
    merged: dict[tuple[int, ...], float] = {}
    for net, w in zip(hg.nets, hg.net_weights):
        pins = np.unique(vmap[net])
        if pins.size < 2:
            continue
        key = tuple(int(p) for p in pins)
        merged[key] = merged.get(key, 0.0) + float(w)
    nets = [np.array(key, dtype=np.int64) for key in merged]
    net_weights = np.array(list(merged.values()))
    return Hypergraph(weights, nets, net_weights), vmap


def _initial_bisection(
    hg: Hypergraph, frac0: float, rng: np.random.Generator
) -> np.ndarray:
    """Best of several randomized starts: BFS region growing (contiguous
    regions, low cut) plus one greedy weight-balanced scatter (robust when
    the hypergraph has no locality)."""
    total = hg.total_vertex_weight
    target0 = frac0 * total
    candidates = [_grow_region(hg, target0, rng) for _ in range(_INIT_TRIES)]
    candidates.append(_weight_scatter(hg, target0, total, rng))
    best_side: np.ndarray | None = None
    best_key: tuple[float, float] | None = None
    for side in candidates:
        w0 = float(hg.vertex_weights[side == 0].sum())
        key = (_cut2(hg, side), abs(w0 - target0))
        if best_key is None or key < best_key:
            best_key = key
            best_side = side
    assert best_side is not None
    return best_side


def _grow_region(
    hg: Hypergraph, target0: float, rng: np.random.Generator
) -> np.ndarray:
    """Grow side 0 from a random seed by strongest net connectivity.

    Frontier selection scans ``scores.items()`` inline — highest score
    wins, ties break toward the smaller vertex id — which is exactly the
    former ``max(scores, key=lambda u: (scores[u], -u))`` without
    allocating a key tuple and a lambda frame per candidate.
    """
    n = hg.n_vertices
    side = np.ones(n, dtype=np.int8)
    incidence = hg.vertex_nets()
    scores: dict[int, float] = {}
    in_region = np.zeros(n, dtype=bool)
    w0 = 0.0
    current = int(rng.integers(0, n))
    nets = hg.nets
    net_weights = hg.net_weights
    vertex_weights = hg.vertex_weights
    scores_get = scores.get
    while True:
        side[current] = 0
        in_region[current] = True
        w0 += vertex_weights[current]
        scores.pop(current, None)
        if w0 >= target0:
            break
        for eid in incidence[current]:
            w = net_weights[eid]
            for u in nets[eid]:
                u = int(u)
                if not in_region[u]:
                    scores[u] = scores_get(u, 0.0) + w
        if scores:
            best_u = -1
            best_s = -math.inf
            for u, s in scores.items():
                if s > best_s or (s == best_s and u < best_u):
                    best_s = s
                    best_u = u
            current = best_u
        else:
            remaining = np.nonzero(~in_region)[0]
            if remaining.size == 0:
                break
            current = int(remaining[rng.integers(0, remaining.size)])
    return side


def _weight_scatter(
    hg: Hypergraph, target0: float, total: float, rng: np.random.Generator
) -> np.ndarray:
    """Greedy deficit placement in decreasing-weight order."""
    order = np.argsort(-hg.vertex_weights + rng.uniform(0, 1e-9, hg.n_vertices))
    side = np.zeros(hg.n_vertices, dtype=np.int8)
    w0 = 0.0
    w1 = 0.0
    for v in order:
        v = int(v)
        if target0 - w0 >= (total - target0) - w1:
            w0 += hg.vertex_weights[v]
        else:
            side[v] = 1
            w1 += hg.vertex_weights[v]
    return side


def _cut2(hg: Hypergraph, side: np.ndarray) -> float:
    """2-way cut: total weight of nets with pins on both sides."""
    total = 0.0
    for net, w in zip(hg.nets, hg.net_weights):
        s = side[net]
        if s.min() != s.max():
            total += w
    return float(total)


# ----------------------------------------------------------------------
# FM refinement
# ----------------------------------------------------------------------
def _fm_refine(
    hg: Hypergraph, side: np.ndarray, frac0: float, eps: float
) -> np.ndarray:
    side = side.astype(np.int8).copy()
    total = hg.total_vertex_weight
    target0 = frac0 * total
    lo = max(target0 - eps * total, 0.0)
    hi = min(target0 + eps * total, total)
    for _ in range(_FM_PASSES):
        improved, side = _fm_pass(hg, side, lo, hi, target0)
        if not improved:
            break
    return side


def _fm_pass(
    hg: Hypergraph,
    side: np.ndarray,
    lo: float,
    hi: float,
    target0: float,
) -> tuple[bool, np.ndarray]:
    n = hg.n_vertices
    incidence = hg.vertex_nets()
    vw_arr = hg.vertex_weights
    w0 = float(vw_arr[side == 0].sum())

    # Pin counts per net per side. All per-element FM state lives in
    # plain Python lists: the move loop below touches single elements
    # millions of times, where ndarray scalar indexing dominates the
    # pass. Values are the same IEEE doubles in the same order, so the
    # refinement trajectory is bit-for-bit unchanged.
    cnt0: list[int] = []
    cnt1: list[int] = []
    for net in hg.nets:
        ones = int(side[net].sum())
        cnt1.append(ones)
        cnt0.append(net.size - ones)
    side_l: list[int] = side.tolist()
    vw: list[float] = vw_arr.tolist()
    weights: list[float] = hg.net_weights.tolist()
    nets_l: list[list[int]] = [net.tolist() for net in hg.nets]

    gains: list[float] = [0.0] * n
    for v in range(n):
        s = side_l[v]
        g = 0.0
        for eid in incidence[v]:
            if (cnt1[eid] if s else cnt0[eid]) == 1:
                g += weights[eid]
            if (cnt0[eid] if s else cnt1[eid]) == 0:
                g -= weights[eid]
        gains[v] = g

    stamps: list[int] = [0] * n
    heap: list[tuple[float, int, int]] = [(-gains[v], v, 0) for v in range(n)]
    heapq.heapify(heap)
    locked: list[bool] = [False] * n

    def allowed(v: int) -> bool:
        new_w0 = w0 - vw[v] if side_l[v] == 0 else w0 + vw[v]
        if lo <= new_w0 <= hi:
            return True
        return abs(new_w0 - target0) < abs(w0 - target0)

    moves: list[int] = []
    cum = 0.0

    def state_key(w0_now: float, cum_now: float) -> tuple[int, float, float]:
        # Lexicographic: feasible beats infeasible, then larger cut gain,
        # then closer to the weight target (drives balance repair even
        # when no cut improvement exists).
        feasible = lo - 1e-12 <= w0_now <= hi + 1e-12
        return (0 if feasible else 1, -cum_now, abs(w0_now - target0))

    initial_key = state_key(w0, 0.0)
    best_key = initial_key
    best_idx = 0  # number of moves in the best prefix
    deferred: list[tuple[float, int, int]] = []

    while heap or deferred:
        if not heap:
            break
        neg_gain, v, stamp = heapq.heappop(heap)
        if locked[v] or stamp != stamps[v]:
            continue
        if not allowed(v):
            deferred.append((neg_gain, v, stamp))
            continue
        # Apply the move.
        src = side_l[v]
        dst = 1 - src
        cnt_src = cnt1 if src else cnt0
        cnt_dst = cnt0 if src else cnt1
        push = heapq.heappush
        for eid in incidence[v]:
            w = weights[eid]
            net = nets_l[eid]
            cd = cnt_dst[eid]
            if cd == 0:
                for u in net:
                    if not locked[u] and u != v:
                        gains[u] = g = gains[u] + w
                        stamps[u] = t = stamps[u] + 1
                        push(heap, (-g, u, t))
            elif cd == 1:
                for u in net:
                    if side_l[u] == dst and not locked[u]:
                        gains[u] = g = gains[u] - w
                        stamps[u] = t = stamps[u] + 1
                        push(heap, (-g, u, t))
            cnt_src[eid] = cs = cnt_src[eid] - 1
            cnt_dst[eid] = cd + 1
            if cs == 0:
                for u in net:
                    if not locked[u] and u != v:
                        gains[u] = g = gains[u] - w
                        stamps[u] = t = stamps[u] + 1
                        push(heap, (-g, u, t))
            elif cs == 1:
                for u in net:
                    if side_l[u] == src and not locked[u] and u != v:
                        gains[u] = g = gains[u] + w
                        stamps[u] = t = stamps[u] + 1
                        push(heap, (-g, u, t))
        cum += -neg_gain
        side_l[v] = dst
        w0 = w0 - vw[v] if src == 0 else w0 + vw[v]
        locked[v] = True
        moves.append(v)
        key = state_key(w0, cum)
        if key < best_key:
            best_key = key
            best_idx = len(moves)
        # Balance state changed; deferred vertices may be movable now.
        for entry in deferred:
            heapq.heappush(heap, entry)
        deferred.clear()

    # Roll back to the best prefix.
    for v in moves[best_idx:]:
        side_l[v] = 1 - side_l[v]
    return best_key < initial_key, np.array(side_l, dtype=np.int8)
