"""Multilevel hypergraph partitioner (recursive bisection + FM).

A from-scratch implementation of the standard multilevel stack
(PaToH/hMETIS class), the "traditional, computationally expensive"
comparator of the paper's claim C2:

1. **Coarsening** — heavy-connectivity matching: vertices pair with the
   unmatched neighbor sharing the most net weight (normalized by net
   size); matched pairs contract, identical nets merge, single-pin nets
   drop. Repeats until the hypergraph is small or contraction stalls.
2. **Initial bisection** — greedy weight-balanced placement on the
   coarsest hypergraph, best of several randomized starts.
3. **Uncoarsening** — project the bisection through each level and refine
   with Fiduccia-Mattheyses passes: exact delta-gain updates on critical
   nets, gain-ordered moves under a balance constraint, rollback to the
   best feasible prefix.

k-way partitions come from recursive bisection with proportional weight
targets (handles non-power-of-two k).
"""

from __future__ import annotations

import heapq
import math
from bisect import insort

import numpy as np

from repro.balance.hypergraph import Hypergraph, fock_hypergraph
from repro.chemistry.tasks import TaskGraph
from repro.runtime.garrays import BlockDistribution
from repro.util import PartitionError, check_positive, spawn_rng

#: Stop coarsening at this many vertices.
_COARSEN_TARGET = 80
#: Nets larger than this are ignored while scoring matches (standard
#: heuristic: huge nets carry almost no locality signal per pin).
_MAX_NET_MATCH = 64
#: Maximum FM passes per level.
_FM_PASSES = 4
#: Randomized initial-bisection restarts.
_INIT_TRIES = 4


def _store():
    # Call-time import: repro.core's package init reaches back into this
    # layer, so a module-level import would be circular.
    from repro.core.artifacts import default_store

    return default_store()


def partition_hypergraph(
    hg: Hypergraph, k: int, eps: float = 0.05, seed: int = 0
) -> np.ndarray:
    """Partition ``hg`` into ``k`` parts balancing vertex weight.

    Args:
        eps: per-bisection balance slack (fraction of total weight).

    Returns:
        ``(n_vertices,)`` part ids in ``[0, k)``.
    """
    check_positive("k", k)
    if eps < 0:
        raise PartitionError(f"eps must be >= 0, got {eps}")
    parts = np.zeros(hg.n_vertices, dtype=np.int64)
    rng = spawn_rng(seed, "hypergraph_partition", k)
    # Bisection slack compounds multiplicatively down the recursion tree;
    # scale the per-level budget so the k-way result lands near eps.
    levels = max(1, int(np.ceil(np.log2(k))) ) if k > 1 else 1
    eps_level = max(0.015, eps / levels)
    _recurse(hg, np.arange(hg.n_vertices), k, 0, parts, eps_level, rng)
    if k > 1:
        _kway_repair(hg, parts, k, eps)
    return parts


def _kway_repair(hg: Hypergraph, parts: np.ndarray, k: int, eps: float) -> None:
    """Greedy balance repair: drain overloaded parts with min-damage moves.

    Moves the cheapest-to-move vertices (by connectivity damage per unit
    weight) from parts above ``(1 + eps) * ideal`` to the lightest part,
    in place. A bounded number of moves guards against pathological
    weight distributions where balance is unattainable (e.g. one vertex
    heavier than ideal).
    """
    weights = hg.vertex_weights
    loads = np.bincount(parts, weights=weights, minlength=k)
    ideal = weights.sum() / k
    limit = (1.0 + eps) * ideal
    incidence = hg.vertex_nets()
    budget = 4 * hg.n_vertices
    # Plain-float views for the per-vertex scan: ndarray scalar reads
    # (``weights[v]``, ``net_weights[eid]``) would box one np.float64 per
    # touch and route every ``key`` comparison through richcompare
    # dispatch. Same doubles, same accumulation order, same moves.
    weight_list: list[float] = weights.tolist()
    net_weight_list: list[float] = hg.net_weights.tolist()
    while budget > 0:
        src = int(np.argmax(loads))
        if loads[src] <= limit + 1e-12:
            break
        dst = int(np.argmin(loads))
        members = np.nonzero(parts == src)[0]
        if members.size <= 1:
            break
        overload = loads[src] - ideal
        headroom = overload + ideal - loads[dst]
        best_v = -1
        best_key: tuple[float, float] | None = None
        for v in members.tolist():
            w = weight_list[v]
            if w <= 0 or w > headroom:
                continue
            damage = 0.0
            for eid in incidence[v]:
                pins = parts[hg.nets[eid]]
                if not np.any(pins == dst):
                    damage += net_weight_list[eid]
                if np.count_nonzero(pins == src) == 1:
                    damage -= net_weight_list[eid]
            key = (damage / w, -w)
            if best_key is None or key < best_key:
                best_key = key
                best_v = v
        if best_v < 0:
            break
        parts[best_v] = dst
        moved = weight_list[best_v]
        loads[src] -= moved
        loads[dst] += moved
        budget -= 1


def hypergraph_balancer(
    graph: TaskGraph,
    n_ranks: int,
    distribution: BlockDistribution | None = None,
    eps: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """Balancer-signature entry point: partition the Fock hypergraph.

    The assignment is content-addressed by (graph, k, eps, seed), so the
    multilevel partitioner runs at most once per distinct configuration
    per process — and not at all on a warm on-disk store. Hits return a
    fresh copy (callers may mutate the parts array).
    """
    store = _store()
    if store is None:
        return partition_hypergraph(fock_hypergraph(graph), n_ranks, eps=eps, seed=seed)
    return store.fetch(
        store.key(
            "hypergraph_balancer", graph.content_key, int(n_ranks), float(eps), int(seed)
        ),
        lambda: partition_hypergraph(
            fock_hypergraph(graph), n_ranks, eps=eps, seed=seed
        ),
        encode=lambda parts: ({"parts": parts}, {}),
        decode=lambda arrays, _meta: arrays["parts"],
        copy_on_hit=np.copy,
    )


# ----------------------------------------------------------------------
# Recursive bisection
# ----------------------------------------------------------------------
def _recurse(
    hg: Hypergraph,
    vertex_ids: np.ndarray,
    k: int,
    part_offset: int,
    parts: np.ndarray,
    eps: float,
    rng: np.random.Generator,
) -> None:
    if k == 1 or hg.n_vertices == 0:
        parts[vertex_ids] = part_offset
        return
    k0 = k // 2
    frac0 = k0 / k
    side = _multilevel_bisect(hg, frac0, eps, rng)
    for side_value, sub_k, sub_offset in (
        (0, k0, part_offset),
        (1, k - k0, part_offset + k0),
    ):
        mask = side == side_value
        if not mask.any():
            continue
        sub_hg = _induce(hg, mask)
        _recurse(sub_hg, vertex_ids[mask], sub_k, sub_offset, parts, eps, rng)


def _induce(hg: Hypergraph, mask: np.ndarray) -> Hypergraph:
    """Sub-hypergraph on ``mask`` vertices (drops nets with < 2 pins).

    One segment filter + sort over the CSR pin array replaces the former
    per-net Python loop; surviving nets keep their order and their
    ascending-pin layout, so the result is identical.
    """
    remap = -np.ones(hg.n_vertices, dtype=np.int64)
    remap[mask] = np.arange(int(mask.sum()))
    n_nets = hg.n_nets
    mapped = remap[hg.pins]
    seg = np.repeat(np.arange(n_nets), hg.net_sizes)
    valid = mapped >= 0
    mapped = mapped[valid]
    seg = seg[valid]
    counts = np.bincount(seg, minlength=n_nets)
    keep = counts >= 2
    order = np.lexsort((mapped, seg))
    sorted_pins = mapped[order]
    sorted_seg = seg[order]
    pin_keep = keep[sorted_seg] if sorted_seg.size else np.zeros(0, dtype=bool)
    new_sizes = counts[keep]
    xpins = np.zeros(new_sizes.size + 1, dtype=np.int64)
    np.cumsum(new_sizes, out=xpins[1:])
    return Hypergraph.from_csr(
        hg.vertex_weights[mask],
        xpins,
        sorted_pins[pin_keep],
        hg.net_weights[keep],
    )


# ----------------------------------------------------------------------
# Multilevel bisection
# ----------------------------------------------------------------------
def _multilevel_bisect(
    hg: Hypergraph, frac0: float, eps: float, rng: np.random.Generator
) -> np.ndarray:
    levels: list[tuple[Hypergraph, np.ndarray]] = []  # (fine_hg, fine->coarse map)
    current = hg
    while current.n_vertices > _COARSEN_TARGET:
        match = _heavy_connectivity_matching(current, rng)
        coarse, vmap = _contract(current, match)
        if coarse.n_vertices > 0.95 * current.n_vertices:
            break
        levels.append((current, vmap))
        current = coarse

    side = _initial_bisection(current, frac0, rng)
    side = _fm_refine(current, side, frac0, eps)
    for fine_hg, vmap in reversed(levels):
        side = side[vmap]
        side = _fm_refine(fine_hg, side, frac0, eps)
    return side


def _heavy_connectivity_matching(
    hg: Hypergraph, rng: np.random.Generator
) -> np.ndarray:
    """Pair vertices by shared net weight; returns partner (or self).

    Per-vertex scoring runs on a dense buffer: contributions land via
    ``np.add.at`` in the dict accumulation's event order, candidates are
    enumerated in first-touch order (the dict's insertion order), and
    the strict-``>`` scan becomes a first-maximum argmax over that
    ordering — same winner, bit for bit, including the weight-cap rule
    (a capped candidate never updated ``best``, which is exactly what
    pre-filtering achieves).
    """
    n = hg.n_vertices
    match = -np.ones(n, dtype=np.int64)
    incidence = hg.vertex_nets()
    nets = hg.nets
    net_weights = hg.net_weights
    vertex_weights = hg.vertex_weights
    weight_cap = 1.5 * hg.total_vertex_weight / max(_COARSEN_TARGET, 1)
    scores = np.zeros(n, dtype=np.float64)
    for v in rng.permutation(n):
        v = int(v)
        if match[v] >= 0:
            continue
        pin_lists: list[np.ndarray] = []
        per_pin: list[float] = []
        for eid in incidence[v]:
            net = nets[eid]
            if net.size > _MAX_NET_MATCH or net.size < 2:
                continue
            pin_lists.append(net)
            per_pin.append(net_weights[eid] / (net.size - 1))
        partner = -1
        if pin_lists:
            cat = (
                pin_lists[0]
                if len(pin_lists) == 1
                else np.concatenate(pin_lists)
            )
            wrep = np.repeat(
                np.array(per_pin), [p.size for p in pin_lists]
            )
            np.add.at(scores, cat, wrep)
            uniq, first = np.unique(cat, return_index=True)
            cand = uniq[np.argsort(first)]
            ok = (
                (cand != v)
                & (match[cand] < 0)
                & (vertex_weights[v] + vertex_weights[cand] <= weight_cap)
            )
            cand = cand[ok]
            if cand.size:
                cand_scores = scores[cand]
                i = int(np.argmax(cand_scores))
                if cand_scores[i] > 0.0:
                    partner = int(cand[i])
            scores[uniq] = 0.0
        if partner >= 0:
            match[v] = partner
            match[partner] = v
        else:
            match[v] = v
    return match


def _contract(hg: Hypergraph, match: np.ndarray) -> tuple[Hypergraph, np.ndarray]:
    """Contract matched pairs; merge identical nets; drop singletons.

    The coarse vertex numbering assigns ids to pair representatives
    ``min(v, match[v])`` in ascending order — exactly what
    ``np.unique(..., return_inverse=True)`` produces, since a vertex is
    numbered at its first (smaller-id) appearance. Per-net pin dedup is
    one segment sort over the CSR arrays; identical-net merging keeps
    the first-occurrence net order and FP weight-accumulation order of
    the former tuple-keyed dict.
    """
    n = hg.n_vertices
    reps = np.minimum(np.arange(n, dtype=np.int64), match)
    uniq_reps, vmap = np.unique(reps, return_inverse=True)
    vmap = vmap.astype(np.int64, copy=False)
    next_id = uniq_reps.size
    weights = np.bincount(vmap, weights=hg.vertex_weights, minlength=next_id)
    n_nets = hg.n_nets
    if hg.n_pins == 0:
        coarse = Hypergraph.from_csr(
            weights,
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
        return coarse, vmap
    mapped = vmap[hg.pins]
    seg = np.repeat(np.arange(n_nets), hg.net_sizes)
    order = np.lexsort((mapped, seg))
    sv = mapped[order]
    first = np.ones(sv.size, dtype=bool)
    first[1:] = (seg[1:] != seg[:-1]) | (sv[1:] != sv[:-1])
    dedup_vals = sv[first]
    dedup_seg = seg[first]
    new_sizes = np.bincount(dedup_seg, minlength=n_nets)
    offs = np.zeros(n_nets + 1, dtype=np.int64)
    np.cumsum(new_sizes, out=offs[1:])
    keep = np.flatnonzero(new_sizes >= 2)
    merged: dict[bytes, int] = {}
    nets_list: list[np.ndarray] = []
    wlist: list[float] = []
    w_arr = hg.net_weights
    for e in keep.tolist():
        pins_e = dedup_vals[offs[e] : offs[e + 1]]
        key = pins_e.tobytes()
        pos = merged.get(key)
        if pos is None:
            merged[key] = len(nets_list)
            nets_list.append(pins_e)
            wlist.append(0.0 + float(w_arr[e]))
        else:
            wlist[pos] += float(w_arr[e])
    sizes_new = np.fromiter(
        (p.size for p in nets_list), dtype=np.int64, count=len(nets_list)
    )
    xpins = np.zeros(len(nets_list) + 1, dtype=np.int64)
    np.cumsum(sizes_new, out=xpins[1:])
    pins_new = (
        np.concatenate(nets_list) if nets_list else np.empty(0, dtype=np.int64)
    )
    coarse = Hypergraph.from_csr(
        weights, xpins, pins_new, np.array(wlist, dtype=np.float64)
    )
    return coarse, vmap


def _initial_bisection(
    hg: Hypergraph, frac0: float, rng: np.random.Generator
) -> np.ndarray:
    """Best of several randomized starts: BFS region growing (contiguous
    regions, low cut) plus one greedy weight-balanced scatter (robust when
    the hypergraph has no locality)."""
    total = hg.total_vertex_weight
    target0 = frac0 * total
    candidates = [_grow_region(hg, target0, rng) for _ in range(_INIT_TRIES)]
    candidates.append(_weight_scatter(hg, target0, total, rng))
    best_side: np.ndarray | None = None
    best_key: tuple[float, float] | None = None
    for side in candidates:
        w0 = float(hg.vertex_weights[side == 0].sum())
        key = (_cut2(hg, side), abs(w0 - target0))
        if best_key is None or key < best_key:
            best_key = key
            best_side = side
    assert best_side is not None
    return best_side


def _grow_region(
    hg: Hypergraph, target0: float, rng: np.random.Generator
) -> np.ndarray:
    """Grow side 0 from a random seed by strongest net connectivity.

    Highest connectivity score wins each absorption step; ties break
    toward the smaller vertex id.
    """
    n = hg.n_vertices
    side = np.ones(n, dtype=np.int8)
    incidence = hg.vertex_nets()
    nets = hg.nets
    net_weights = hg.net_weights
    vertex_weights = hg.vertex_weights
    # Dense frontier state replaces the former score dict: ``np.add.at``
    # applies the per-pin contributions of each absorbed vertex in the
    # same event order the dict accumulation used, and the masked argmax
    # picks the first (= smallest-id) maximum — the dict scan's exact
    # tie-break. Scores accumulated onto vertices already in the region
    # are dead weight the mask hides; candidates were provably outside
    # the region at every one of their add events, so their values are
    # bit-identical.
    scores = np.zeros(n, dtype=np.float64)
    touched = np.zeros(n, dtype=bool)
    in_region = np.zeros(n, dtype=bool)
    w0 = 0.0
    current = int(rng.integers(0, n))
    while True:
        side[current] = 0
        in_region[current] = True
        w0 += vertex_weights[current]
        if w0 >= target0:
            break
        eids = incidence[current]
        if eids:
            if len(eids) == 1:
                cat = nets[eids[0]]
                wrep = np.full(cat.size, net_weights[eids[0]])
            else:
                pin_lists = [nets[e] for e in eids]
                cat = np.concatenate(pin_lists)
                wrep = np.repeat(
                    net_weights[eids], [p.size for p in pin_lists]
                )
            np.add.at(scores, cat, wrep)
            touched[cat] = True
        frontier = touched & ~in_region
        if frontier.any():
            current = int(np.argmax(np.where(frontier, scores, -math.inf)))
        else:
            remaining = np.nonzero(~in_region)[0]
            if remaining.size == 0:
                break
            current = int(remaining[rng.integers(0, remaining.size)])
    return side


def _weight_scatter(
    hg: Hypergraph, target0: float, total: float, rng: np.random.Generator
) -> np.ndarray:
    """Greedy deficit placement in decreasing-weight order."""
    order = np.argsort(-hg.vertex_weights + rng.uniform(0, 1e-9, hg.n_vertices))
    side = np.zeros(hg.n_vertices, dtype=np.int8)
    w0 = 0.0
    w1 = 0.0
    for v in order:
        v = int(v)
        if target0 - w0 >= (total - target0) - w1:
            w0 += hg.vertex_weights[v]
        else:
            side[v] = 1
            w1 += hg.vertex_weights[v]
    return side


def _cut2(hg: Hypergraph, side: np.ndarray) -> float:
    """2-way cut: total weight of nets with pins on both sides.

    Segment min/max over the CSR pin array finds cut nets in one pass;
    the weight sum then runs sequentially in net order, preserving the
    exact FP accumulation of the former per-net loop.
    """
    if hg.n_nets == 0:
        return 0.0
    starts = hg.xpins[:-1]
    sv = side[hg.pins]
    cut = np.minimum.reduceat(sv, starts) != np.maximum.reduceat(sv, starts)
    total = 0.0
    for w in hg.net_weights[cut].tolist():
        total += w
    return float(total)


# ----------------------------------------------------------------------
# FM refinement
# ----------------------------------------------------------------------
def _fm_refine(
    hg: Hypergraph, side: np.ndarray, frac0: float, eps: float
) -> np.ndarray:
    side = side.astype(np.int8).copy()
    total = hg.total_vertex_weight
    target0 = frac0 * total
    lo = max(target0 - eps * total, 0.0)
    hi = min(target0 + eps * total, total)
    for _ in range(_FM_PASSES):
        improved, side = _fm_pass(hg, side, lo, hi, target0)
        if not improved:
            break
    return side


def _fm_state(
    hg: Hypergraph,
) -> tuple[
    list[float],
    list[float],
    list[list[int]],
    np.ndarray,
    np.ndarray | None,
    np.ndarray | None,
    np.ndarray | None,
]:
    """Side-independent FM working state, memoized on the hypergraph.

    ``_fm_refine`` runs up to ``_FM_PASSES`` passes over the same
    (immutable) hypergraph; the list views of weights/pins and the
    sorted initial-gain event layout are identical every pass, so they
    are built once and cached like ``nets``/``vertex_nets``.
    """
    cache = getattr(hg, "_fm_state", None)
    if cache is None:
        sizes_arr = hg.net_sizes
        if hg.n_pins:
            seg = np.repeat(np.arange(hg.n_nets), sizes_arr)
            order = np.argsort(hg.pins, kind="stable")
            ev_v = hg.pins[order]
            ev_net = seg[order]
            ev_idx = np.repeat(ev_v, 2)
        else:
            ev_v = ev_net = ev_idx = None
        cache = (
            hg.vertex_weights.tolist(),
            hg.net_weights.tolist(),
            [net.tolist() for net in hg.nets],
            sizes_arr,
            ev_v,
            ev_net,
            ev_idx,
        )
        hg._fm_state = cache  # type: ignore[attr-defined]
    return cache


def _fm_pass(
    hg: Hypergraph,
    side: np.ndarray,
    lo: float,
    hi: float,
    target0: float,
) -> tuple[bool, np.ndarray]:
    n = hg.n_vertices
    incidence = hg.vertex_nets()
    vw_arr = hg.vertex_weights
    w0 = float(vw_arr[side == 0].sum())

    # Pin counts per net per side. All per-element FM state lives in
    # plain Python lists: the move loop below touches single elements
    # millions of times, where ndarray scalar indexing dominates the
    # pass. Values are the same IEEE doubles in the same order, so the
    # refinement trajectory is bit-for-bit unchanged.
    vw, weights, nets_l, sizes_arr, ev_v, ev_net, ev_idx = _fm_state(hg)
    if hg.n_nets:
        ones_arr = np.add.reduceat(
            side[hg.pins].astype(np.int64), hg.xpins[:-1]
        )
    else:
        ones_arr = np.zeros(0, dtype=np.int64)
    cnt1: list[int] = ones_arr.tolist()
    cnt0: list[int] = (sizes_arr - ones_arr).tolist()
    side_l: list[int] = side.tolist()

    # Initial gains, vectorized: events sorted (vertex-major, net
    # ascending) replicate the former per-vertex incidence loop, and the
    # interleaved (+w, -w) event pairs keep its exact FP add order.
    # ``np.add.at`` applies sequentially; adding 0.0 for non-firing
    # conditions is an exact no-op (no -0.0 can reach the accumulator).
    if hg.n_pins:
        on_one = side[ev_v].astype(bool)
        c1 = ones_arr[ev_net]
        c0 = sizes_arr[ev_net] - c1
        cnt_same = np.where(on_one, c1, c0)
        cnt_oth = np.where(on_one, c0, c1)
        w_ev = hg.net_weights[ev_net]
        ev = np.zeros((ev_v.size, 2), dtype=np.float64)
        ev[:, 0] = np.where(cnt_same == 1, w_ev, 0.0)
        ev[:, 1] = np.where(cnt_oth == 0, -w_ev, 0.0)
        gains_arr = np.zeros(n, dtype=np.float64)
        np.add.at(gains_arr, ev_idx, ev.ravel())
        gains: list[float] = gains_arr.tolist()
    else:
        gains = [0.0] * n

    stamps: list[int] = [0] * n
    heap: list[tuple[float, int, int]] = [(-gains[v], v, 0) for v in range(n)]
    heapq.heapify(heap)
    locked: list[bool] = [False] * n

    moves: list[int] = []
    cum = 0.0

    def state_key(w0_now: float, cum_now: float) -> tuple[int, float, float]:
        # Lexicographic: feasible beats infeasible, then larger cut gain,
        # then closer to the weight target (drives balance repair even
        # when no cut improvement exists).
        feasible = lo - 1e-12 <= w0_now <= hi + 1e-12
        return (0 if feasible else 1, -cum_now, abs(w0_now - target0))

    initial_key = state_key(w0, 0.0)
    best_key = initial_key
    best_idx = 0  # number of moves in the best prefix

    # Balance-blocked candidates. Entries are appended in pop order, so
    # ``deferred`` is always sorted; after each applied move they become
    # candidates again via a lazy two-way merge with the heap instead of
    # a wholesale re-push. The candidate sequence is identical — merging
    # two sorted streams yields the same global order the re-pushed heap
    # produced (entry tuples are unique: stamps grow per vertex) — but
    # a blocked entry now costs one comparison per round instead of a
    # heap push + pop.
    deferred: list[tuple[float, int, int]] = []
    redeferred: list[tuple[float, int, int]] = []
    dptr = 0  # deferred entries before dptr were examined this round
    dev0 = abs(w0 - target0)
    pop = heapq.heappop
    push = heapq.heappush

    # Rescan guard. A blocked entry can only unblock when a move shifts
    # ``(w0, dev0)``, and whether it does depends solely on its side and
    # vertex weight. Tracking the per-side weight range of everything
    # ever deferred (a lazy superset — stale or consumed entries are
    # never subtracted) lets most rounds prove "nothing can unblock"
    # with four float comparisons and skip the full rescan of the
    # blocked list that used to run after every move. The proof is
    # widened by ``slack`` so float rounding can only produce a false
    # positive (a wasted scan), never a missed unblock; any drift here
    # would show up as digest churn in tests/test_build_equivalence.py.
    d0_min = d1_min = math.inf
    d0_max = d1_max = -math.inf
    scan_deferred = True
    slack = 1e-9 * (abs(target0) + abs(lo) + abs(hi) + 1.0)

    def may_unblock() -> bool:
        if d0_max >= d0_min:  # any side-0 entries deferred so far
            if d0_max >= w0 - hi - slack and d0_min <= w0 - lo + slack:
                return True
            delta = w0 - target0
            if d0_max > delta - dev0 - slack and d0_min < delta + dev0 + slack:
                return True
        if d1_max >= d1_min:
            if d1_max >= lo - w0 - slack and d1_min <= hi - w0 + slack:
                return True
            delta = target0 - w0
            if d1_max > delta - dev0 - slack and d1_min < delta + dev0 + slack:
                return True
        return False
    # Per-move scratch: vertices whose gain changed this move. One heap
    # entry per touched vertex (with its final gain) replaces the former
    # push-per-update: a vertex has at most one live entry either way,
    # pop order of live entries depends only on ``(gain, vertex)`` —
    # the stamp field never breaks a tie between two live entries — and
    # stale entries are discarded on pop, so the examined-candidate
    # sequence is identical while heap churn drops.
    touched: list[int] = []
    is_touched: list[bool] = [False] * n

    while True:
        if (
            scan_deferred
            and dptr < len(deferred)
            and (not heap or deferred[dptr] <= heap[0])
        ):
            entry = deferred[dptr]
            dptr += 1
        elif heap:
            entry = pop(heap)
        else:
            # Every candidate of this round is locked, stale, or
            # balance-blocked: the pass is done (matching the former
            # ``if not heap: break`` with deferred entries pending —
            # when the scan is suppressed, the guard has already proven
            # every skipped entry would only be re-deferred).
            break
        neg_gain, v, stamp = entry
        if locked[v] or stamp != stamps[v]:
            continue
        new_w0 = w0 - vw[v] if side_l[v] == 0 else w0 + vw[v]
        if not (lo <= new_w0 <= hi) and not (abs(new_w0 - target0) < dev0):
            wv = vw[v]
            if side_l[v] == 0:
                if wv < d0_min:
                    d0_min = wv
                if wv > d0_max:
                    d0_max = wv
            else:
                if wv < d1_min:
                    d1_min = wv
                if wv > d1_max:
                    d1_max = wv
            if scan_deferred:
                redeferred.append(entry)
            else:
                # The skipped blocked list is untouched this round
                # (``dptr == 0``); insert in sort order so a later
                # scanning round sees the exact candidate sequence the
                # eager re-push produced.
                insort(deferred, entry)
            continue
        # Apply the move.
        src = side_l[v]
        dst = 1 - src
        cnt_src = cnt1 if src else cnt0
        cnt_dst = cnt0 if src else cnt1
        for eid in incidence[v]:
            w = weights[eid]
            net = nets_l[eid]
            cd = cnt_dst[eid]
            if cd == 0:
                for u in net:
                    if not locked[u] and u != v:
                        gains[u] = gains[u] + w
                        if not is_touched[u]:
                            is_touched[u] = True
                            touched.append(u)
            elif cd == 1:
                for u in net:
                    if side_l[u] == dst and not locked[u]:
                        gains[u] = gains[u] - w
                        if not is_touched[u]:
                            is_touched[u] = True
                            touched.append(u)
            cnt_src[eid] = cs = cnt_src[eid] - 1
            cnt_dst[eid] = cd + 1
            if cs == 0:
                for u in net:
                    if not locked[u] and u != v:
                        gains[u] = gains[u] - w
                        if not is_touched[u]:
                            is_touched[u] = True
                            touched.append(u)
            elif cs == 1:
                for u in net:
                    if side_l[u] == src and not locked[u] and u != v:
                        gains[u] = gains[u] + w
                        if not is_touched[u]:
                            is_touched[u] = True
                            touched.append(u)
        if touched:
            for u in touched:
                is_touched[u] = False
                stamps[u] = t = stamps[u] + 1
                push(heap, (-gains[u], u, t))
            touched.clear()
        cum += -neg_gain
        side_l[v] = dst
        w0 = new_w0
        dev0 = abs(w0 - target0)
        locked[v] = True
        moves.append(v)
        key = state_key(w0, cum)
        if key < best_key:
            best_key = key
            best_idx = len(moves)
        # Balance state changed; blocked vertices may be movable now.
        # Start the next round's merge from the top of the (still
        # sorted) blocked list: this round's re-deferrals all precede
        # the unexamined tail in sort order.
        if redeferred or dptr:
            redeferred.extend(deferred[dptr:])
            deferred = redeferred
            redeferred = []
            dptr = 0
        scan_deferred = not deferred or may_unblock()

    # Roll back to the best prefix.
    for v in moves[best_idx:]:
        side_l[v] = 1 - side_l[v]
    return best_key < initial_key, np.array(side_l, dtype=np.int8)
