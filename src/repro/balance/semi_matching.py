"""Semi-matching load balancing on the task x rank locality graph.

A *semi-matching* of a bipartite graph (tasks U, machines V) assigns every
task to one of its eligible machines; an **optimal** semi-matching
minimizes the maximum machine load (equivalently, it admits no
*cost-reducing path* — an alternating walk machine -> assigned task ->
eligible machine ending at a machine at least two units lighter; Harvey et
al. 2003). The paper's novelty claim is that this machinery, run on the
Fock task graph with eligibility = "ranks owning part of the task's data
footprint", balances as well as hypergraph partitioning at a tiny fraction
of its cost.

Three solvers:

- :func:`greedy_semi_matching` -- weighted greedy (decreasing cost, least
  loaded eligible rank); O(n log n).
- :func:`optimal_semi_matching` -- exact for unit weights, by repeatedly
  flipping cost-reducing paths found with BFS.
- :func:`weighted_semi_matching` -- greedy + relocation/swap refinement
  sweeps for real-valued costs (optimality is NP-hard there).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.chemistry.tasks import TaskGraph
from repro.runtime.garrays import BlockDistribution
from repro.util import ConfigurationError, PartitionError, check_positive, spawn_rng


def _store():
    # Call-time import: repro.core's package init reaches back into this
    # layer, so a module-level import would be circular.
    from repro.core.artifacts import default_store

    return default_store()


def build_eligibility(
    graph: TaskGraph,
    n_ranks: int,
    distribution: BlockDistribution,
    extra_degree: int = 0,
    seed: int = 0,
) -> list[list[int]]:
    """Eligible ranks per task: owners of its data blocks (+ random extras).

    ``extra_degree`` appends that many random additional ranks per task,
    loosening locality to guarantee balance feasibility on adversarial
    footprint distributions (the paper's bounded-degree relaxation).
    """
    check_positive("n_ranks", n_ranks)
    if extra_degree < 0:
        raise ConfigurationError(f"extra_degree must be >= 0, got {extra_degree}")
    rng = spawn_rng(seed, "eligibility", n_ranks)
    # One vectorized owner lookup for every footprint ref, then a cheap
    # per-task set/sort pass over the precomputed Python ints. The RNG
    # draw sequence (one choice() per task) is unchanged.
    rows, cols, tids = graph.footprint_arrays
    owners_flat = distribution.owner_matrix()[rows, cols].tolist()
    counts = np.bincount(tids, minlength=graph.n_tasks)
    offs = np.zeros(graph.n_tasks + 1, dtype=np.int64)
    np.cumsum(counts, out=offs[1:])
    offs = offs.tolist()
    n_extra = min(extra_degree, n_ranks)
    out: list[list[int]] = []
    for tid in range(graph.n_tasks):
        owners = set(owners_flat[offs[tid] : offs[tid + 1]])
        if extra_degree:
            extras = rng.choice(n_ranks, size=n_extra, replace=False)
            owners.update(int(r) for r in extras)
        out.append(sorted(owners))
    return out


def _validate_eligibility(eligibility: list[list[int]], n_ranks: int) -> None:
    for tid, ranks in enumerate(eligibility):
        if not ranks:
            raise ConfigurationError(f"task {tid} has an empty eligibility list")
        if min(ranks) < 0 or max(ranks) >= n_ranks:
            r = next(r for r in ranks if not 0 <= r < n_ranks)
            raise ConfigurationError(
                f"task {tid} eligible for rank {r} outside [0, {n_ranks})"
            )


def greedy_semi_matching(
    costs: np.ndarray, eligibility: list[list[int]], n_ranks: int
) -> np.ndarray:
    """Decreasing-cost greedy: each task to its least-loaded eligible rank."""
    check_positive("n_ranks", n_ranks)
    costs = np.asarray(costs, dtype=np.float64)
    if costs.size != len(eligibility):
        raise ConfigurationError(
            f"{costs.size} costs but {len(eligibility)} eligibility lists"
        )
    _validate_eligibility(eligibility, n_ranks)
    # Python-list load state: the loop reads/writes single elements only,
    # where ndarray scalar indexing dominates. Same doubles, same
    # first-minimum tie-break, so the assignment is unchanged.
    loads = [0.0] * n_ranks
    costs_l = costs.tolist()
    assignment = np.empty(costs.size, dtype=np.int64)
    for tid in np.argsort(-costs, kind="stable").tolist():
        rank = min(eligibility[tid], key=loads.__getitem__)
        assignment[tid] = rank
        loads[rank] += costs_l[tid]
    return assignment


def optimal_semi_matching(
    eligibility: list[list[int]], n_ranks: int, max_flips: int | None = None
) -> np.ndarray:
    """Optimal unit-weight semi-matching via cost-reducing paths.

    Starts from the greedy solution and BFS-searches, from each overloaded
    machine, for an alternating path to a machine at least two tasks
    lighter; flipping the path moves one task along each edge, strictly
    decreasing ``sum(load^2)``. When no machine admits a cost-reducing
    path, the assignment is optimal (minimizes max load, and in fact the
    whole load profile lexicographically).

    Args:
        max_flips: safety cap on path flips (default ``8 * n_tasks``).

    Raises:
        PartitionError: if the flip cap is hit (would indicate a bug —
            the potential argument guarantees termination).
    """
    check_positive("n_ranks", n_ranks)
    _validate_eligibility(eligibility, n_ranks)
    n_tasks = len(eligibility)
    unit = np.ones(n_tasks)
    assignment = greedy_semi_matching(unit, eligibility, n_ranks)
    # Integer load counts as a Python list: the BFS below reads single
    # elements millions of times. The set-based ``tasks_on`` structures
    # are load-bearing — their iteration order steers which reducing
    # path BFS finds first — and stay exactly as they were.
    loads: list[int] = np.bincount(assignment, minlength=n_ranks).tolist()

    # tasks_on[r]: set of task ids currently on rank r.
    tasks_on: list[set[int]] = [set() for _ in range(n_ranks)]
    for tid, rank in enumerate(assignment):
        tasks_on[rank].add(tid)

    cap = max_flips if max_flips is not None else 8 * max(n_tasks, 1)
    flips = 0
    while True:
        # Scan machines from most loaded; a flip changes reachability
        # globally, so restart the scan after each one. Termination: every
        # flip strictly decreases sum(load^2).
        found = False
        for start in np.argsort(-np.array(loads), kind="stable"):
            path = _cost_reducing_path(int(start), loads, tasks_on, eligibility)
            if path is None:
                continue
            # path = [m0, t0, m1, t1, ..., mk]; move ti from mi to mi+1.
            for idx in range(1, len(path), 2):
                tid = path[idx]
                src = path[idx - 1]
                dst = path[idx + 1]
                tasks_on[src].discard(tid)
                tasks_on[dst].add(tid)
                assignment[tid] = dst
            loads[path[0]] -= 1
            loads[path[-1]] += 1
            flips += 1
            if flips > cap:
                raise PartitionError("optimal semi-matching exceeded its flip cap")
            found = True
            break
        if not found:
            return assignment


def _cost_reducing_path(
    start: int,
    loads: list[int],
    tasks_on: list[set[int]],
    eligibility: list[list[int]],
) -> list[int] | None:
    """BFS for an alternating path from ``start`` to a machine with
    ``load <= load[start] - 2``; returns [m0, t0, m1, ..., mk] or None."""
    target_load = loads[start] - 2
    if target_load < 0:
        return None
    parent: dict[int, tuple[int, int]] = {}  # machine -> (prev_machine, task)
    visited = {start}
    queue = deque([start])
    while queue:
        machine = queue.popleft()
        for tid in tasks_on[machine]:
            for nxt in eligibility[tid]:
                if nxt in visited:
                    continue
                visited.add(nxt)
                parent[nxt] = (machine, tid)
                if loads[nxt] <= target_load:
                    # Reconstruct path back to start.
                    path: list[int] = [nxt]
                    cur = nxt
                    while cur != start:
                        prev, task = parent[cur]
                        path.extend([task, prev])
                        cur = prev
                    path.reverse()
                    return path
                queue.append(nxt)
    return None


def weighted_semi_matching(
    costs: np.ndarray,
    eligibility: list[list[int]],
    n_ranks: int,
    sweeps: int = 4,
) -> np.ndarray:
    """Greedy weighted semi-matching plus relocation refinement.

    Each sweep scans ranks from most to least loaded and tries to relocate
    tasks off the heaviest ranks onto lighter eligible ranks whenever that
    lowers the maximum of the pair; sweeps stop early at a fixed point.
    """
    check_positive("n_ranks", n_ranks)
    if sweeps < 0:
        raise ConfigurationError(f"sweeps must be >= 0, got {sweeps}")
    costs = np.asarray(costs, dtype=np.float64)
    assignment = greedy_semi_matching(costs, eligibility, n_ranks)
    # List-based load/cost state for the element-at-a-time sweep loops;
    # identical IEEE doubles, so every relocation decision is unchanged.
    loads: list[float] = np.bincount(
        assignment, weights=costs, minlength=n_ranks
    ).tolist()
    costs_l: list[float] = costs.tolist()
    tasks_on: list[list[int]] = [[] for _ in range(n_ranks)]
    for tid, rank in enumerate(assignment):
        tasks_on[rank].append(tid)

    for _ in range(sweeps):
        moved = False
        for rank in np.argsort(-np.array(loads)).tolist():
            # Try big tasks first: moving them helps the most.
            for tid in sorted(tasks_on[rank], key=lambda t: -costs_l[t]):
                best_dst = None
                load_r = loads[rank]
                best_peak = load_r
                c = costs_l[tid]
                for dst in eligibility[tid]:
                    if dst == rank:
                        continue
                    peak = max(load_r - c, loads[dst] + c)
                    if peak < best_peak - 1e-12:
                        best_peak = peak
                        best_dst = dst
                if best_dst is not None:
                    tasks_on[rank].remove(tid)
                    tasks_on[best_dst].append(tid)
                    loads[rank] = load_r - c
                    loads[best_dst] += c
                    assignment[tid] = best_dst
                    moved = True
        if not moved:
            break
    return assignment


def semi_matching_balancer(
    graph: TaskGraph,
    n_ranks: int,
    distribution: BlockDistribution | None = None,
    mode: str = "weighted",
    extra_degree: int = 2,
    sweeps: int = 4,
    seed: int = 0,
) -> np.ndarray:
    """Balancer-signature entry point for semi-matching.

    Args:
        mode: ``"weighted"`` (default), ``"greedy"``, or ``"optimal_unit"``
            (ignores costs; exact on task counts).
        extra_degree: random extra eligible ranks per task.
    """
    if mode not in ("weighted", "greedy", "optimal_unit"):
        raise ConfigurationError(f"unknown semi-matching mode {mode!r}")
    if distribution is None:
        distribution = BlockDistribution(graph.blocks.n_blocks, n_ranks)

    def _solve() -> np.ndarray:
        eligibility = build_eligibility(
            graph, n_ranks, distribution, extra_degree, seed
        )
        if mode == "greedy":
            return greedy_semi_matching(graph.costs, eligibility, n_ranks)
        if mode == "optimal_unit":
            return optimal_semi_matching(eligibility, n_ranks)
        return weighted_semi_matching(graph.costs, eligibility, n_ranks, sweeps)

    store = _store()
    if store is None:
        return _solve()
    # Content-addressed by every input that steers the solve (the
    # distribution fields pin eligibility); hits return a fresh copy.
    return store.fetch(
        store.key(
            "semi_matching",
            graph.content_key,
            int(n_ranks),
            (distribution.n_blocks, distribution.n_ranks, distribution.scheme),
            mode,
            int(extra_degree),
            int(sweeps),
            int(seed),
        ),
        _solve,
        encode=lambda assign: ({"assignment": assign}, {}),
        decode=lambda arrays, _meta: arrays["assignment"],
        copy_on_hit=np.copy,
    )
