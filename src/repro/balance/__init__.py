"""Load-balancing algorithms for the inspector-executor execution model.

The paper's second claim (C2) is that a **semi-matching** balancer matches
the schedule quality of a **hypergraph-partitioning** balancer at a small
fraction of its computational cost. This package implements both from
scratch, plus the greedy baselines they are judged against:

- :mod:`repro.balance.metrics` -- imbalance, makespan bounds,
  communication volume.
- :mod:`repro.balance.greedy` -- LPT list scheduling, capacity-aware LPT,
  locality-greedy.
- :mod:`repro.balance.semi_matching` -- bipartite semi-matching on the
  task x rank locality graph (greedy, optimal unit-weight via
  cost-reducing paths, weighted with refinement).
- :mod:`repro.balance.hypergraph` -- the task/data-block hypergraph model.
- :mod:`repro.balance.partition` -- a multilevel recursive-bisection
  hypergraph partitioner (heavy-connectivity coarsening, greedy initial
  partitions, FM refinement).

All balancers share one signature::

    balancer(graph: TaskGraph, n_ranks: int,
             distribution: BlockDistribution | None) -> np.ndarray

returning a ``(n_tasks,)`` task->rank assignment.
"""

from repro.balance.metrics import (
    rank_loads,
    imbalance,
    makespan_lower_bound,
    communication_volume,
)
from repro.balance.greedy import lpt, capacity_lpt, locality_greedy, lpt_balancer
from repro.balance.semi_matching import (
    build_eligibility,
    greedy_semi_matching,
    optimal_semi_matching,
    weighted_semi_matching,
    semi_matching_balancer,
)
from repro.balance.hypergraph import Hypergraph, fock_hypergraph, connectivity_cut
from repro.balance.partition import partition_hypergraph, hypergraph_balancer

__all__ = [
    "rank_loads",
    "imbalance",
    "makespan_lower_bound",
    "communication_volume",
    "lpt",
    "capacity_lpt",
    "locality_greedy",
    "lpt_balancer",
    "build_eligibility",
    "greedy_semi_matching",
    "optimal_semi_matching",
    "weighted_semi_matching",
    "semi_matching_balancer",
    "Hypergraph",
    "fock_hypergraph",
    "connectivity_cut",
    "partition_hypergraph",
    "hypergraph_balancer",
]
