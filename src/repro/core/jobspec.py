"""The unified study description: one `JobSpec`, three front doors.

Before this module, "run a study" meant three disjoint vocabularies:
``repro study`` CLI flags, ``repro.api.sweep(...)`` keyword arguments,
and (with the service) an HTTP request body — each with its own parsing,
defaults, and validation holes (``--bind``/``--lease`` were CLI-only
side channels; ``--jobs``/``--executor`` interplay was never checked
anywhere). A :class:`JobSpec` is the single normal form all three
surfaces reduce to:

- :meth:`JobSpec.from_cli_args` — the ``repro study``/``repro serve``
  argparse namespace;
- :meth:`JobSpec.from_json` / :meth:`JobSpec.to_json` — the HTTP job
  API body (and the service's on-disk job records);
- direct construction — programmatic use through ``repro.api``.

Because the spec is *declarative* (a molecule recipe, not a live
``TaskGraph``), it is JSON-serializable and content-addressable:
:meth:`JobSpec.job_key` is a sha256 over exactly the fields that
determine the study's **results** (source, models, ranks, machine, seed,
faults — plus the sweep cache's code-version salt). Execution knobs
(executor, jobs, timeouts, cache paths) are deliberately excluded: two
specs that compute the same rows share a key, which is what makes
submit-side dedupe in the service fall out for free — a million
identical submissions collapse onto one simulation.

Validation (:meth:`JobSpec.validate`) happens in one place with
structured errors (:class:`JobSpecError` carries the offending field),
including the cross-field rules no single layer used to own: a
``serial`` executor with ``jobs > 1`` or a per-cell ``timeout`` is a
contradiction, and ``distributed`` with ``jobs = 1`` would degrade to
*unsupervised* serial execution the moment the worker fleet is lost.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any

from repro.util import ConfigurationError

#: Spec schema version; bump on incompatible field changes so stale
#: service job records are rejected instead of misread.
JOBSPEC_VERSION = 1

#: Molecule families a declarative source can name.
SOURCE_FAMILIES = ("water", "alkane")


class JobSpecError(ConfigurationError):
    """A structured JobSpec validation failure.

    Attributes:
        field: dotted name of the offending field (``"executor"``,
            ``"source.size"``, or ``"jobs/executor"`` for cross-field
            rules).
        reason: human-readable explanation, always naming the fix.
    """

    def __init__(self, field: str, reason: str) -> None:
        super().__init__(f"invalid job spec: {field}: {reason}")
        self.field = field
        self.reason = reason

    def to_json(self) -> dict[str, str]:
        """The wire shape the service returns for a 400 response."""
        return {"field": self.field, "reason": self.reason}


@dataclass(frozen=True)
class SourceSpec:
    """A declarative workload recipe (what ``_build_molecule`` + problem
    construction do in the CLI), serializable and content-addressable.

    Attributes:
        molecule: workload family — ``"water"`` (random water cluster)
            or ``"alkane"`` (linear alkane chain).
        size: monomers / carbons.
        block_size: basis-block granularity of the task graph.
        tau: Schwarz screening threshold.
        seed: geometry seed (water clusters only).
    """

    molecule: str = "water"
    size: int = 4
    block_size: int = 6
    tau: float = 1.0e-10
    seed: int = 0

    def validate(self) -> None:
        if self.molecule not in SOURCE_FAMILIES:
            raise JobSpecError(
                "source.molecule",
                f"unknown family {self.molecule!r}; "
                f"known: {', '.join(SOURCE_FAMILIES)}",
            )
        if not isinstance(self.size, int) or self.size < 1:
            raise JobSpecError("source.size", f"must be an int >= 1, got {self.size!r}")
        if not isinstance(self.block_size, int) or self.block_size < 1:
            raise JobSpecError(
                "source.block_size", f"must be an int >= 1, got {self.block_size!r}"
            )
        if self.tau < 0:
            raise JobSpecError("source.tau", f"must be >= 0, got {self.tau!r}")

    def build(self) -> Any:
        """Materialize the recipe into a built :class:`ScfProblem`."""
        from repro.chemistry.molecules import linear_alkane, water_cluster
        from repro.chemistry.scf import ScfProblem

        if self.molecule == "water":
            molecule = water_cluster(self.size, seed=self.seed)
        else:
            molecule = linear_alkane(self.size)
        return ScfProblem.build(
            molecule, block_size=self.block_size, tau=self.tau
        )


@dataclass(frozen=True)
class JobSpec:
    """One study, fully described: what to compute and how to run it.

    *Identity* fields (folded into :meth:`job_key`): ``source``,
    ``models``, ``ranks``, ``machine``, ``seed``, ``faults``. *Execution*
    fields (how, not what — excluded from identity): ``executor``,
    ``engine``, ``jobs``, ``timeout``, ``deadline_s``, ``max_attempts``,
    ``cache``, ``cache_dir``, ``artifact_cache``, ``tag``.

    Attributes:
        source: the declarative workload recipe.
        models: execution-model registry names to sweep.
        ranks: rank counts to sweep.
        machine: machine preset name.
        seed: base study seed (per-cell seeds derive from it).
        faults: CLI-grammar fault spec string (``"crash:2@0.3,..."``,
            see :func:`repro.faults.plan_from_spec`); ``""`` = none.
            Times are fractions of the estimated ideal makespan at the
            smallest swept rank count, exactly as ``repro study
            --faults`` scales them.
        executor: executor spec string — ``"name"`` or
            ``"name?opt=val&..."`` (:func:`repro.parallel.executor.
            parse_executor_spec`).
        engine: simulation-engine mode (``repro.simulate.sched``):
            ``auto`` | ``python`` | ``bucket`` | ``compiled``. Engines
            are bit-for-bit equivalent, so — like ``executor`` — the
            choice is excluded from :meth:`job_key`.
        jobs: worker processes for cache-miss cells.
        timeout: per-cell wall-clock budget in seconds (None = none).
        deadline_s: whole-job wall-clock budget in seconds (None =
            none). Cells not settled when it expires quarantine as
            ``DeadlineExceeded`` failures and the job reaches a
            ``failed/deadline`` terminal state in the service; journaled
            progress survives, so a resubmission resumes. An execution
            knob, so excluded from :meth:`job_key`.
        max_attempts: tries per cell before quarantine (None = policy
            default).
        cache: reuse/populate the content-addressed result cache.
        cache_dir: cache directory ("" = caller's default).
        artifact_cache: memoize workload-build intermediates.
        tag: free-form label for humans; never part of identity.
    """

    source: SourceSpec = field(default_factory=SourceSpec)
    models: tuple[str, ...] = ("static_block", "counter_dynamic", "work_stealing")
    ranks: tuple[int, ...] = (16, 64)
    machine: str = "commodity"
    seed: int = 0
    faults: str = ""
    executor: str = "local"
    engine: str = "auto"
    jobs: int = 1
    timeout: float | None = None
    deadline_s: float | None = None
    max_attempts: int | None = None
    cache: bool = True
    cache_dir: str = ""
    artifact_cache: bool = True
    tag: str = ""

    def __post_init__(self) -> None:
        # Normalize sequence fields so equal specs compare (and hash to
        # the same job key) regardless of list-vs-tuple spelling.
        if not isinstance(self.models, tuple):
            object.__setattr__(self, "models", tuple(self.models))
        if not isinstance(self.ranks, tuple):
            object.__setattr__(self, "ranks", tuple(self.ranks))
        if isinstance(self.source, dict):
            object.__setattr__(self, "source", SourceSpec(**self.source))

    # ------------------------------------------------------------------
    # Validation: the single home of every cross-surface rule.
    # ------------------------------------------------------------------
    def validate(self) -> "JobSpec":
        """Check every field and cross-field rule; returns ``self``.

        Raises :class:`JobSpecError` (never a bare assertion or a
        late surprise inside a backend) so all three front doors — CLI,
        ``api``, HTTP — report the same structured failure.
        """
        from repro.exec_models.registry import MODEL_NAMES
        from repro.parallel.executor import parse_executor_spec

        self.source.validate()
        if not self.models:
            raise JobSpecError("models", "must be non-empty")
        for name in self.models:
            if name not in MODEL_NAMES:
                raise JobSpecError(
                    "models",
                    f"unknown model {name!r}; known: {', '.join(MODEL_NAMES)}",
                )
        if not self.ranks or any(
            not isinstance(p, int) or p < 1 for p in self.ranks
        ):
            raise JobSpecError(
                "ranks", f"must be non-empty positive ints, got {self.ranks!r}"
            )
        from repro.core.config import MACHINE_PRESETS

        if self.machine not in MACHINE_PRESETS:
            raise JobSpecError(
                "machine",
                f"unknown preset {self.machine!r}; "
                f"known: {', '.join(MACHINE_PRESETS)}",
            )
        from repro.simulate.sched import ENGINE_MODES

        if self.engine not in ENGINE_MODES:
            raise JobSpecError(
                "engine",
                f"unknown engine mode {self.engine!r}; "
                f"known: {', '.join(ENGINE_MODES)}",
            )
        if not isinstance(self.jobs, int) or self.jobs < 1:
            raise JobSpecError("jobs", f"must be an int >= 1, got {self.jobs!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise JobSpecError(
                "timeout", f"must be positive seconds, got {self.timeout!r}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise JobSpecError(
                "deadline_s",
                f"must be positive seconds, got {self.deadline_s!r}",
            )
        if self.max_attempts is not None and (
            not isinstance(self.max_attempts, int) or self.max_attempts < 1
        ):
            raise JobSpecError(
                "max_attempts", f"must be an int >= 1, got {self.max_attempts!r}"
            )
        if self.faults:
            from repro.faults import plan_from_spec

            try:
                plan = plan_from_spec(self.faults, time_scale=1.0)
            except ConfigurationError as err:
                raise JobSpecError("faults", str(err)) from None
            if plan.max_rank() >= min(self.ranks):
                raise JobSpecError(
                    "faults",
                    f"plan references rank {plan.max_rank()} but the "
                    f"smallest swept rank count is {min(self.ranks)}",
                )
        try:
            name, _options = parse_executor_spec(self.executor)
        except ConfigurationError as err:
            raise JobSpecError("executor", str(err)) from None
        # Cross-field rules — previously unchecked anywhere, so e.g.
        # `repro study --jobs 1 --executor distributed` would quietly run
        # its fallback path serially in-process, losing supervision.
        if name == "serial" and self.jobs > 1:
            raise JobSpecError(
                "jobs/executor",
                f"the serial executor runs in-process; jobs={self.jobs} "
                "has no effect — drop jobs or use executor='local'",
            )
        if name == "serial" and self.timeout is not None:
            raise JobSpecError(
                "timeout/executor",
                "per-cell timeouts need process isolation; the serial "
                "executor cannot enforce them — drop timeout or use "
                "executor='local'",
            )
        if name == "distributed" and self.jobs < 2:
            raise JobSpecError(
                "jobs/executor",
                "the distributed executor needs jobs >= 2 to size its "
                "local fallback pool; with jobs=1 a lost worker fleet "
                "would degrade to unsupervised serial execution — set "
                "jobs >= 2 or use executor='local'",
            )
        return self

    # ------------------------------------------------------------------
    # Construction from the three front doors.
    # ------------------------------------------------------------------
    @classmethod
    def from_cli_args(cls, args: Any) -> "JobSpec":
        """Normalize a ``repro study`` argparse namespace into a spec.

        Folds the historical ``--bind``/``--lease`` side channels into
        the canonical executor spec string (they only apply to the
        distributed backend, matching the old CLI behaviour).
        """
        from repro.parallel.executor import (
            format_executor_spec,
            parse_executor_spec,
        )

        try:
            name, options = parse_executor_spec(args.executor)
        except ConfigurationError as err:
            raise JobSpecError("executor", str(err)) from None
        if name == "distributed":
            bind = getattr(args, "bind", None)
            lease = getattr(args, "lease", None)
            if bind is not None:
                options.setdefault("bind", bind)
            if lease is not None:
                options.setdefault("lease", lease)
        return cls(
            source=SourceSpec(
                molecule=args.molecule,
                size=args.size,
                block_size=args.block_size,
                tau=args.tau,
                seed=args.seed,
            ),
            models=tuple(args.models),
            ranks=tuple(args.ranks),
            machine=args.machine,
            seed=args.seed,
            faults=args.faults or "",
            executor=format_executor_spec(name, options),
            engine=getattr(args, "engine", "auto") or "auto",
            jobs=args.jobs,
            timeout=args.timeout,
            deadline_s=getattr(args, "deadline", None),
            max_attempts=args.max_attempts,
            cache=not args.no_cache,
            cache_dir=args.cache_dir or "",
            artifact_cache=args.artifact_cache,
        )

    @classmethod
    def from_json(cls, payload: "str | bytes | dict[str, Any]") -> "JobSpec":
        """Parse the wire/disk form produced by :meth:`to_json`.

        Unknown top-level keys are rejected (a typo'd field silently
        defaulting is exactly the failure mode this class exists to
        kill); a missing/foreign version is rejected the same way.
        """
        if isinstance(payload, (str, bytes)):
            try:
                payload = json.loads(payload)
            except json.JSONDecodeError as err:
                raise JobSpecError("body", f"not valid JSON: {err}") from None
        if not isinstance(payload, dict):
            raise JobSpecError("body", f"expected a JSON object, got {type(payload).__name__}")
        data = dict(payload)
        version = data.pop("v", JOBSPEC_VERSION)
        if version != JOBSPEC_VERSION:
            raise JobSpecError(
                "v", f"unsupported spec version {version!r} (this build "
                f"speaks v{JOBSPEC_VERSION})"
            )
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = sorted(set(data) - known)
        if unknown:
            raise JobSpecError(
                unknown[0], f"unknown field (known: {', '.join(sorted(known))})"
            )
        source = data.pop("source", None)
        if source is not None:
            if not isinstance(source, dict):
                raise JobSpecError("source", "must be a JSON object")
            src_known = {f.name for f in SourceSpec.__dataclass_fields__.values()}  # type: ignore[attr-defined]
            src_unknown = sorted(set(source) - src_known)
            if src_unknown:
                raise JobSpecError(
                    f"source.{src_unknown[0]}",
                    f"unknown field (known: {', '.join(sorted(src_known))})",
                )
            try:
                data["source"] = SourceSpec(**source)
            except TypeError as err:
                raise JobSpecError("source", str(err)) from None
        try:
            return cls(**data)
        except TypeError as err:
            raise JobSpecError("body", str(err)) from None

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready dict; ``from_json(to_json())`` round-trips exactly."""
        data = asdict(self)
        data["models"] = list(self.models)
        data["ranks"] = list(self.ranks)
        return {"v": JOBSPEC_VERSION, **data}

    def dumps(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    # ------------------------------------------------------------------
    # Identity.
    # ------------------------------------------------------------------
    def job_key(self) -> str:
        """The content address of *what this spec computes*.

        Only result-determining fields participate (plus the sweep
        cache's code-version salt, so a simulator-semantics bump retires
        stale identities along with stale cells). Execution knobs are
        excluded on purpose: ``executor="serial"`` and
        ``executor="local"`` produce bit-for-bit identical rows, so they
        must dedupe onto the same job.
        """
        from repro.core.cache import CACHE_SALT, fingerprint

        return fingerprint(
            {
                "salt": CACHE_SALT,
                "kind": "jobspec-v1",
                "source": self.source,
                "models": self.models,
                "ranks": self.ranks,
                "machine": self.machine,
                "seed": self.seed,
                "faults": self.faults,
            }
        )

    # ------------------------------------------------------------------
    # Materialization: the spec -> the live objects the sweep needs.
    # ------------------------------------------------------------------
    def fault_time_scale(self, problem: Any) -> float:
        """Seconds per unit of fault-spec time for ``problem``.

        The estimated ideal makespan at the smallest swept rank count
        (total work spread perfectly over P nominal-speed ranks), so
        ``crash:2@0.3`` means "rank 2 dies about 30% into the run".
        """
        from repro.core.config import MACHINE_PRESETS

        machine = MACHINE_PRESETS[self.machine](min(self.ranks))
        return problem.graph.total_flops / (
            machine.flops_per_second * min(self.ranks)
        )

    def fault_plan(self, problem: Any) -> Any:
        """The scaled :class:`~repro.faults.FaultPlan` for ``problem``.

        Crash/stall times in the spec are fractions of the estimated
        ideal makespan at the smallest swept rank count — identical math
        to ``repro study --faults``, now owned by the spec so the CLI
        and the service cannot drift.
        """
        if not self.faults:
            return None
        from repro.faults import plan_from_spec

        return plan_from_spec(
            self.faults, time_scale=self.fault_time_scale(problem)
        )

    def study_config(self, problem: Any) -> Any:
        """The :class:`~repro.core.config.StudyConfig` for ``problem``."""
        from repro.core.config import StudyConfig

        return StudyConfig(
            models=self.models,
            n_ranks=self.ranks,
            machine=self.machine,
            seed=self.seed,
            faults=self.fault_plan(problem),
        )

    def retry_policy(self) -> Any:
        """The host retry policy (None = the sweep's default)."""
        if self.max_attempts is None:
            return None
        from repro.parallel.supervisor import HOST_RETRY_POLICY

        return replace(HOST_RETRY_POLICY, max_attempts=self.max_attempts)

    def with_overrides(self, **changes: Any) -> "JobSpec":
        """A copy with execution fields replaced (dataclass replace)."""
        return replace(self, **changes)
