"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[dict[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in cells)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_failures(failures: Iterable[Any], title: str = "quarantined cells") -> str:
    """Render quarantined sweep cells (``CellFailure``) as a table.

    One row per failed cell: its label, attempts consumed, and the final
    error. The sweep records these instead of aborting; this renderer is
    how the CLI surfaces them next to the (partial) result table.
    """
    rows = [
        {
            "cell": f.label,
            "attempts": f.attempts,
            "error": f.error_type,
            "message": f.message,
        }
        for f in failures
    ]
    return format_table(rows, title=title)
