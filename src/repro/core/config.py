"""Study configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exec_models.registry import MODEL_NAMES
from repro.faults import FaultPlan
from repro.simulate.machine import (
    MachineSpec,
    commodity_cluster,
    fast_network_cluster,
)
from repro.simulate.network import NetworkModel
from repro.simulate.noise import VariabilityModel
from repro.util import ConfigurationError

def _smp16(n_ranks: int) -> MachineSpec:
    """Commodity interconnect between 16-core SMP nodes."""
    return MachineSpec(
        n_ranks=n_ranks, network=NetworkModel(), cores_per_node=16
    )


MACHINE_PRESETS: dict[str, Callable[[int], MachineSpec]] = {
    "commodity": commodity_cluster,
    "fast_network": fast_network_cluster,
    "smp16": _smp16,
}


@dataclass(frozen=True)
class StudyConfig:
    """One experiment sweep: models x rank counts on a fixed workload.

    Attributes:
        models: execution-model registry names (see
            :data:`repro.exec_models.MODEL_NAMES`).
        n_ranks: rank counts to sweep.
        machine: machine preset name (``"commodity"`` or ``"fast_network"``).
        seed: base seed; each (model, P) cell derives its own stream.
        variability: optional variability model applied to every machine.
        faults: optional fault plan injected into every run (E16). An
            empty plan is inert; a plan referencing ranks beyond the
            smallest swept rank count fails at run time.
    """

    models: tuple[str, ...] = ("static_block", "counter_dynamic", "work_stealing")
    n_ranks: tuple[int, ...] = (16, 64)
    machine: str = "commodity"
    seed: int = 0
    variability: VariabilityModel | None = None
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if not self.models:
            raise ConfigurationError("models must be non-empty")
        for name in self.models:
            if name not in MODEL_NAMES:
                raise ConfigurationError(
                    f"unknown model {name!r}; known: {', '.join(MODEL_NAMES)}"
                )
        if not self.n_ranks or any(p <= 0 for p in self.n_ranks):
            raise ConfigurationError("n_ranks must be non-empty positive integers")
        if self.machine not in MACHINE_PRESETS:
            raise ConfigurationError(
                f"unknown machine preset {self.machine!r}; "
                f"known: {', '.join(MACHINE_PRESETS)}"
            )

    def machine_for(self, n_ranks: int) -> MachineSpec:
        spec = MACHINE_PRESETS[self.machine](n_ranks)
        if self.variability is not None:
            spec = spec.with_variability(self.variability)
        return spec
