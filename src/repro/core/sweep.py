"""Parallel sweep orchestration: caching, supervision, checkpointing.

The paper's claims are all *sweep-shaped*: model x rank-count x machine x
granularity grids of independent simulation cells. This module is the
scheduler for that meta-workload — the same leverage the task runtimes
under study get from independent work units, applied to the study driver
itself:

- :class:`SweepCell` — one cell: a model (or SCF-simulation discipline)
  on one task graph, machine, seed, and fault plan. Cells are frozen,
  picklable, and content-addressable.
- :class:`SweepRunner` — expands a :class:`~repro.core.config.StudyConfig`
  (or an explicit list of cells) into jobs, serves already-computed cells
  from a :class:`~repro.core.cache.ResultCache`, and fans the rest out
  across *supervised* worker processes
  (:func:`repro.parallel.supervised_imap`): per-cell wall-clock
  timeouts, crash detection and worker respawn, bounded retry with
  backoff, and poison-cell quarantine
  (:class:`~repro.parallel.CellFailure`).
- an optional durable checkpoint journal
  (:class:`~repro.core.journal.SweepJournal`): every completed cell is
  fsynced to an append-only JSONL log, so an interrupted sweep resumes
  (``resume=True`` / ``python -m repro study --resume``) recomputing
  only unfinished cells.

Determinism guarantees (tested): cell seeds are derived exactly as the
serial study driver derives them, simulation never reads the wall clock,
and cached results pickle round-trip bit-for-bit — so serial, parallel,
cold, warm, chaos-disturbed, and resumed sweeps all produce identical
:class:`~repro.core.results.StudyReport` rows.
"""

from __future__ import annotations

import contextlib
import pathlib
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

from repro.core.cache import CACHE_SALT, ResultCache, cache_key, fingerprint
from repro.core.config import StudyConfig
from repro.core.journal import JournalEntry, SweepJournal, deferred_signals
from repro.core.results import StudyReport
from repro.chemistry.tasks import TaskGraph
from repro.faults import FaultPlan, RetryPolicy
from repro.parallel.executor import CellExecutor, make_executor
from repro.parallel.supervisor import (
    HOST_RETRY_POLICY,
    CellFailure,
    SupervisorStats,
)
from repro.simulate.machine import MachineSpec
from repro.util import ConfigurationError, derive_seed

#: Cell kinds the orchestrator knows how to execute.
CELL_KINDS = ("model", "scf_sim", "persistence")


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    Attributes:
        model: registry model name (``kind="model"``), ScfSimulation mode
            (``kind="scf_sim"``), or ignored (``kind="persistence"``).
        graph: the task graph to schedule.
        machine: the simulated cluster (carries rank count, network,
            variability).
        seed: the cell's own seed (already derived; the runner does not
            re-derive).
        faults: optional fault plan (``kind="model"`` only).
        trace_intervals: keep raw trace intervals (timeline rendering).
        kind: one of :data:`CELL_KINDS`.
        options: extra model/simulation options as a sorted tuple of
            ``(name, value)`` pairs — tuple, not dict, so the cell stays
            hashable and its fingerprint is order-independent.
        tag: caller's display/bookkeeping label (defaults to ``model``).
    """

    model: str
    graph: TaskGraph
    machine: MachineSpec
    seed: int = 0
    faults: FaultPlan | None = None
    trace_intervals: bool = False
    kind: str = "model"
    options: tuple[tuple[str, Any], ...] = ()
    tag: str = ""

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ConfigurationError(
                f"cell kind must be one of {CELL_KINDS}, got {self.kind!r}"
            )
        if self.options != tuple(sorted(self.options)):
            object.__setattr__(self, "options", tuple(sorted(self.options)))

    @property
    def label(self) -> str:
        base = self.tag or self.model
        return f"{base}@P={self.machine.n_ranks}"


def execute_cell(cell: SweepCell) -> Any:
    """Run one cell to completion (in-process; also the worker entry)."""
    from repro.parallel.shm import GraphHandle, attach_graph

    if isinstance(cell.graph, GraphHandle):
        # Zero-copy handoff: the runner shipped a shared-memory handle
        # instead of the pickled graph; resolve it (cached per process).
        cell = replace(cell, graph=attach_graph(cell.graph))
    options = dict(cell.options)
    if cell.kind == "model":
        from repro.exec_models.registry import make_model

        model = make_model(cell.model, **options)
        return model.run(
            cell.graph,
            cell.machine,
            seed=cell.seed,
            trace_intervals=cell.trace_intervals,
            faults=cell.faults,
        )
    if cell.kind == "scf_sim":
        from repro.exec_models.scf_simulation import ScfSimulation

        n_iterations = options.pop("n_iterations", 5)
        sim = ScfSimulation(cell.model, **options)
        return sim.run(cell.graph, cell.machine, n_iterations=n_iterations, seed=cell.seed)
    # kind == "persistence" (validated at construction)
    from repro.exec_models.persistence import run_persistence

    return run_persistence(cell.graph, cell.machine, seed=cell.seed, **options)


@dataclass
class SweepProgress:
    """One progress event handed to the runner's ``progress`` callback."""

    status: str  #: "cached" | "resumed" | "done" | "failed"
    label: str  #: the cell's display label
    completed: int  #: cells finished so far (cached + resumed + computed)
    cached: int  #: of those, served from cache or journal resume
    running: int  #: cells still outstanding
    total: int  #: cells in this sweep


def print_progress(event: SweepProgress) -> None:
    """A ready-made ``progress`` callback: one line per finished cell."""
    print(
        f"[{event.completed}/{event.total}] {event.status:>7} {event.label}"
        f"  ({event.cached} cached, {event.running} running)",
        flush=True,
    )


@dataclass
class SweepStats:
    """Cumulative cell accounting across a runner's lifetime."""

    cells: int = 0  #: cells settled (cached + resumed + computed + failed)
    cached: int = 0  #: served from the result cache
    resumed: int = 0  #: restored from the checkpoint journal
    computed: int = 0  #: executed this session
    failed: int = 0  #: quarantined after exhausting retries
    shm_graphs: int = 0  #: distinct graphs published to shared memory

    @property
    def hit_rate(self) -> float:
        return self.cached / self.cells if self.cells else 0.0


def study_cells(config: StudyConfig, graph: TaskGraph) -> list[SweepCell]:
    """Expand a study grid into cells, in the serial driver's order.

    Seed derivation (``derive_seed(seed, "study", model, P)``) matches
    :func:`repro.core.study.run_study` exactly, so sweep results are
    bit-for-bit the serial driver's results.
    """
    return [
        SweepCell(
            model=model_name,
            graph=graph,
            machine=config.machine_for(n_ranks),
            seed=derive_seed(config.seed, "study", model_name, n_ranks),
            faults=config.faults,
            tag=model_name,
        )
        for n_ranks in config.n_ranks
        for model_name in config.models
    ]


class SweepRunner:
    """Executes sweep cells with caching, supervision, and checkpointing.

    Args:
        jobs: worker processes for cache-miss cells (1 = in-process
            serial; the simulator is deterministic, so results are
            identical either way).
        cache: a :class:`ResultCache`, a directory path for one, or None
            to disable caching entirely.
        progress: callback receiving :class:`SweepProgress` events (e.g.
            :func:`print_progress`); None = silent.
        salt: cache-key code-version salt (tests override it to model
            invalidation).
        timeout: per-cell wall-clock budget in seconds for worker
            execution (``jobs > 1`` only — a hung cell's worker is
            SIGKILLed and the cell retried); None disables.
        retry: host-level retry policy for failed/crashed/timed-out
            cells (:data:`~repro.parallel.HOST_RETRY_POLICY` default).
        on_error: ``"raise"`` (default) re-raises a cell's final failure
            (as :class:`~repro.parallel.WorkerError` from workers);
            ``"quarantine"`` records a
            :class:`~repro.parallel.CellFailure` in the results instead,
            so one poison cell cannot abort the sweep.
        journal: checkpoint journal — a :class:`SweepJournal`, a
            ``*.jsonl`` file path, or a directory (one journal per sweep
            grid is derived inside it); None disables checkpointing.
        resume: replay the journal before executing: cells already
            recorded as done are restored from the result store and only
            the rest run. Requires ``journal``.
        cell_fn: the worker entry (default :func:`execute_cell`). Must
            compute exactly what ``execute_cell`` computes — this hook
            exists for wrappers that add host-fault injection or
            instrumentation around the same computation (chaos harness).
        executor: how cache-miss cells execute — a
            :class:`~repro.parallel.CellExecutor` instance or an executor
            spec string (``"local"`` forked supervised pool, the default;
            ``"serial"`` in-process; ``"distributed?bind=..."`` leased
            TCP workers — see :func:`repro.parallel.make_executor` /
            :func:`repro.parallel.parse_executor_spec`). Every backend
            shares the same retry/quarantine semantics, so results are
            identical across executors.
        on_result: callback receiving every *settled* cell as it lands,
            in completion order: ``on_result(index, cell, key, outcome,
            how)`` where ``key`` is the cell's content address (None
            when neither cache nor journal is configured), ``outcome``
            is the result or a :class:`~repro.parallel.CellFailure`, and
            ``how`` is ``"cached" | "resumed" | "fresh" | "failed"``.
            Unlike ``progress`` it carries the actual result — this is
            the streaming hook the job service uses to emit rows while a
            sweep is still running. An exception raised by the callback
            aborts the sweep (completed cells stay journaled).
        deadline: absolute ``time.monotonic()`` instant past which no
            further cell may run. Enforced by the executor (the local
            backend kills in-flight cells; serial and distributed stop
            between cells); expired cells settle as ``CellFailure`` with
            ``error_type="DeadlineExceeded"`` (quarantine mode) or raise
            a :class:`~repro.parallel.WorkerError`. Journaled progress
            is preserved, so a deadline-expired sweep resumes cleanly.
            None disables.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | str | Any | None = None,
        progress: Callable[[SweepProgress], None] | None = None,
        salt: str = CACHE_SALT,
        *,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
        on_error: str = "raise",
        journal: SweepJournal | str | Any | None = None,
        resume: bool = False,
        cell_fn: Callable[[SweepCell], Any] | None = None,
        executor: CellExecutor | str = "local",
        on_result: Callable[[int, SweepCell, str | None, Any, str], None]
        | None = None,
        deadline: float | None = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if resume and journal is None:
            raise ConfigurationError(
                "resume=True requires a journal (a SweepJournal, file, or "
                "directory) to replay"
            )
        self.jobs = int(jobs)
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.progress = progress
        self.salt = salt
        self.timeout = timeout
        self.retry = retry if retry is not None else HOST_RETRY_POLICY
        self.on_error = on_error
        self.journal = journal
        self.resume = resume
        self.cell_fn = cell_fn if cell_fn is not None else execute_cell
        self.executor = make_executor(executor)
        self.on_result = on_result
        self.deadline = deadline
        self.stats = SweepStats()
        #: Host-fault accounting from the supervised pool (crashes,
        #: timeouts, retries, quarantines), cumulative over this runner.
        self.supervisor_stats = SupervisorStats()
        #: Provenance ("cached" | "resumed" | "fresh" | "failed" |
        #: "pending") per cell of the *last* run_cells call, in cell
        #: order. "pending" appears only when the sweep was interrupted.
        self.last_provenance: list[str] = []
        #: Quarantined cells of the last run_cells call.
        self.last_failures: list[CellFailure] = []
        self._graph_fps: dict[int, tuple[TaskGraph, str]] = {}

    # ------------------------------------------------------------------
    def _graph_fingerprint(self, graph: TaskGraph) -> str:
        """Fingerprint a graph, memoized by identity within this runner."""
        entry = self._graph_fps.get(id(graph))
        if entry is not None and entry[0] is graph:
            return entry[1]
        fp = fingerprint(graph)
        self._graph_fps[id(graph)] = (graph, fp)
        return fp

    def cell_key(self, cell: SweepCell) -> str:
        """The content address of one cell under this runner's salt."""
        return cache_key(
            graph_fp=self._graph_fingerprint(cell.graph),
            machine_fp=fingerprint(cell.machine),
            model=cell.model,
            seed=cell.seed,
            faults_fp=fingerprint(cell.faults),
            kind=cell.kind,
            options_fp=fingerprint(cell.options),
            trace_intervals=cell.trace_intervals,
            salt=self.salt,
        )

    # ------------------------------------------------------------------
    def _publish_graphs(
        self, jobs: list[SweepCell], published: list[Any]
    ) -> list[SweepCell]:
        """Swap large graphs for shared-memory handles in worker jobs.

        Each distinct publishable graph (by identity) is published once;
        ``published`` receives the parent-side ownership records so
        ``run_cells`` can unlink the segments when the sweep settles.
        Publication failure (e.g. no usable /dev/shm) degrades silently
        to the ordinary pickled-graph path.
        """
        from repro.parallel.shm import publish_graph, publishable

        handles: dict[int, Any] = {}
        out: list[SweepCell] = []
        for cell in jobs:
            graph = cell.graph
            handle = handles.get(id(graph))
            if handle is None and publishable(graph):
                try:
                    pub = publish_graph(graph)
                except OSError:
                    handles[id(graph)] = False
                else:
                    published.append(pub)
                    self.stats.shm_graphs += 1
                    handle = handles[id(graph)] = pub.handle
            out.append(replace(cell, graph=handle) if handle else cell)
        return out

    # ------------------------------------------------------------------
    def _journal_for(self, keys: Sequence[str]) -> SweepJournal | None:
        """Resolve the journal spec against this sweep's cell keys."""
        if self.journal is None:
            return None
        if isinstance(self.journal, SweepJournal):
            return self.journal
        path = pathlib.Path(self.journal)
        if path.suffix == ".jsonl":
            return SweepJournal(path)
        return SweepJournal.for_sweep(path, keys)

    def _store_for(self, journal: SweepJournal | None) -> ResultCache | None:
        """Where durable results live: the cache, or a journal sidecar."""
        if self.cache is not None:
            return self.cache
        if journal is not None:
            return ResultCache(journal.path.parent / "objects")
        return None

    # ------------------------------------------------------------------
    def run_cells(self, cells: Sequence[SweepCell]) -> list[Any]:
        """Execute every cell (journal/cache-first), returning results in
        cell order; quarantined cells yield a
        :class:`~repro.parallel.CellFailure` in place of a result.

        Progress, provenance, and :class:`SweepStats` are flushed in a
        ``finally`` block, so an interrupted or failed sweep still
        reports the cells that did complete (``last_provenance`` marks
        unfinished cells ``"pending"``).
        """
        cells = list(cells)
        total = len(cells)
        results: list[Any] = [None] * total
        provenance = ["pending"] * total
        settled = {"cached": 0, "resumed": 0, "computed": 0, "failed": 0}
        completed = 0

        need_keys = self.cache is not None or self.journal is not None
        keys: list[str | None] = [
            self.cell_key(cell) if need_keys else None for cell in cells
        ]
        journal = self._journal_for([k for k in keys if k is not None])
        store = self._store_for(journal)
        journaled: dict[str, JournalEntry] = {}
        if journal is not None:
            if self.resume:
                journaled = journal.load()
                # A long-lived journal (service state dirs replay the
                # same grids many times) accumulates superseded and
                # foreign-grid lines; rewrite it down to this sweep's
                # own entries once it crosses the size threshold.
                journal.compact(k for k in keys if k is not None)
            else:
                journal.rotate()

        def emit(status: str, index: int) -> None:
            if self.progress is not None:
                self.progress(
                    SweepProgress(
                        status=status,
                        label=cells[index].label,
                        completed=completed,
                        cached=settled["cached"] + settled["resumed"],
                        running=total - completed,
                        total=total,
                    )
                )

        misses: list[int] = []
        published: list[Any] = []
        try:
            for index, cell in enumerate(cells):
                key = keys[index]
                hit = None
                how = ""
                if key is not None:
                    entry = journaled.get(key)
                    if (
                        entry is not None
                        and entry.status == "done"
                        and store is not None
                    ):
                        hit = store.get(key)
                        how = "resumed"
                    if hit is None and self.cache is not None:
                        hit = self.cache.get(key)
                        how = "cached"
                if hit is None:
                    misses.append(index)
                    continue
                results[index] = hit
                provenance[index] = how
                settled[how] += 1
                completed += 1
                if self.on_result is not None:
                    self.on_result(index, cell, key, hit, how)
                emit(how, index)

            if misses:
                jobs = [cells[index] for index in misses]
                labels = [cells[index].label for index in misses]
                if self.jobs > 1 and self.executor.graph_handoff == "shm":
                    # Zero-copy handoff: publish each distinct large graph
                    # to shared memory once and ship workers a GraphHandle
                    # instead of re-pickling the graph per dispatch. Only
                    # the local forked backend can attach these segments;
                    # the distributed backend ships its own content-keyed
                    # graph references instead (graph_handoff == "ref").
                    jobs = self._publish_graphs(jobs, published)
                # Hold SIGINT/SIGTERM across the store-write +
                # journal-append pair so the journal never names a result
                # that didn't land (no-op guard when not checkpointing).
                guard = deferred_signals if journal is not None else contextlib.nullcontext
                for position, outcome in self.executor.run(
                    self.cell_fn,
                    jobs,
                    n_workers=self.jobs,
                    timeout=self.timeout,
                    retry=self.retry,
                    on_error=self.on_error,
                    labels=labels,
                    stats=self.supervisor_stats,
                    deadline=self.deadline,
                ):
                    index = misses[position]
                    key = keys[index]
                    with guard():
                        if isinstance(outcome, CellFailure):
                            results[index] = outcome
                            provenance[index] = "failed"
                            settled["failed"] += 1
                            if journal is not None and key is not None:
                                journal.append(
                                    JournalEntry(
                                        key=key,
                                        label=cells[index].label,
                                        status="failed",
                                        attempts=outcome.attempts,
                                        error=f"{outcome.error_type}: "
                                        f"{outcome.message}",
                                    )
                                )
                        else:
                            results[index] = outcome
                            provenance[index] = "fresh"
                            settled["computed"] += 1
                            if store is not None and key is not None:
                                store.put(key, outcome)
                            if journal is not None and key is not None:
                                journal.append(
                                    JournalEntry(
                                        key=key,
                                        label=cells[index].label,
                                        status="done",
                                        result_path=str(store.path_for(key))
                                        if store is not None
                                        else "",
                                    )
                                )
                        completed += 1
                    if self.on_result is not None:
                        self.on_result(
                            index,
                            cells[index],
                            key,
                            results[index],
                            provenance[index],
                        )
                    emit(
                        "failed"
                        if isinstance(results[index], CellFailure)
                        else "done",
                        index,
                    )
        finally:
            # The parent owns the shared segments: unlink them now that no
            # worker can still attach (workers hold their own mappings).
            for pub in published:
                pub.close()
            # Flush accounting even when a cell raised or the sweep was
            # interrupted: completed work stays reported and journaled.
            self.stats.cells += completed
            self.stats.cached += settled["cached"]
            self.stats.resumed += settled["resumed"]
            self.stats.computed += settled["computed"]
            self.stats.failed += settled["failed"]
            self.last_provenance = provenance
            self.last_failures = [
                r for r in results if isinstance(r, CellFailure)
            ]
        return results

    def run_study(self, config: StudyConfig, source: Any) -> StudyReport:
        """Run every (model, rank-count) cell of a study through the sweep.

        ``source`` is anything :func:`repro.core.study.resolve_source`
        accepts: a ``Workload``, an ``ScfProblem``, or a ``TaskGraph``.
        Quarantined cells (``on_error="quarantine"``) are collected on
        ``report.failures`` instead of aborting the study.
        """
        from repro.core.study import resolve_source

        graph = resolve_source(source)
        cells = study_cells(config, graph)
        results = self.run_cells(cells)
        report = StudyReport()
        for result, prov in zip(results, self.last_provenance):
            if isinstance(result, CellFailure):
                report.failures.append(result)
                continue
            report.add(result)
            # Provenance is keyed the way StudyReport keys results: by
            # the model's self-reported name, which can differ from the
            # registry name (e.g. "work_stealing(one,random)").
            report.provenance[(result.model, result.n_ranks)] = prov
        return report

    def run_cell(self, cell: SweepCell) -> Any:
        """Convenience: execute a single cell through the cache."""
        return self.run_cells([cell])[0]

    def variant(self, cell: SweepCell, **changes: Any) -> SweepCell:
        """A copy of ``cell`` with fields replaced (dataclass replace)."""
        return replace(cell, **changes)
