"""Parallel sweep orchestration with content-addressed result caching.

The paper's claims are all *sweep-shaped*: model x rank-count x machine x
granularity grids of independent simulation cells. This module is the
scheduler for that meta-workload — the same leverage the task runtimes
under study get from independent work units, applied to the study driver
itself:

- :class:`SweepCell` — one cell: a model (or SCF-simulation discipline)
  on one task graph, machine, seed, and fault plan. Cells are frozen,
  picklable, and content-addressable.
- :class:`SweepRunner` — expands a :class:`~repro.core.config.StudyConfig`
  (or an explicit list of cells) into jobs, serves already-computed cells
  from a :class:`~repro.core.cache.ResultCache`, and fans the rest out
  across forked worker processes (:func:`repro.parallel.parallel_imap`).

Determinism guarantees (tested): cell seeds are derived exactly as the
serial study driver derives them, simulation never reads the wall clock,
and cached results pickle round-trip bit-for-bit — so serial, parallel,
cold, and warm sweeps all produce identical
:class:`~repro.core.results.StudyReport` rows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

from repro.core.cache import CACHE_SALT, ResultCache, cache_key, fingerprint
from repro.core.config import StudyConfig
from repro.core.results import StudyReport
from repro.chemistry.tasks import TaskGraph
from repro.faults import FaultPlan
from repro.parallel.executor import parallel_imap
from repro.simulate.machine import MachineSpec
from repro.util import ConfigurationError, derive_seed

#: Cell kinds the orchestrator knows how to execute.
CELL_KINDS = ("model", "scf_sim", "persistence")


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    Attributes:
        model: registry model name (``kind="model"``), ScfSimulation mode
            (``kind="scf_sim"``), or ignored (``kind="persistence"``).
        graph: the task graph to schedule.
        machine: the simulated cluster (carries rank count, network,
            variability).
        seed: the cell's own seed (already derived; the runner does not
            re-derive).
        faults: optional fault plan (``kind="model"`` only).
        trace_intervals: keep raw trace intervals (timeline rendering).
        kind: one of :data:`CELL_KINDS`.
        options: extra model/simulation options as a sorted tuple of
            ``(name, value)`` pairs — tuple, not dict, so the cell stays
            hashable and its fingerprint is order-independent.
        tag: caller's display/bookkeeping label (defaults to ``model``).
    """

    model: str
    graph: TaskGraph
    machine: MachineSpec
    seed: int = 0
    faults: FaultPlan | None = None
    trace_intervals: bool = False
    kind: str = "model"
    options: tuple[tuple[str, Any], ...] = ()
    tag: str = ""

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ConfigurationError(
                f"cell kind must be one of {CELL_KINDS}, got {self.kind!r}"
            )
        if self.options != tuple(sorted(self.options)):
            object.__setattr__(self, "options", tuple(sorted(self.options)))

    @property
    def label(self) -> str:
        base = self.tag or self.model
        return f"{base}@P={self.machine.n_ranks}"


def execute_cell(cell: SweepCell) -> Any:
    """Run one cell to completion (in-process; also the worker entry)."""
    options = dict(cell.options)
    if cell.kind == "model":
        from repro.exec_models.registry import make_model

        model = make_model(cell.model, **options)
        return model.run(
            cell.graph,
            cell.machine,
            seed=cell.seed,
            trace_intervals=cell.trace_intervals,
            faults=cell.faults,
        )
    if cell.kind == "scf_sim":
        from repro.exec_models.scf_simulation import ScfSimulation

        n_iterations = options.pop("n_iterations", 5)
        sim = ScfSimulation(cell.model, **options)
        return sim.run(cell.graph, cell.machine, n_iterations=n_iterations, seed=cell.seed)
    # kind == "persistence" (validated at construction)
    from repro.exec_models.persistence import run_persistence

    return run_persistence(cell.graph, cell.machine, seed=cell.seed, **options)


@dataclass
class SweepProgress:
    """One progress event handed to the runner's ``progress`` callback."""

    status: str  #: "cached" | "done"
    label: str  #: the cell's display label
    completed: int  #: cells finished so far (cached + computed)
    cached: int  #: of those, served from cache
    running: int  #: cells still outstanding
    total: int  #: cells in this sweep


def print_progress(event: SweepProgress) -> None:
    """A ready-made ``progress`` callback: one line per finished cell."""
    print(
        f"[{event.completed}/{event.total}] {event.status:>6} {event.label}"
        f"  ({event.cached} cached, {event.running} running)",
        flush=True,
    )


@dataclass
class SweepStats:
    """Cumulative cell accounting across a runner's lifetime."""

    cells: int = 0
    cached: int = 0
    computed: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cached / self.cells if self.cells else 0.0


def study_cells(config: StudyConfig, graph: TaskGraph) -> list[SweepCell]:
    """Expand a study grid into cells, in the serial driver's order.

    Seed derivation (``derive_seed(seed, "study", model, P)``) matches
    :func:`repro.core.study.run_study` exactly, so sweep results are
    bit-for-bit the serial driver's results.
    """
    return [
        SweepCell(
            model=model_name,
            graph=graph,
            machine=config.machine_for(n_ranks),
            seed=derive_seed(config.seed, "study", model_name, n_ranks),
            faults=config.faults,
            tag=model_name,
        )
        for n_ranks in config.n_ranks
        for model_name in config.models
    ]


class SweepRunner:
    """Executes sweep cells with caching and optional process fan-out.

    Args:
        jobs: worker processes for cache-miss cells (1 = in-process
            serial; the simulator is deterministic, so results are
            identical either way).
        cache: a :class:`ResultCache`, a directory path for one, or None
            to disable caching entirely.
        progress: callback receiving :class:`SweepProgress` events (e.g.
            :func:`print_progress`); None = silent.
        salt: cache-key code-version salt (tests override it to model
            invalidation).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | str | Any | None = None,
        progress: Callable[[SweepProgress], None] | None = None,
        salt: str = CACHE_SALT,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.progress = progress
        self.salt = salt
        self.stats = SweepStats()
        #: Provenance ("cached" | "fresh") per cell of the *last* run_cells
        #: call, in cell order.
        self.last_provenance: list[str] = []
        self._graph_fps: dict[int, tuple[TaskGraph, str]] = {}

    # ------------------------------------------------------------------
    def _graph_fingerprint(self, graph: TaskGraph) -> str:
        """Fingerprint a graph, memoized by identity within this runner."""
        entry = self._graph_fps.get(id(graph))
        if entry is not None and entry[0] is graph:
            return entry[1]
        fp = fingerprint(graph)
        self._graph_fps[id(graph)] = (graph, fp)
        return fp

    def cell_key(self, cell: SweepCell) -> str:
        """The content address of one cell under this runner's salt."""
        return cache_key(
            graph_fp=self._graph_fingerprint(cell.graph),
            machine_fp=fingerprint(cell.machine),
            model=cell.model,
            seed=cell.seed,
            faults_fp=fingerprint(cell.faults),
            kind=cell.kind,
            options_fp=fingerprint(cell.options),
            trace_intervals=cell.trace_intervals,
            salt=self.salt,
        )

    # ------------------------------------------------------------------
    def run_cells(self, cells: Sequence[SweepCell]) -> list[Any]:
        """Execute every cell (cache-first), returning results in order."""
        cells = list(cells)
        total = len(cells)
        results: list[Any] = [None] * total
        provenance = ["fresh"] * total
        cached_count = 0

        misses: list[int] = []
        keys: list[str | None] = [None] * total
        for index, cell in enumerate(cells):
            if self.cache is not None:
                keys[index] = self.cell_key(cell)
                hit = self.cache.get(keys[index])
                if hit is not None:
                    results[index] = hit
                    provenance[index] = "cached"
                    cached_count += 1
                    continue
            misses.append(index)

        completed = cached_count
        if self.progress is not None:
            for index in range(total):
                if provenance[index] == "cached" and results[index] is not None:
                    self.progress(
                        SweepProgress(
                            status="cached",
                            label=cells[index].label,
                            completed=completed,
                            cached=cached_count,
                            running=len(misses),
                            total=total,
                        )
                    )

        if misses:
            jobs = [cells[index] for index in misses]
            for position, value in parallel_imap(execute_cell, jobs, self.jobs):
                index = misses[position]
                results[index] = value
                if self.cache is not None and keys[index] is not None:
                    self.cache.put(keys[index], value)
                completed += 1
                if self.progress is not None:
                    self.progress(
                        SweepProgress(
                            status="done",
                            label=cells[index].label,
                            completed=completed,
                            cached=cached_count,
                            running=total - completed,
                            total=total,
                        )
                    )

        self.stats.cells += total
        self.stats.cached += cached_count
        self.stats.computed += len(misses)
        self.last_provenance = provenance
        return results

    def run_study(self, config: StudyConfig, source: Any) -> StudyReport:
        """Run every (model, rank-count) cell of a study through the sweep.

        ``source`` is anything :func:`repro.core.study.resolve_source`
        accepts: a ``Workload``, an ``ScfProblem``, or a ``TaskGraph``.
        """
        from repro.core.study import resolve_source

        graph = resolve_source(source)
        cells = study_cells(config, graph)
        results = self.run_cells(cells)
        report = StudyReport()
        for result in results:
            report.add(result)
        # Provenance is keyed the way StudyReport keys results: by the
        # model's self-reported name, which can differ from the registry
        # name (e.g. "work_stealing(one,random)").
        report.provenance = {
            (result.model, result.n_ranks): prov
            for result, prov in zip(results, self.last_provenance)
        }
        return report

    def run_cell(self, cell: SweepCell) -> Any:
        """Convenience: execute a single cell through the cache."""
        return self.run_cells([cell])[0]

    def variant(self, cell: SweepCell, **changes: Any) -> SweepCell:
        """A copy of ``cell`` with fields replaced (dataclass replace)."""
        return replace(cell, **changes)
