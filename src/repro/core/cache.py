"""Content-addressed on-disk cache for sweep cell results.

A sweep cell is a pure function of its inputs: the task graph, the
machine, the model configuration, the seed, and the fault plan — the
simulator has no hidden state and never reads the wall clock. That makes
every cell result cacheable under a *content address*: a stable hash of
the canonical form of all inputs plus a code-version salt. Re-running a
benchmark with unchanged inputs loads the stored result instead of
re-simulating, and the loaded result is bit-for-bit identical to a fresh
computation (pickle round-trips NumPy arrays and Python floats exactly).

Key scheme (see ``docs/sweep.md``):

    sha256(salt | graph fp | machine fp | model + options | seed |
           faults fp | cell kind | trace flag)

where each fingerprint is itself a sha256 over a canonical encoding that
is stable across processes and Python versions: floats are hex-encoded,
sets are sorted, arrays hash their raw bytes, and dataclasses/objects
fold in their class name and field values. ``hash()`` is never used (it
is salted per process).

Invalidation is by *salt*: :data:`CACHE_SALT` must be bumped whenever a
change alters simulation semantics (engine, network, models, seeding).
Stale entries are then simply never addressed again; the directory can be
deleted at any time with no effect other than recomputation.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pathlib
import pickle
import secrets
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any

import numpy as np

#: Code-version salt folded into every cache key. Bump when simulator or
#: execution-model semantics change (anything that would alter a cell's
#: result for identical inputs), so stale entries can never be served.
CACHE_SALT = "repro-sweep-v1"

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """The default on-disk cache location.

    ``$REPRO_CACHE_DIR`` when set, otherwise ``benchmarks/results/cache``
    relative to the current working directory (the layout the benchmark
    suite uses; the directory is git-ignored).
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path("benchmarks") / "results" / "cache"


# ----------------------------------------------------------------------
# Canonical encoding + fingerprints
# ----------------------------------------------------------------------

def _canonical(obj: Any, out: list[str], depth: int = 0) -> None:
    """Append a canonical, process-stable encoding of ``obj`` to ``out``."""
    if depth > 32:
        raise ValueError("fingerprint recursion too deep (cyclic object?)")
    if obj is None or isinstance(obj, (bool, str)):
        out.append(repr(obj))
    elif isinstance(obj, (int, np.integer)):
        out.append(repr(int(obj)))
    elif isinstance(obj, (float, np.floating)):
        out.append(float(obj).hex())
    elif isinstance(obj, bytes):
        out.append("b" + hashlib.sha256(obj).hexdigest())
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        out.append(f"nd{arr.dtype.str}{arr.shape}")
        out.append(hashlib.sha256(arr.tobytes()).hexdigest())
    elif isinstance(obj, (tuple, list)):
        out.append("[")
        for item in obj:
            _canonical(item, out, depth + 1)
        out.append("]")
    elif isinstance(obj, (set, frozenset)):
        out.append("{")
        for item in sorted(obj, key=repr):
            _canonical(item, out, depth + 1)
        out.append("}")
    elif isinstance(obj, dict):
        out.append("<")
        for key in sorted(obj, key=repr):
            _canonical(key, out, depth + 1)
            _canonical(obj[key], out, depth + 1)
        out.append(">")
    elif is_dataclass(obj) and not isinstance(obj, type):
        out.append(f"dc:{type(obj).__module__}.{type(obj).__qualname__}(")
        for f in fields(obj):
            out.append(f.name + "=")
            _canonical(getattr(obj, f.name), out, depth + 1)
        out.append(")")
    elif callable(obj) and hasattr(obj, "__qualname__"):
        out.append(f"fn:{obj.__module__}.{obj.__qualname__}")
    elif hasattr(obj, "__dict__"):
        out.append(f"obj:{type(obj).__module__}.{type(obj).__qualname__}(")
        for key in sorted(vars(obj)):
            out.append(key + "=")
            _canonical(vars(obj)[key], out, depth + 1)
        out.append(")")
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__qualname__!r} deterministically"
        )


def fingerprint(obj: Any) -> str:
    """A sha256 hex digest of ``obj``'s canonical encoding.

    Stable across processes, machines, and Python versions for the
    library's value types (dataclasses, NumPy arrays, plain containers,
    variability/fault models). Two objects with equal canonical content
    share a fingerprint; any semantic difference changes it.
    """
    out: list[str] = []
    _canonical(obj, out)
    return hashlib.sha256("\x1f".join(out).encode("utf-8")).hexdigest()


def cache_key(
    *,
    graph_fp: str,
    machine_fp: str,
    model: str,
    seed: int,
    faults_fp: str,
    kind: str = "model",
    options_fp: str = "",
    trace_intervals: bool = False,
    salt: str = CACHE_SALT,
) -> str:
    """Assemble the content address of one sweep cell."""
    parts = (
        f"salt={salt}",
        f"graph={graph_fp}",
        f"machine={machine_fp}",
        f"model={model}",
        f"seed={int(seed)}",
        f"faults={faults_fp}",
        f"kind={kind}",
        f"options={options_fp}",
        f"trace={bool(trace_intervals)}",
    )
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------

#: Envelope magic written with every entry. ``get`` rejects any payload
#: that is not ``(_ENTRY_MAGIC, key, value)`` with a matching key, so a
#: wrong-schema file (hand-edited, renamed, foreign pickle, JSON text)
#: degrades to a miss instead of returning garbage as a result.
_ENTRY_MAGIC = "repro-cache-entry-v1"

#: Per-process counter distinguishing temp files of concurrent writers in
#: the same process (threads) — pid alone is not unique there.
_tmp_counter = itertools.count()

#: Per-process random token folded into temp names: pids recur across
#: *hosts*, so on a shared filesystem (the distributed sweep fabric)
#: pid+counter alone can collide between writers on different machines.
_writer_token = secrets.token_hex(4)


def atomic_tmp_path(path: pathlib.Path, suffix: str = "") -> pathlib.Path:
    """A collision-free temp path next to ``path`` for atomic replace.

    The single temp-naming scheme for every store in the repo
    (:class:`ResultCache`, :class:`~repro.core.artifacts.ArtifactStore`):
    ``<name>.tmp.<pid>-<token>.<n><suffix>``, unique across threads
    (counter), processes (pid), and hosts sharing a filesystem (random
    per-process token). Write to it, then ``os.replace`` onto ``path``.
    """
    return path.parent / (
        f"{path.name}.tmp.{os.getpid()}-{_writer_token}"
        f".{next(_tmp_counter)}{suffix}"
    )


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """Content-addressed pickle store under one directory.

    Entries are written atomically (temp file + rename), so concurrent
    sweep workers and even concurrent benchmark processes can share one
    cache directory; a torn or corrupt entry reads as a miss and is
    removed. Values round-trip through pickle, which preserves NumPy
    arrays and floats exactly — a cache hit is bit-for-bit identical to
    the fresh computation it replaced.
    """

    root: pathlib.Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = pathlib.Path(self.root)

    def path_for(self, key: str) -> pathlib.Path:
        # Two-level fan-out keeps directory listings manageable.
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any | None:
        """The stored value for ``key``, or None on miss/corruption.

        "Corruption" covers every observed failure shape: a zero-byte or
        truncated entry, non-pickle bytes (e.g. JSON text), a valid
        pickle that is not this cache's ``(magic, key, value)`` envelope,
        and an envelope recorded under the wrong key. All degrade to a
        miss, the offending file is unlinked so it cannot keep failing,
        and the next ``put`` self-heals the entry. ``get`` never raises.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # Torn write, truncation, or an entry from an incompatible
            # code state: treat as a miss and clear it.
            return self._corrupt_miss(path)
        if (
            not isinstance(payload, tuple)
            or len(payload) != 3
            or payload[0] != _ENTRY_MAGIC
            or payload[1] != key
        ):
            return self._corrupt_miss(path)
        self.stats.hits += 1
        return payload[2]

    def _corrupt_miss(self, path: pathlib.Path) -> None:
        self.stats.misses += 1
        self.stats.errors += 1
        try:
            path.unlink()
        except OSError:
            pass
        return None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically.

        Concurrent writers of the same key are safe — including writers
        on *different hosts* sharing the filesystem: each writes its own
        temp file (:func:`atomic_tmp_path`) and the final ``rename`` is
        atomic, so readers only ever observe a complete entry — the last
        rename wins, with identical bytes for identical inputs.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = atomic_tmp_path(path)
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(
                    (_ENTRY_MAGIC, key, value),
                    fh,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp, path)
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        self.stats.stores += 1

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*/*.pkl"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
