"""Content-addressed artifact store for expensive pipeline intermediates.

The result cache (:mod:`repro.core.cache`) memoizes *cell results* — the
output of a whole simulation. This module memoizes the expensive
*intermediates* that feed those cells: Schwarz screening matrices,
task-graph enumerations, Fock hypergraphs, and balancer assignments.
Every one of them is a pure function of content-addressable inputs
(basis, block structure, tolerance, graph, seed), so a serial E1–E16 run
only ever needs to build each distinct workload once — and a warm rerun
not at all.

Two layers, same key:

- an **in-process memo** (always on unless disabled): decoded values
  keyed by sha256 content address, FIFO-bounded. This is what
  deduplicates rebuilds *within* one run.
- an optional **on-disk store** (``root`` directory): NumPy arrays
  persisted via ``np.savez`` — each entry is a zip of plain ``.npy``
  members plus a JSON meta record, loaded with ``allow_pickle=False``
  (no object-graph pickling, by design). This is what makes *reruns*
  warm, including sweep workers in other processes.

Keying composes the same canonical-fingerprint machinery as the result
cache: ``key = sha256(salt | kind | input fingerprints...)``. Corruption
semantics mirror :class:`~repro.core.cache.ResultCache`: a zero-byte,
truncated, foreign, or wrong-key entry degrades to a miss, the file is
unlinked, and the artifact is rebuilt — ``get`` never raises.

Invalidation is by salt (:data:`ARTIFACT_SALT`): bump it whenever a
build's semantics change (screening math, cost model, partitioner
heuristics, RNG consumption), so stale artifacts can never be served.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import pathlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from repro.core.cache import atomic_tmp_path, fingerprint

__all__ = [
    "ARTIFACT_SALT",
    "ARTIFACT_DIR_ENV",
    "ARTIFACT_DISABLE_ENV",
    "ArtifactStats",
    "ArtifactStore",
    "artifact_key",
    "configure_artifacts",
    "default_store",
    "use_store",
]

#: Code-version salt folded into every artifact key. Bump when any
#: producer's semantics change (screening, cost model, partitioner,
#: eligibility RNG), so stale intermediates can never be served.
ARTIFACT_SALT = "repro-artifacts-v1"

#: Environment variable pointing the default store at a directory
#: (enables the on-disk layer).
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"

#: Set to ``0`` to disable artifact memoization entirely.
ARTIFACT_DISABLE_ENV = "REPRO_ARTIFACTS"

#: Envelope magic recorded inside every on-disk entry; entries whose
#: magic or recorded key disagree with their address are rejected.
_ENTRY_MAGIC = "repro-artifact-v1"

#: FIFO bound on in-process memo entries (a workload's decoded graph and
#: hypergraph are a few MB; this keeps worst-case residency modest).
_MEMO_LIMIT = 128



@dataclass
class ArtifactStats:
    """Hit/miss accounting for one :class:`ArtifactStore`."""

    memo_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    @property
    def hits(self) -> int:
        return self.memo_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def artifact_key(kind: str, *parts: Any, salt: str = ARTIFACT_SALT) -> str:
    """Content address of one artifact: sha256(salt | kind | inputs).

    Each part is folded in as-is when it is already a string (callers
    pass precomputed fingerprints for big inputs) and through
    :func:`~repro.core.cache.fingerprint` otherwise.
    """
    folded = [f"salt={salt}", f"kind={kind}"]
    for part in parts:
        folded.append(part if isinstance(part, str) else fingerprint(part))
    return hashlib.sha256("|".join(folded).encode("utf-8")).hexdigest()


class ArtifactStore:
    """Two-layer (memo + optional disk) content-addressed artifact store.

    Args:
        root: directory for the on-disk layer; None = in-process only.
        salt: key salt (tests override to model invalidation).
        memo_limit: FIFO bound on decoded in-process entries.
    """

    def __init__(
        self,
        root: pathlib.Path | str | None = None,
        *,
        salt: str = ARTIFACT_SALT,
        memo_limit: int = _MEMO_LIMIT,
    ) -> None:
        self.root = pathlib.Path(root) if root is not None else None
        self.salt = salt
        self.memo_limit = int(memo_limit)
        self.stats = ArtifactStats()
        self._memo: OrderedDict[str, Any] = OrderedDict()

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    def key(self, kind: str, *parts: Any) -> str:
        return artifact_key(kind, *parts, salt=self.salt)

    def path_for(self, key: str) -> pathlib.Path:
        if self.root is None:
            raise ValueError("store has no on-disk root")
        # Same two-level fan-out as ResultCache.
        return self.root / key[:2] / f"{key}.npz"

    # ------------------------------------------------------------------
    # In-process memo layer
    # ------------------------------------------------------------------
    def _memo_put(self, key: str, value: Any) -> None:
        self._memo[key] = value
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_limit:
            self._memo.popitem(last=False)

    # ------------------------------------------------------------------
    # On-disk layer
    # ------------------------------------------------------------------
    def get_arrays(
        self, key: str
    ) -> tuple[dict[str, np.ndarray], dict[str, Any]] | None:
        """Load one on-disk entry: ``(arrays, meta)`` or None on miss.

        Every corruption shape — zero-byte, truncated, non-zip bytes, a
        foreign archive without the envelope, an entry copied under the
        wrong key — degrades to a miss and unlinks the file. Never raises.
        """
        if self.root is None:
            return None
        path = self.path_for(key)
        try:
            with np.load(path, allow_pickle=False) as npz:
                header = json.loads(bytes(npz["__meta__"]).decode("utf-8"))
                if (
                    header.get("magic") != _ENTRY_MAGIC
                    or header.get("key") != key
                ):
                    return self._corrupt_miss(path)
                arrays = {
                    name: npz[name] for name in npz.files if name != "__meta__"
                }
        except FileNotFoundError:
            return None
        except Exception:
            return self._corrupt_miss(path)
        return arrays, header.get("meta", {})

    def _corrupt_miss(self, path: pathlib.Path) -> None:
        self.stats.errors += 1
        try:
            path.unlink()
        except OSError:
            pass
        return None

    def put_arrays(
        self, key: str, arrays: dict[str, np.ndarray], meta: dict[str, Any] | None = None
    ) -> None:
        """Persist ``arrays`` (+ JSON-able ``meta``) atomically under ``key``."""
        if self.root is None:
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = json.dumps({"magic": _ENTRY_MAGIC, "key": key, "meta": meta or {}})
        payload = dict(arrays)
        payload["__meta__"] = np.frombuffer(header.encode("utf-8"), dtype=np.uint8)
        buf = io.BytesIO()
        np.savez(buf, **payload)
        # Same collision-free temp-name scheme as ResultCache.put(), so
        # concurrent writers — threads, processes, or remote workers on a
        # shared filesystem — can never collide on a temp path.
        tmp = atomic_tmp_path(path, suffix=".npz")
        try:
            tmp.write_bytes(buf.getvalue())
            os.replace(tmp, path)
        finally:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
        self.stats.stores += 1

    # ------------------------------------------------------------------
    # The full protocol
    # ------------------------------------------------------------------
    def fetch(
        self,
        key: str,
        build: Callable[[], Any],
        *,
        encode: Callable[[Any], tuple[dict[str, np.ndarray], dict[str, Any]]] | None = None,
        decode: Callable[[dict[str, np.ndarray], dict[str, Any]], Any] | None = None,
        copy_on_hit: Callable[[Any], Any] | None = None,
    ) -> Any:
        """Return the artifact at ``key``, building it at most once.

        Lookup order: in-process memo, then disk (when ``decode`` is
        given and the store has a root), then ``build()`` — storing the
        result in both layers (disk needs ``encode``). ``copy_on_hit``
        post-processes memoized values for callers that may mutate them
        (e.g. assignments return a fresh copy per call).
        """
        hit = self._memo.get(key)
        if hit is not None:
            self.stats.memo_hits += 1
            return copy_on_hit(hit) if copy_on_hit is not None else hit
        if decode is not None:
            entry = self.get_arrays(key)
            if entry is not None:
                value = decode(entry[0], entry[1])
                self.stats.disk_hits += 1
                self._memo_put(key, value)
                return copy_on_hit(value) if copy_on_hit is not None else value
        self.stats.misses += 1
        value = build()
        self._memo_put(key, value)
        if encode is not None and self.root is not None:
            arrays, meta = encode(value)
            self.put_arrays(key, arrays, meta)
        return copy_on_hit(value) if copy_on_hit is not None else value

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self.root is None or not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.npz"))

    def clear(self) -> int:
        """Drop the memo and delete every on-disk entry."""
        removed = len(self._memo)
        self._memo.clear()
        if self.root is not None and self.root.is_dir():
            for entry in self.root.glob("*/*.npz"):
                with contextlib.suppress(OSError):
                    entry.unlink()
                    removed += 1
        return removed


# ----------------------------------------------------------------------
# The process-global default store
# ----------------------------------------------------------------------
_default: ArtifactStore | None = None
_configured = False


def default_store() -> ArtifactStore | None:
    """The process-global store, or None when memoization is disabled.

    Unconfigured processes get a store honoring the environment:
    ``REPRO_ARTIFACTS=0`` disables, ``REPRO_ARTIFACT_DIR`` adds the
    on-disk layer, otherwise in-process memo only.
    """
    global _default, _configured
    if not _configured:
        if os.environ.get(ARTIFACT_DISABLE_ENV, "1") == "0":
            _default = None
        else:
            _default = ArtifactStore(os.environ.get(ARTIFACT_DIR_ENV) or None)
        _configured = True
    return _default


def configure_artifacts(
    store: ArtifactStore | pathlib.Path | str | None = None, *, enabled: bool = True
) -> ArtifactStore | None:
    """Install the process-global artifact store.

    Args:
        store: an :class:`ArtifactStore`, a directory for one, or None
            for a fresh in-process-only store.
        enabled: False disables artifact memoization entirely
            (``--no-artifact-cache``).

    Returns the installed store (None when disabled).
    """
    global _default, _configured
    if not enabled:
        _default = None
    elif isinstance(store, ArtifactStore):
        _default = store
    else:
        _default = ArtifactStore(store)
    _configured = True
    return _default


@contextlib.contextmanager
def use_store(store: ArtifactStore | None) -> Iterator[ArtifactStore | None]:
    """Temporarily swap the process-global store (tests, benchmarks)."""
    global _default, _configured
    prev, prev_cfg = _default, _configured
    _default, _configured = store, True
    try:
        yield store
    finally:
        _default, _configured = prev, prev_cfg
