"""Durable sweep checkpoint journal: append-only, fsynced JSONL.

The result cache (:mod:`repro.core.cache`) makes individual cell results
durable; the journal makes *sweep progress* durable. Each completed cell
appends one JSON line — the cell's content key, label, status, attempt
count, and a pointer to the stored result — flushed and fsynced before
the sweep moves on. An interrupted sweep (SIGINT, SIGTERM, power loss,
crash) can then be resumed bit-for-bit: ``--resume`` replays the journal,
loads the recorded results from the store, and recomputes only the cells
with no valid entry.

Robustness properties (all tested):

- **Torn writes are harmless.** A kill mid-append leaves at most one
  partial trailing line; :meth:`SweepJournal.load` skips any line that
  is not valid JSON or fails schema validation, so a corrupted or
  truncated journal degrades to "fewer cells resumed", never an error.
- **Entries are content-addressed.** A journal line names a cell by the
  same sha256 content key the cache uses, so resuming with a *different*
  grid, seed, or code salt simply matches nothing — stale journals
  cannot inject wrong results.
- **Append is signal-deferred.** The sweep wraps each
  store-write + journal-append in :func:`deferred_signals`, so SIGINT
  and SIGTERM are held until the entry is durable and then re-raised —
  the journal never records a cell whose result did not reach the store.

File naming: one journal per sweep, keyed by :func:`sweep_id` (a sha256
over the sorted cell keys), so concurrent different sweeps sharing one
cache directory never collide and ``--resume`` needs no bookkeeping from
the user.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import signal
import threading
from dataclasses import asdict, dataclass
from hashlib import sha256
from typing import Iterable, Iterator

#: Journal format version; bump on incompatible line-schema changes.
JOURNAL_VERSION = 1

#: Statuses a journal entry may carry.
ENTRY_STATUSES = ("done", "failed")

#: Default size past which a resumed journal is compacted in place.
#: Journals grow one line per settled cell *per run*; a long-lived
#: service state dir replays the same grids many times, so the file can
#: dwarf its useful content. 64 KiB keeps small sweeps untouched.
COMPACT_MIN_BYTES = 64 * 1024


def sweep_id(keys: Iterable[str]) -> str:
    """A stable identity for one sweep: sha256 over its sorted cell keys.

    Order-independent, so the same grid always resumes the same journal
    regardless of cell enumeration order.
    """
    digest = sha256()
    for key in sorted(keys):
        digest.update(key.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass(frozen=True)
class JournalEntry:
    """One durable fact: cell ``key`` reached ``status``.

    ``result_path`` is informational — the pointer into the result store
    where the value was written; resume loads through the store's own
    (validating) ``get``, never by trusting this path blindly.
    """

    key: str
    label: str
    status: str  #: "done" | "failed"
    attempts: int = 1
    result_path: str = ""
    error: str = ""  #: for "failed": "ErrorType: message"


class SweepJournal:
    """Append-only JSONL checkpoint log for one sweep.

    Args:
        path: the journal file (created on first append; parent
            directories are created as needed).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self.appended = 0  #: entries written by this instance
        self._tail_checked = False

    # ------------------------------------------------------------------
    @classmethod
    def for_sweep(
        cls, directory: str | os.PathLike, keys: Iterable[str]
    ) -> "SweepJournal":
        """The canonical per-sweep journal file inside ``directory``."""
        name = f"sweep-{sweep_id(keys)[:16]}.jsonl"
        return cls(pathlib.Path(directory) / name)

    # ------------------------------------------------------------------
    def append(self, entry: JournalEntry) -> None:
        """Durably record one entry: single write, flush, fsync."""
        record = {"v": JOURNAL_VERSION, **asdict(entry)}
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self._tail_checked:
            # A torn trailing write has no newline; terminate it so the
            # first entry of this session cannot merge into the fragment
            # (which would corrupt a valid line too).
            try:
                with open(self.path, "rb") as fh:
                    fh.seek(0, os.SEEK_END)
                    if fh.tell() > 0:
                        fh.seek(-1, os.SEEK_END)
                        if fh.read(1) != b"\n":
                            line = "\n" + line
            except FileNotFoundError:
                pass
            self._tail_checked = True
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        self.appended += 1

    def load(self) -> dict[str, JournalEntry]:
        """Valid entries by cell key (later lines win); missing file = {}.

        Malformed lines — torn trailing writes, corruption, foreign
        schema versions — are skipped silently: the journal is a
        performance artifact, and the worst case of a lost line is one
        recomputed cell.
        """
        entries: dict[str, JournalEntry] = {}
        try:
            text = self.path.read_text(encoding="utf-8", errors="replace")
        except (FileNotFoundError, OSError):
            return entries
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if record.get("v") != JOURNAL_VERSION:
                continue
            key = record.get("key")
            status = record.get("status")
            if not isinstance(key, str) or status not in ENTRY_STATUSES:
                continue
            try:
                entries[key] = JournalEntry(
                    key=key,
                    label=str(record.get("label", "")),
                    status=status,
                    attempts=int(record.get("attempts", 1)),
                    result_path=str(record.get("result_path", "")),
                    error=str(record.get("error", "")),
                )
            except (TypeError, ValueError):
                continue
        return entries

    def compact(
        self,
        relevant_keys: "Iterable[str] | None" = None,
        *,
        min_bytes: int = COMPACT_MIN_BYTES,
    ) -> int:
        """Rewrite the journal to only its load-bearing lines.

        Keeps exactly one line per cell key — the one :meth:`load`
        would have honoured (later lines win) — and, when
        ``relevant_keys`` is given, only keys in that set (entries for
        other grids sharing the file are dead weight for this sweep).
        Garbage lines, torn tails, and superseded duplicates are
        dropped.

        The rewrite is crash-safe: the surviving lines are written to a
        sibling temp file, flushed and fsynced, then atomically
        ``os.replace``d over the original — a kill at any point leaves
        either the old journal or the new one, never a torn hybrid. The
        compacted file always ends with a newline, so the torn-tail
        healing in :meth:`append` keeps working afterwards.

        A no-op (returns 0) while the file is smaller than
        ``min_bytes`` — compaction exists to bound growth, not to churn
        tiny files. Returns the number of bytes reclaimed.
        """
        try:
            before = self.path.stat().st_size
        except (FileNotFoundError, OSError):
            return 0
        if before < min_bytes:
            return 0
        entries = self.load()
        if relevant_keys is not None:
            keep = set(relevant_keys)
            entries = {k: e for k, e in entries.items() if k in keep}
        tmp = self.path.with_name(self.path.name + ".compact")
        with open(tmp, "w", encoding="utf-8") as fh:
            for entry in entries.values():
                record = {"v": JOURNAL_VERSION, **asdict(entry)}
                fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._tail_checked = True  # we just wrote the (clean) tail
        after = self.path.stat().st_size
        return max(0, before - after)

    def rotate(self) -> None:
        """Discard any prior journal (fresh, non-resumed sweeps)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        self.appended = 0

    def __len__(self) -> int:
        return len(self.load())


@contextlib.contextmanager
def deferred_signals(
    signals: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM)
) -> Iterator[None]:
    """Hold SIGINT/SIGTERM across a critical section, re-raise after.

    Guards the store-write + journal-append pair so an interrupt can
    never tear them apart. Outside the main thread (where handlers
    cannot be installed) this is a no-op — worker pools deliver results
    to the main thread in this codebase, so the guarantee holds where it
    matters.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    received: list[tuple[int, object]] = []
    previous = {}
    try:
        for signum in signals:
            previous[signum] = signal.signal(
                signum, lambda s, frame: received.append((s, frame))
            )
    except (ValueError, OSError):
        # Exotic contexts (no signal support): run unguarded.
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        yield
        return
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        for signum, frame in received:
            handler = previous[signum]
            if callable(handler):
                handler(signum, frame)
            elif signum == signal.SIGINT:
                raise KeyboardInterrupt
            else:
                signal.raise_signal(signum)
