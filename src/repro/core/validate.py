"""Numerical validation of simulated schedules.

The study's defining invariant — *schedules change when and where a task
runs, never what it computes* — made executable: take any task->rank
assignment (typically a simulated :class:`~repro.exec_models.base.RunResult`),
replay it through the **real** integral kernels with per-rank partial Fock
matrices, reduce, and compare against the serial reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chemistry.fock import fock_reference_tasks
from repro.chemistry.scf import ScfProblem
from repro.chemistry.symmetry import SymmetricTaskKernel, fock_reference_symmetric
from repro.chemistry.tasks import TaskGraph
from repro.exec_models.base import RunResult
from repro.util import ConfigurationError, SchedulingError, spawn_rng


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one schedule validation.

    Attributes:
        max_abs_error: worst absolute deviation from the serial reference.
        reference_scale: magnitude of the reference (max |entry|).
        n_tasks: tasks replayed.
        n_ranks: ranks in the schedule.
        passed: whether ``max_abs_error <= tolerance * reference_scale``.
        tolerance: the relative tolerance used.
    """

    max_abs_error: float
    reference_scale: float
    n_tasks: int
    n_ranks: int
    passed: bool
    tolerance: float


def validate_assignment(
    problem: ScfProblem,
    assignment: np.ndarray,
    n_ranks: int,
    graph: TaskGraph | None = None,
    symmetric: bool = False,
    density: np.ndarray | None = None,
    tolerance: float = 1.0e-10,
    seed: int = 0,
) -> ValidationReport:
    """Replay ``assignment`` numerically and compare to the serial oracle.

    Args:
        problem: the chemistry problem providing kernels.
        assignment: ``(n_tasks,)`` executing rank per task.
        n_ranks: rank count of the schedule.
        graph: the task graph the assignment covers; defaults to
            ``problem.graph`` (pass the folded graph together with
            ``symmetric=True`` for symmetry-folded schedules).
        symmetric: replay through the symmetry-folded kernel.
        density: density matrix to build against; a random symmetric one
            (seeded) by default — random densities catch sign and
            transpose bugs that idempotent SCF densities can mask.
        tolerance: relative tolerance on the max absolute deviation.
    """
    task_graph = graph if graph is not None else problem.graph
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (task_graph.n_tasks,):
        raise ConfigurationError(
            f"assignment must be ({task_graph.n_tasks},), got {assignment.shape}"
        )
    if assignment.size and (assignment.min() < 0 or assignment.max() >= n_ranks):
        raise SchedulingError(f"assignment references ranks outside [0, {n_ranks})")

    n = problem.basis.n_basis
    if density is None:
        rng = spawn_rng(seed, "validate_density")
        density = rng.normal(size=(n, n))
        density = 0.5 * (density + density.T)
    elif density.shape != (n, n):
        raise ConfigurationError(f"density must be ({n}, {n}), got {density.shape}")

    if symmetric:
        reference = fock_reference_symmetric(problem.kernel, task_graph, density)
        executor = SymmetricTaskKernel(problem.kernel).execute_dense
    else:
        reference = fock_reference_tasks(problem.kernel, task_graph, density)
        executor = problem.kernel.execute_dense

    partials = [np.zeros((n, n)) for _ in range(n_ranks)]
    for task in task_graph.tasks:
        executor(task, density, partials[assignment[task.tid]])
    total = partials[0]
    for partial in partials[1:]:
        total = total + partial

    max_error = float(np.abs(total - reference).max())
    scale = float(np.abs(reference).max())
    return ValidationReport(
        max_abs_error=max_error,
        reference_scale=scale,
        n_tasks=task_graph.n_tasks,
        n_ranks=n_ranks,
        passed=max_error <= tolerance * max(scale, 1.0),
        tolerance=tolerance,
    )


def validate_run(
    problem: ScfProblem,
    result: RunResult,
    graph: TaskGraph | None = None,
    symmetric: bool = False,
    tolerance: float = 1.0e-10,
) -> ValidationReport:
    """Validate a simulated run's schedule (convenience wrapper)."""
    return validate_assignment(
        problem,
        result.assignment,
        result.n_ranks,
        graph=graph,
        symmetric=symmetric,
        tolerance=tolerance,
    )
