"""Study result collection and summarization."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exec_models.base import RunResult
from repro.runtime.trace import COMM, COMPUTE, FAILED, IDLE, OVERHEAD
from repro.util import ConfigurationError


def result_row(
    r: RunResult, *, faulty: bool = False
) -> dict[str, float | str | int]:
    """The canonical flat summary row for one run.

    The single row schema every surface renders — :meth:`StudyReport.rows`
    tables, the service's NDJSON row stream — so a row built per-cell
    while a sweep is still running is byte-identical to the same row in
    the finished table. ``faulty`` adds the fault-accounting columns
    (``failed%`` / ``completion`` / ``degraded``); :meth:`StudyReport.rows`
    sets it when *any* run in the table was fault-affected.
    """
    fracs = r.breakdown_fractions()
    row: dict[str, float | str | int] = {
        "model": r.model,
        "P": r.n_ranks,
        "makespan_ms": r.makespan * 1e3,
        "speedup": r.speedup,
        "efficiency": r.efficiency,
        "utilization": r.mean_utilization,
        "imbalance": r.compute_imbalance,
        "compute%": 100 * fracs[COMPUTE],
        "comm%": 100 * fracs[COMM],
        "overhead%": 100 * fracs[OVERHEAD],
        "idle%": 100 * fracs[IDLE],
    }
    if faulty:
        row["failed%"] = 100 * fracs.get(FAILED, 0.0)
        row["completion"] = r.completion_rate
        row["degraded"] = "yes" if r.degraded else ""
    return row


@dataclass
class StudyReport:
    """All runs of one study, keyed by (model name, rank count).

    ``provenance`` optionally records, per key, how the result was
    obtained: computed fresh, served from the sweep cache, or restored
    from a checkpoint journal (``"fresh"`` / ``"cached"`` /
    ``"resumed"``). It is bookkeeping only: all three are bit-for-bit
    identical, so nothing downstream may branch on it.

    ``failures`` collects quarantined sweep cells
    (:class:`~repro.parallel.CellFailure`): cells that exhausted their
    host-level retry budget under ``on_error="quarantine"``. They have no
    result row; a report with failures is *partial*, not wrong.
    """

    results: dict[tuple[str, int], RunResult] = field(default_factory=dict)
    provenance: dict[tuple[str, int], str] = field(default_factory=dict)
    failures: list = field(default_factory=list)

    def add(self, result: RunResult, provenance: str | None = None) -> None:
        self.results[(result.model, result.n_ranks)] = result
        if provenance is not None:
            self.provenance[(result.model, result.n_ranks)] = provenance

    def merge(self, other: "StudyReport") -> "StudyReport":
        """Fold ``other``'s cells into this report (other wins ties).

        The sweep path uses this to combine cached and freshly computed
        cells — and callers use it to stitch partial sweeps (e.g. two
        benchmark shards) into one table. Returns ``self`` for chaining.
        """
        self.results.update(other.results)
        self.provenance.update(other.provenance)
        self.failures.extend(other.failures)
        return self

    @property
    def complete(self) -> bool:
        """Whether every attempted cell produced a result (no failures)."""
        return not self.failures

    def get(self, model: str, n_ranks: int) -> RunResult:
        try:
            return self.results[(model, n_ranks)]
        except KeyError:
            raise ConfigurationError(
                f"no result for model={model!r}, n_ranks={n_ranks}"
            ) from None

    @property
    def models(self) -> list[str]:
        seen: dict[str, None] = {}
        for model, _ in self.results:
            seen.setdefault(model)
        return list(seen)

    @property
    def rank_counts(self) -> list[int]:
        return sorted({p for _, p in self.results})

    # ------------------------------------------------------------------
    def rows(self) -> list[dict[str, float | str | int]]:
        """Flat summary rows (one per run) for table rendering.

        Fault-affected runs additionally carry ``failed%`` (fraction of
        rank-seconds lost to failures), ``completion`` (fraction of tasks
        executed), and a ``degraded`` marker; for fault-free runs these
        are 0 / 1 / blank.
        """
        faulty = any(
            r.failed_ranks or r.degraded for r in self.results.values()
        )
        return [
            result_row(r, faulty=faulty)
            for _key, r in sorted(
                self.results.items(), key=lambda kv: (kv[0][1], kv[0][0])
            )
        ]

    def series(self, model: str) -> tuple[np.ndarray, np.ndarray]:
        """(rank counts, makespans) for one model, sorted by P."""
        points = sorted(
            (p, r.makespan) for (m, p), r in self.results.items() if m == model
        )
        if not points:
            raise ConfigurationError(f"no results for model {model!r}")
        ps, ts = zip(*points)
        return np.array(ps), np.array(ts)

    def improvement(self, better: str, worse: str, n_ranks: int) -> float:
        """Makespan ratio worse/better at one scale (>1: `better` wins)."""
        return self.get(worse, n_ranks).makespan / self.get(better, n_ranks).makespan
