"""Study driver: the paper's experiment machinery as a library.

:func:`run_study` sweeps execution models over rank counts on one
workload and collects uniform results; :mod:`repro.core.sweep` executes
the same grids in parallel with content-addressed result caching;
:mod:`repro.core.report` renders results as the text tables the
benchmarks print. Prefer importing through the :mod:`repro.api` facade.
"""

from repro.core.cache import (
    CACHE_SALT,
    CacheStats,
    ResultCache,
    cache_key,
    default_cache_dir,
    fingerprint,
)
from repro.core.config import StudyConfig, MACHINE_PRESETS
from repro.core.journal import JournalEntry, SweepJournal, sweep_id
from repro.core.results import StudyReport
from repro.core.study import (
    Workload,
    build_workload,
    resolve_source,
    run_study,
    workload_label,
)
from repro.core.sweep import (
    SweepCell,
    SweepProgress,
    SweepRunner,
    SweepStats,
    execute_cell,
    print_progress,
    study_cells,
)
from repro.core.report import format_failures, format_table
from repro.core.validate import ValidationReport, validate_assignment, validate_run

__all__ = [
    "ValidationReport",
    "validate_assignment",
    "validate_run",
    "StudyConfig",
    "MACHINE_PRESETS",
    "StudyReport",
    "run_study",
    "build_workload",
    "resolve_source",
    "workload_label",
    "Workload",
    "format_table",
    "format_failures",
    "SweepJournal",
    "JournalEntry",
    "sweep_id",
    "SweepCell",
    "SweepProgress",
    "SweepRunner",
    "SweepStats",
    "execute_cell",
    "print_progress",
    "study_cells",
    "ResultCache",
    "CacheStats",
    "cache_key",
    "default_cache_dir",
    "fingerprint",
    "CACHE_SALT",
]
