"""Study driver: the paper's experiment machinery as a library.

:func:`run_study` sweeps execution models over rank counts on one
workload and collects uniform results; :mod:`repro.core.report` renders
them as the text tables the benchmarks print.
"""

from repro.core.config import StudyConfig, MACHINE_PRESETS
from repro.core.results import StudyReport
from repro.core.study import run_study, build_workload, Workload
from repro.core.report import format_table
from repro.core.validate import ValidationReport, validate_assignment, validate_run

__all__ = [
    "ValidationReport",
    "validate_assignment",
    "validate_run",
    "StudyConfig",
    "MACHINE_PRESETS",
    "StudyReport",
    "run_study",
    "build_workload",
    "Workload",
    "format_table",
]
