"""High-level experiment driver.

Ties the full stack together: molecule -> basis/screening/task graph ->
(model x rank-count) sweep on the simulated machine -> uniform report.
This is what the benchmarks and examples call (through the
:mod:`repro.api` facade).

:func:`run_study` takes the workload as a single positional ``source``
accepting any of ``Workload | ScfProblem | TaskGraph``. The historical
"exactly one of ``workload=``/``problem=``/``graph=``" keyword convention
completed its deprecation cycle (DeprecationWarning since the facade
landed) and now raises a :class:`TypeError` naming the replacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.chemistry.basis import BlockStructure
from repro.chemistry.molecules import Molecule
from repro.chemistry.scf import ScfProblem
from repro.chemistry.tasks import TaskGraph
from repro.core.cache import ResultCache, fingerprint
from repro.core.config import StudyConfig
from repro.core.results import StudyReport
from repro.util import ConfigurationError

#: The types :func:`resolve_source` accepts as a study workload.
StudySource = "Workload | ScfProblem | TaskGraph"


@dataclass(frozen=True)
class Workload:
    """A named task graph (with its originating problem when available)."""

    name: str
    graph: TaskGraph
    problem: ScfProblem | None = None


def workload_label(molecule: Molecule) -> str:
    """A default label unique to the molecule's actual content.

    Includes the molecular formula and a content digest of the geometry,
    so two different molecules with equal atom counts (or even equal
    formulas at different geometries) never share a label — labels feed
    cache keys and report rows, where collisions are silent corruption.
    """
    digest = fingerprint(molecule)[:8]
    return f"{molecule.formula}[{molecule.n_atoms} atoms, {digest}]"


def build_workload(
    molecule: Molecule,
    name: str | None = None,
    block_size: int = 8,
    tau: float = 1.0e-10,
    blocks: BlockStructure | None = None,
) -> Workload:
    """Build the full chemistry pipeline for one molecule."""
    problem = ScfProblem.build(molecule, block_size=block_size, tau=tau, blocks=blocks)
    label = name if name is not None else workload_label(molecule)
    return Workload(label, problem.graph, problem)


def resolve_source(source: Any) -> TaskGraph:
    """The task graph behind any accepted study source.

    Accepts a :class:`Workload`, an :class:`~repro.chemistry.scf.ScfProblem`,
    or a bare :class:`~repro.chemistry.tasks.TaskGraph`.
    """
    if isinstance(source, Workload):
        return source.graph
    if isinstance(source, ScfProblem):
        return source.graph
    if isinstance(source, TaskGraph):
        return source
    raise ConfigurationError(
        "study source must be a Workload, ScfProblem, or TaskGraph, "
        f"got {type(source).__qualname__}"
    )


def _reconcile_source(
    source: Any,
    workload: Workload | None,
    problem: ScfProblem | None,
    graph: TaskGraph | None,
) -> Any:
    """Reject the removed keyword trio; require exactly one source."""
    legacy = [
        (kw, value)
        for kw, value in (("workload", workload), ("problem", problem), ("graph", graph))
        if value is not None
    ]
    if legacy:
        kw = legacy[0][0]
        raise TypeError(
            f"run_study({kw}=...) was removed after its deprecation "
            f"cycle; pass the workload as the positional `source` "
            f"argument instead: run_study(config, {kw})"
        )
    if source is None:
        raise ConfigurationError(
            "a study needs a source (Workload | ScfProblem | TaskGraph)"
        )
    return source


def run_study(
    config: StudyConfig,
    source: Any | None = None,
    *,
    workload: Workload | None = None,
    problem: ScfProblem | None = None,
    graph: TaskGraph | None = None,
    jobs: int = 1,
    cache: ResultCache | str | None = None,
    progress: Callable | None = None,
) -> StudyReport:
    """Run every (model, rank-count) cell of the study.

    Args:
        config: the sweep grid (models x rank counts, machine, seed).
        source: the workload — a ``Workload``, ``ScfProblem``, or
            ``TaskGraph``.
        workload / problem / graph: deprecated spellings of ``source``.
        jobs: worker processes for the sweep (1 = serial in-process;
            results are identical either way).
        cache: optional content-addressed result cache (a
            :class:`~repro.core.cache.ResultCache` or a directory path);
            None disables caching.
        progress: optional per-cell progress callback (see
            :class:`~repro.core.sweep.SweepProgress`).
    """
    from repro.core.sweep import SweepRunner

    resolved = _reconcile_source(source, workload, problem, graph)
    runner = SweepRunner(jobs=jobs, cache=cache, progress=progress)
    return runner.run_study(config, resolve_source(resolved))
