"""High-level experiment driver.

Ties the full stack together: molecule -> basis/screening/task graph ->
(model x rank-count) sweep on the simulated machine -> uniform report.
This is what the benchmarks and examples call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chemistry.basis import BlockStructure
from repro.chemistry.molecules import Molecule
from repro.chemistry.scf import ScfProblem
from repro.chemistry.tasks import TaskGraph
from repro.core.config import StudyConfig
from repro.core.results import StudyReport
from repro.exec_models.registry import make_model
from repro.util import ConfigurationError, derive_seed


@dataclass(frozen=True)
class Workload:
    """A named task graph (with its originating problem when available)."""

    name: str
    graph: TaskGraph
    problem: ScfProblem | None = None


def build_workload(
    molecule: Molecule,
    name: str | None = None,
    block_size: int = 8,
    tau: float = 1.0e-10,
    blocks: BlockStructure | None = None,
) -> Workload:
    """Build the full chemistry pipeline for one molecule."""
    problem = ScfProblem.build(molecule, block_size=block_size, tau=tau, blocks=blocks)
    label = name if name is not None else f"molecule[{molecule.n_atoms} atoms]"
    return Workload(label, problem.graph, problem)


def run_study(
    config: StudyConfig,
    workload: Workload | None = None,
    problem: ScfProblem | None = None,
    graph: TaskGraph | None = None,
) -> StudyReport:
    """Run every (model, rank-count) cell of the study.

    Provide exactly one of ``workload``, ``problem``, or ``graph``.
    """
    provided = [x for x in (workload, problem, graph) if x is not None]
    if len(provided) != 1:
        raise ConfigurationError(
            "provide exactly one of workload=, problem=, or graph="
        )
    if workload is not None:
        task_graph = workload.graph
    elif problem is not None:
        task_graph = problem.graph
    else:
        task_graph = graph

    report = StudyReport()
    for n_ranks in config.n_ranks:
        machine = config.machine_for(n_ranks)
        for model_name in config.models:
            model = make_model(model_name)
            seed = derive_seed(config.seed, "study", model_name, n_ranks)
            report.add(
                model.run(task_graph, machine, seed=seed, faults=config.faults)
            )
    return report
