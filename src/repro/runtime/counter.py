"""NXTVAL-style global shared counter.

The centralized dynamic execution model claims tasks by atomically
incrementing a counter homed on one rank. Its scalability ceiling — the
home NIC serializes every fetch-and-add — is the subject of experiment E6;
chunked claiming (``amount > 1``) is the standard mitigation.
"""

from __future__ import annotations

from repro.runtime.comm import RankContext
from repro.simulate.network import SharedCell
from repro.util import ConfigurationError, check_positive


class GlobalCounter:
    """A shared monotonically increasing counter homed on one rank."""

    def __init__(self, home_rank: int = 0) -> None:
        if home_rank < 0:
            raise ConfigurationError(f"home_rank must be >= 0, got {home_rank}")
        self.home_rank = int(home_rank)
        self.cell = SharedCell(0)

    @property
    def value(self) -> int:
        return self.cell.value

    def reset(self) -> None:
        self.cell.value = 0

    def next(self, ctx: RankContext, amount: int = 1):
        """Claim ``amount`` consecutive values; returns the first.

        Traced as scheduling OVERHEAD on the calling rank. Contention
        emerges from NIC serialization at ``home_rank``.
        """
        check_positive("amount", amount)
        first = yield from ctx.fetch_add(self.home_rank, self.cell, amount)
        return first
