"""Per-rank activity accounting.

Every simulated rank classifies its time into recorded categories —
``compute`` (task kernels), ``comm`` (data movement: density gets, Fock
accumulates), ``overhead`` (scheduling machinery: counter fetch-adds,
steal protocol, termination detection), ``idle`` (explicitly recorded
waits: parked receives, backoff sleeps), and ``failed`` (time lost to
failures: RMA timeouts against dead ranks, and a crashed rank's remaining
makespan) — with any *unaccounted* remainder of the makespan folded into
``idle``. The utilization-breakdown experiment (E2) and all efficiency
metrics read straight from this recorder; with explicit idle recording the
per-rank breakdown sums to wall-clock by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import ConfigurationError, SimulationError, check_positive

COMPUTE = "compute"
COMM = "comm"
OVERHEAD = "overhead"
IDLE = "idle"
FAILED = "failed"

#: Categories that can be recorded explicitly. ``IDLE`` additionally
#: absorbs the unaccounted remainder in :meth:`TraceRecorder.breakdown`.
_CATEGORIES = (COMPUTE, COMM, OVERHEAD, IDLE, FAILED)


@dataclass(frozen=True)
class TaskRecord:
    """One executed task: who ran it and when the kernel computed."""

    tid: int
    rank: int
    start: float
    end: float


class TraceRecorder:
    """Accumulates activity intervals and task records for all ranks."""

    def __init__(self, n_ranks: int) -> None:
        check_positive("n_ranks", n_ranks)
        self.n_ranks = int(n_ranks)
        self._totals = {cat: np.zeros(n_ranks) for cat in _CATEGORIES}
        self.tasks: list[TaskRecord] = []
        #: Optional full interval log (enabled via `keep_intervals`).
        self.intervals: list[tuple[int, str, float, float]] | None = None

    def keep_intervals(self) -> None:
        """Enable retention of individual intervals (timeline plots)."""
        if self.intervals is None:
            self.intervals = []

    def record(self, rank: int, category: str, start: float, end: float) -> None:
        """Account ``[start, end)`` on ``rank`` to ``category``."""
        if category not in _CATEGORIES:
            raise ConfigurationError(
                f"category must be one of {_CATEGORIES}, got {category!r}"
            )
        if end < start:
            raise SimulationError(f"interval ends before it starts: [{start}, {end})")
        self._totals[category][rank] += end - start
        if self.intervals is not None:
            self.intervals.append((rank, category, start, end))

    def record_task(self, tid: int, rank: int, start: float, end: float) -> None:
        self.tasks.append(TaskRecord(tid, rank, start, end))

    # ------------------------------------------------------------------
    def total(self, category: str) -> np.ndarray:
        """``(n_ranks,)`` seconds accounted to ``category``."""
        return self._totals[category].copy()

    def breakdown(self, makespan: float) -> dict[str, np.ndarray]:
        """Per-rank seconds by category; unaccounted time is added to idle.

        Raises:
            SimulationError: if any rank's accounted time exceeds the
                makespan (an accounting bug).
        """
        accounted = sum(self._totals[cat] for cat in _CATEGORIES)
        remainder = makespan - accounted
        if np.any(remainder < -1.0e-9 * max(makespan, 1.0)):
            worst = int(np.argmin(remainder))
            raise SimulationError(
                f"rank {worst} accounted {accounted[worst]:.6g}s "
                f"> makespan {makespan:.6g}s"
            )
        out = {cat: self._totals[cat].copy() for cat in _CATEGORIES}
        out[IDLE] = self._totals[IDLE] + np.maximum(remainder, 0.0)
        return out

    def utilization(self, makespan: float) -> np.ndarray:
        """Per-rank fraction of the makespan spent in task compute."""
        if makespan <= 0:
            return np.zeros(self.n_ranks)
        return self._totals[COMPUTE] / makespan

    def task_assignment(self, n_tasks: int) -> np.ndarray:
        """``(n_tasks,)`` executing rank per task.

        Raises:
            SimulationError: if any task was executed zero or multiple
                times — the core scheduling invariant.
        """
        assignment = np.full(n_tasks, -1, dtype=np.int64)
        for rec in self.tasks:
            if not 0 <= rec.tid < n_tasks:
                raise SimulationError(f"task id {rec.tid} out of range")
            if assignment[rec.tid] != -1:
                raise SimulationError(f"task {rec.tid} executed more than once")
            assignment[rec.tid] = rec.rank
        missing = np.nonzero(assignment < 0)[0]
        if missing.size:
            raise SimulationError(
                f"{missing.size} tasks never executed (first: {missing[:5].tolist()})"
            )
        return assignment
