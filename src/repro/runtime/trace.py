"""Per-rank activity accounting.

Every simulated rank classifies its time into recorded categories —
``compute`` (task kernels), ``comm`` (data movement: density gets, Fock
accumulates), ``overhead`` (scheduling machinery: counter fetch-adds,
steal protocol, termination detection), ``idle`` (explicitly recorded
waits: parked receives, backoff sleeps), and ``failed`` (time lost to
failures: RMA timeouts against dead ranks, and a crashed rank's remaining
makespan) — with any *unaccounted* remainder of the makespan folded into
``idle``. The utilization-breakdown experiment (E2) and all efficiency
metrics read straight from this recorder; with explicit idle recording the
per-rank breakdown sums to wall-clock by construction.

Accumulation happens in plain per-rank Python float lists — a list index
plus a float ``+=`` per interval, the cheapest thing CPython can do —
and is folded into NumPy arrays only when :meth:`TraceRecorder.breakdown`
or :meth:`TraceRecorder.total` is read. Python float arithmetic *is*
IEEE-754 double arithmetic, identical bit-for-bit to the former per-element
ndarray updates, so recorded totals are unchanged to the last ulp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.util import ConfigurationError, SimulationError, check_positive

COMPUTE = "compute"
COMM = "comm"
OVERHEAD = "overhead"
IDLE = "idle"
FAILED = "failed"

#: Categories that can be recorded explicitly. ``IDLE`` additionally
#: absorbs the unaccounted remainder in :meth:`TraceRecorder.breakdown`.
_CATEGORIES = (COMPUTE, COMM, OVERHEAD, IDLE, FAILED)


@dataclass(frozen=True, slots=True)
class TaskRecord:
    """One executed task: who ran it and when the kernel computed."""

    tid: int
    rank: int
    start: float
    end: float


class TraceRecorder:
    """Accumulates activity intervals and task records for all ranks."""

    __slots__ = ("n_ranks", "_totals", "tasks", "intervals", "records")

    def __init__(self, n_ranks: int) -> None:
        check_positive("n_ranks", n_ranks)
        self.n_ranks = int(n_ranks)
        self._totals: dict[str, list[float]] = {
            cat: [0.0] * self.n_ranks for cat in _CATEGORIES
        }
        self.tasks: list[TaskRecord] = []
        #: Optional full interval log (enabled via `keep_intervals`).
        self.intervals: list[tuple[int, str, float, float]] | None = None
        #: Total intervals recorded (deterministic volume counter).
        self.records = 0

    def keep_intervals(self) -> None:
        """Enable retention of individual intervals (timeline plots)."""
        if self.intervals is None:
            self.intervals = []

    def record(self, rank: int, category: str, start: float, end: float) -> None:
        """Account ``[start, end)`` on ``rank`` to ``category``."""
        totals = self._totals.get(category)
        if totals is None:
            raise ConfigurationError(
                f"category must be one of {_CATEGORIES}, got {category!r}"
            )
        if end < start:
            raise SimulationError(f"interval ends before it starts: [{start}, {end})")
        totals[rank] += end - start
        self.records += 1
        if self.intervals is not None:
            self.intervals.append((rank, category, start, end))

    def record_batch(
        self, rank: int, category: str, spans: Iterable[tuple[float, float]]
    ) -> None:
        """Account many ``(start, end)`` intervals on one rank at once.

        Equivalent to calling :meth:`record` per span in order (same
        accumulation order, same interval log), amortizing the per-call
        validation for hot paths that buffer a few intervals.
        """
        totals = self._totals.get(category)
        if totals is None:
            raise ConfigurationError(
                f"category must be one of {_CATEGORIES}, got {category!r}"
            )
        acc = totals[rank]
        n = 0
        intervals = self.intervals
        for start, end in spans:
            if end < start:
                totals[rank] = acc
                self.records += n
                raise SimulationError(
                    f"interval ends before it starts: [{start}, {end})"
                )
            acc += end - start
            n += 1
            if intervals is not None:
                intervals.append((rank, category, start, end))
        totals[rank] = acc
        self.records += n

    def record_compute(self, rank: int, tid: int | None, start: float, end: float) -> None:
        """Fused hot path: one kernel interval plus its task record.

        Identical to ``record(rank, COMPUTE, start, end)`` followed by
        ``record_task(tid, rank, start, end)`` (skipped for ``tid=None``),
        saving a dispatch and re-validation per executed task.
        """
        if end < start:
            raise SimulationError(f"interval ends before it starts: [{start}, {end})")
        self._totals[COMPUTE][rank] += end - start
        self.records += 1
        if self.intervals is not None:
            self.intervals.append((rank, COMPUTE, start, end))
        if tid is not None:
            self.tasks.append(TaskRecord(tid, rank, start, end))

    def record_compute_batch(
        self, rank: int, spans: Iterable[tuple[int, float, float]]
    ) -> None:
        """Fused burst path: many ``(tid, start, end)`` kernels on one rank.

        Equivalent to :meth:`record_compute` per span in order — the same
        sequential float accumulation, the same interval log entries, the
        same task records — amortizing the per-call dispatch for execution
        models that run a whole claimed burst of tasks back to back.
        Callers that need task records interleaved across ranks (fault
        plans replay on last-record-wins) must stay on the per-task path.
        """
        totals = self._totals[COMPUTE]
        acc = totals[rank]
        n = 0
        intervals = self.intervals
        record_task = self.tasks.append
        for tid, start, end in spans:
            if end < start:
                totals[rank] = acc
                self.records += n
                raise SimulationError(
                    f"interval ends before it starts: [{start}, {end})"
                )
            acc += end - start
            n += 1
            if intervals is not None:
                intervals.append((rank, COMPUTE, start, end))
            record_task(TaskRecord(tid, rank, start, end))
        totals[rank] = acc
        self.records += n

    def record_task(self, tid: int, rank: int, start: float, end: float) -> None:
        self.tasks.append(TaskRecord(tid, rank, start, end))

    # ------------------------------------------------------------------
    def total(self, category: str) -> np.ndarray:
        """``(n_ranks,)`` seconds accounted to ``category``."""
        return np.array(self._totals[category])

    def breakdown(self, makespan: float) -> dict[str, np.ndarray]:
        """Per-rank seconds by category; unaccounted time is added to idle.

        Raises:
            SimulationError: if any rank's accounted time exceeds the
                makespan (an accounting bug).
        """
        arrays = {cat: np.array(vals) for cat, vals in self._totals.items()}
        accounted = sum(arrays[cat] for cat in _CATEGORIES)
        remainder = makespan - accounted
        if np.any(remainder < -1.0e-9 * max(makespan, 1.0)):
            worst = int(np.argmin(remainder))
            raise SimulationError(
                f"rank {worst} accounted {accounted[worst]:.6g}s "
                f"> makespan {makespan:.6g}s"
            )
        out = arrays
        out[IDLE] = arrays[IDLE] + np.maximum(remainder, 0.0)
        return out

    def utilization(self, makespan: float) -> np.ndarray:
        """Per-rank fraction of the makespan spent in task compute."""
        if makespan <= 0:
            return np.zeros(self.n_ranks)
        return np.array(self._totals[COMPUTE]) / makespan

    def task_assignment(self, n_tasks: int) -> np.ndarray:
        """``(n_tasks,)`` executing rank per task.

        Raises:
            SimulationError: if any task was executed zero or multiple
                times — the core scheduling invariant.
        """
        assignment = np.full(n_tasks, -1, dtype=np.int64)
        for rec in self.tasks:
            if not 0 <= rec.tid < n_tasks:
                raise SimulationError(f"task id {rec.tid} out of range")
            if assignment[rec.tid] != -1:
                raise SimulationError(f"task {rec.tid} executed more than once")
            assignment[rec.tid] = rec.rank
        missing = np.nonzero(assignment < 0)[0]
        if missing.size:
            raise SimulationError(
                f"{missing.size} tasks never executed (first: {missing[:5].tolist()})"
            )
        return assignment
