"""Per-rank runtime facade: traced compute and communication.

A :class:`RankContext` is what an execution model's rank process actually
talks to. It binds together the rank id, the simulation engine, the network,
the machine's compute-speed model, the trace recorder, and (optionally) the
fault injector, exposing generator methods that both *cost* simulated time
and *account* it to the right trace category.

Fault accounting: an operation that discovers its target rank is dead
(raising :class:`~repro.util.RankFailedError` from the network) records the
wasted wait as ``FAILED`` before re-raising, so recovery cost is visible in
breakdowns rather than smeared into idle time.

Every data-movement wrapper records its interval inline (rather than via a
shared delegating generator) — one generator frame fewer per operation on
paths that run hundreds of thousands of times per study.
"""

from __future__ import annotations

from typing import Any

from repro.simulate.engine import Engine, Timeout, pooled_timeout
from repro.simulate.machine import MachineSpec
from repro.simulate.network import Message, Network, SharedCell
from repro.runtime.trace import COMM, COMPUTE, FAILED, IDLE, OVERHEAD, TraceRecorder
from repro.util import RankFailedError, check_non_negative


class RankContext:
    """One simulated rank's view of the machine."""

    __slots__ = ("rank", "engine", "network", "machine", "trace", "faults")

    def __init__(
        self,
        rank: int,
        engine: Engine,
        network: Network,
        machine: MachineSpec,
        trace: TraceRecorder,
        faults=None,
    ) -> None:
        self.rank = int(rank)
        self.engine = engine
        self.network = network
        self.machine = machine
        self.trace = trace
        #: Optional :class:`repro.faults.FaultInjector` (None = no faults).
        self.faults = faults

    @property
    def now(self) -> float:
        return self.engine.now

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def compute(self, flops: float, tid: int | None = None):
        """Run ``flops`` of kernel work; optionally record a task id.

        Under a fault plan, a stall window covering the start freezes the
        rank until the window ends (recorded as IDLE — the core is up but
        making no progress) before the kernel runs. Stalls gate task
        *starts*; a window opening mid-kernel does not stretch it
        (documented approximation, same spirit as sampling variability at
        task start).
        """
        check_non_negative("flops", flops)
        engine = self.engine
        if self.faults is not None:
            stall_end = self.faults.stall_until(self.rank, engine.now)
            if stall_end > engine.now:
                stall_start = engine.now
                yield pooled_timeout(stall_end - stall_start)
                self.trace.record(self.rank, IDLE, stall_start, engine.now)
        start = engine.now
        duration = self.machine.compute_seconds(self.rank, flops, start)
        yield pooled_timeout(duration)
        self.trace.record_compute(self.rank, tid, start, engine.now)

    def overhead_delay(self, seconds: float):
        """Pure local scheduling overhead (queue manipulation, bookkeeping)."""
        engine = self.engine
        start = engine.now
        yield pooled_timeout(check_non_negative("seconds", seconds))
        self.trace.record(self.rank, OVERHEAD, start, engine.now)

    # ------------------------------------------------------------------
    # Data movement (traced as COMM; dead-target waits traced as FAILED)
    # ------------------------------------------------------------------
    # Each wrapper is a plain function returning the network's *traced*
    # generator (tracing folded into the cost shape): the ``yield from``
    # chain is one frame shorter than a delegating wrapper generator, on
    # paths that run millions of times per study. Failure accounting is
    # unchanged — the traced generators record FAILED before raising.
    def get(self, owner: int, nbytes: int):
        net = self.network
        net.stats.gets += 1
        return net.rma_traced(self.rank, owner, nbytes, self.trace, COMM)

    def put(self, owner: int, nbytes: int):
        net = self.network
        net.stats.puts += 1
        return net.rma_traced(self.rank, owner, nbytes, self.trace, COMM)

    def accumulate(self, owner: int, nbytes: int):
        return self.network.accumulate_traced(
            self.rank, owner, nbytes, self.trace, COMM
        )

    # ------------------------------------------------------------------
    # Scheduling machinery (traced as OVERHEAD)
    # ------------------------------------------------------------------
    def fetch_add(self, home: int, cell: SharedCell, amount: int = 1):
        return self.network.fetch_add_traced(
            self.rank, home, cell, amount, self.trace, OVERHEAD
        )

    def protocol_get(self, owner: int, nbytes: int):
        """One-sided read used by scheduling protocols (traced OVERHEAD)."""
        net = self.network
        net.stats.gets += 1
        return net.rma_traced(self.rank, owner, nbytes, self.trace, OVERHEAD)

    def protocol_put(self, owner: int, nbytes: int):
        """One-sided write used by scheduling protocols (traced OVERHEAD)."""
        net = self.network
        net.stats.puts += 1
        return net.rma_traced(self.rank, owner, nbytes, self.trace, OVERHEAD)

    def send(self, dst: int, tag: Any, payload: Any = None, nbytes: int = 64):
        engine = self.engine
        start = engine.now
        try:
            yield from self.network.send(self.rank, dst, tag, payload, nbytes)
        except RankFailedError:
            self.trace.record(self.rank, FAILED, start, engine.now)
            raise
        self.trace.record(self.rank, OVERHEAD, start, engine.now)

    def recv(self, tag: Any = None, traced: bool = True, timeout: float | None = None):
        """Blocking receive.

        With ``traced=True`` the wait is accounted as protocol OVERHEAD;
        with ``traced=False`` it is recorded as explicit IDLE (a rank
        parked waiting for work/termination) so breakdowns still sum to
        wall-clock. With ``timeout`` set, returns ``None`` after that
        many simulated seconds if nothing matching arrived — the
        heartbeat-period parking primitive of fault-tolerant models.
        """
        start = self.engine.now
        message = yield from self.network.recv(self.rank, tag, timeout=timeout)
        self.trace.record(self.rank, OVERHEAD if traced else IDLE, start, self.engine.now)
        return message

    def try_recv(self, tag: Any = None) -> Message | None:
        """Non-blocking mailbox poll (costs no simulated time)."""
        return self.network.try_recv(self.rank, tag)

    def sleep(self, seconds: float):
        """Deliberate wait (backoff, parking); recorded as explicit IDLE."""
        start = self.engine.now
        yield pooled_timeout(check_non_negative("seconds", seconds))
        self.trace.record(self.rank, IDLE, start, self.engine.now)
