"""Per-rank runtime facade: traced compute and communication.

A :class:`RankContext` is what an execution model's rank process actually
talks to. It binds together the rank id, the simulation engine, the network,
the machine's compute-speed model, and the trace recorder, exposing
generator methods that both *cost* simulated time and *account* it to the
right trace category.
"""

from __future__ import annotations

from typing import Any

from repro.simulate.engine import Engine, Timeout
from repro.simulate.machine import MachineSpec
from repro.simulate.network import Message, Network, SharedCell
from repro.runtime.trace import COMM, COMPUTE, OVERHEAD, TraceRecorder
from repro.util import check_non_negative


class RankContext:
    """One simulated rank's view of the machine."""

    def __init__(
        self,
        rank: int,
        engine: Engine,
        network: Network,
        machine: MachineSpec,
        trace: TraceRecorder,
    ) -> None:
        self.rank = int(rank)
        self.engine = engine
        self.network = network
        self.machine = machine
        self.trace = trace

    @property
    def now(self) -> float:
        return self.engine.now

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def compute(self, flops: float, tid: int | None = None):
        """Run ``flops`` of kernel work; optionally record a task id."""
        check_non_negative("flops", flops)
        start = self.now
        duration = self.machine.compute_seconds(self.rank, flops, start)
        yield Timeout(duration)
        self.trace.record(self.rank, COMPUTE, start, self.now)
        if tid is not None:
            self.trace.record_task(tid, self.rank, start, self.now)

    def overhead_delay(self, seconds: float):
        """Pure local scheduling overhead (queue manipulation, bookkeeping)."""
        start = self.now
        yield Timeout(check_non_negative("seconds", seconds))
        self.trace.record(self.rank, OVERHEAD, start, self.now)

    # ------------------------------------------------------------------
    # Data movement (traced as COMM)
    # ------------------------------------------------------------------
    def get(self, owner: int, nbytes: int):
        start = self.now
        yield from self.network.get(self.rank, owner, nbytes)
        self.trace.record(self.rank, COMM, start, self.now)

    def put(self, owner: int, nbytes: int):
        start = self.now
        yield from self.network.put(self.rank, owner, nbytes)
        self.trace.record(self.rank, COMM, start, self.now)

    def accumulate(self, owner: int, nbytes: int):
        start = self.now
        yield from self.network.accumulate(self.rank, owner, nbytes)
        self.trace.record(self.rank, COMM, start, self.now)

    # ------------------------------------------------------------------
    # Scheduling machinery (traced as OVERHEAD)
    # ------------------------------------------------------------------
    def fetch_add(self, home: int, cell: SharedCell, amount: int = 1):
        start = self.now
        value = yield from self.network.fetch_add(self.rank, home, cell, amount)
        self.trace.record(self.rank, OVERHEAD, start, self.now)
        return value

    def protocol_get(self, owner: int, nbytes: int):
        """One-sided read used by scheduling protocols (traced OVERHEAD)."""
        start = self.now
        yield from self.network.get(self.rank, owner, nbytes)
        self.trace.record(self.rank, OVERHEAD, start, self.now)

    def protocol_put(self, owner: int, nbytes: int):
        """One-sided write used by scheduling protocols (traced OVERHEAD)."""
        start = self.now
        yield from self.network.put(self.rank, owner, nbytes)
        self.trace.record(self.rank, OVERHEAD, start, self.now)

    def send(self, dst: int, tag: Any, payload: Any = None, nbytes: int = 64):
        start = self.now
        yield from self.network.send(self.rank, dst, tag, payload, nbytes)
        self.trace.record(self.rank, OVERHEAD, start, self.now)

    def recv(self, tag: Any = None, traced: bool = True):
        """Blocking receive.

        With ``traced=True`` the wait is accounted as protocol OVERHEAD;
        with ``traced=False`` it is left unaccounted (i.e. reported as
        idle time — used when a rank parks waiting for work/termination).
        """
        start = self.now
        message = yield from self.network.recv(self.rank, tag)
        if traced:
            self.trace.record(self.rank, OVERHEAD, start, self.now)
        return message

    def try_recv(self, tag: Any = None) -> Message | None:
        """Non-blocking mailbox poll (costs no simulated time)."""
        return self.network.try_recv(self.rank, tag)

    def sleep(self, seconds: float):
        """Untraced wait; the remainder shows up as idle time."""
        yield Timeout(check_non_negative("seconds", seconds))
