"""Simulated collective operations over the two-sided message layer.

SCF iterations are separated by machine-wide synchronization (Fock
reduction, density broadcast, convergence check); these collectives model
that cost. All are log-depth algorithms built from the network's active
messages, so their latencies emerge from the same LogGP model as
everything else:

- :func:`barrier` — dissemination barrier, ``ceil(log2 P)`` rounds, any P.
- :func:`reduce` / :func:`broadcast` — binomial trees rooted at 0.
- :func:`allreduce` — reduce + broadcast (payload reduced at each merge).

Every rank must drive the *same* collective with the same ``epoch`` tag;
epochs keep back-to-back collectives from stealing each other's messages.
"""

from __future__ import annotations

from repro.runtime.comm import RankContext
from repro.util import ConfigurationError, check_positive


def _check_world(ctx: RankContext, n_ranks: int) -> None:
    check_positive("n_ranks", n_ranks)
    if not 0 <= ctx.rank < n_ranks:
        raise ConfigurationError(f"rank {ctx.rank} outside world of {n_ranks}")


def barrier(ctx: RankContext, n_ranks: int, epoch: int = 0):
    """Dissemination barrier: round k pairs rank r with r +- 2^k."""
    _check_world(ctx, n_ranks)
    if n_ranks == 1:
        yield from ctx.sleep(0.0)
        return
    round_no = 0
    distance = 1
    while distance < n_ranks:
        peer_to = (ctx.rank + distance) % n_ranks
        peer_from = (ctx.rank - distance) % n_ranks
        tag = ("barrier", epoch, round_no)
        yield from ctx.send(peer_to, tag)
        yield from ctx.recv(tag)
        # distinct-source check is implicit: only peer_from sends this tag
        # to us in this round (all ranks run the same schedule).
        del peer_from
        distance *= 2
        round_no += 1


def _tree_children(rank: int, n_ranks: int) -> list[int]:
    """Children of ``rank`` in the binomial tree rooted at 0."""
    children = []
    bit = 1
    # rank owns children rank|bit for bits above its lowest set bit.
    while True:
        child = rank | bit
        if rank & bit:
            break
        if child != rank and child < n_ranks:
            children.append(child)
        bit <<= 1
        if bit >= n_ranks:
            break
    return children


def _tree_parent(rank: int) -> int:
    """Parent of ``rank`` in the binomial tree rooted at 0."""
    return rank & (rank - 1)


def reduce(ctx: RankContext, n_ranks: int, nbytes: int, epoch: int = 0):
    """Binomial-tree reduction to rank 0; payload of ``nbytes`` per link.

    Merging two contributions costs ``nbytes / accumulate_bandwidth`` of
    local compute at the receiving rank (traced as overhead).
    """
    _check_world(ctx, n_ranks)
    if n_ranks == 1:
        yield from ctx.sleep(0.0)
        return
    model = ctx.network.model
    merge_time = nbytes / model.accumulate_bandwidth
    for child in sorted(_tree_children(ctx.rank, n_ranks), reverse=True):
        yield from ctx.recv(("reduce", epoch, child))
        yield from ctx.overhead_delay(merge_time)
    if ctx.rank != 0:
        yield from ctx.send(
            _tree_parent(ctx.rank), ("reduce", epoch, ctx.rank), nbytes=nbytes
        )


def broadcast(ctx: RankContext, n_ranks: int, nbytes: int, epoch: int = 0):
    """Binomial-tree broadcast from rank 0."""
    _check_world(ctx, n_ranks)
    if n_ranks == 1:
        yield from ctx.sleep(0.0)
        return
    if ctx.rank != 0:
        yield from ctx.recv(("bcast", epoch, ctx.rank))
    # Forward to children from the largest subtree down so the deepest
    # branches start earliest.
    for child in sorted(_tree_children(ctx.rank, n_ranks), reverse=True):
        yield from ctx.send(child, ("bcast", epoch, child), nbytes=nbytes)


def allreduce(ctx: RankContext, n_ranks: int, nbytes: int, epoch: int = 0):
    """Reduce-to-0 then broadcast (2 log P depth, any P)."""
    yield from reduce(ctx, n_ranks, nbytes, epoch)
    yield from broadcast(ctx, n_ranks, nbytes, epoch)


def collective_cost(
    collective,
    machine,
    nbytes: int = 0,
) -> float:
    """Simulated wall time of one collective on an otherwise idle machine.

    Builds a throwaway engine/network, runs ``collective`` on every rank,
    and returns the completion time — the per-iteration synchronization
    cost an SCF driver would add between Fock builds.
    """
    from repro.runtime.trace import TraceRecorder
    from repro.simulate.engine import Engine
    from repro.simulate.network import Network

    engine = Engine()
    node_of = machine.node_of if machine.cores_per_node is not None else None
    network = Network(engine, machine.network, machine.n_ranks, node_of)
    trace = TraceRecorder(machine.n_ranks)
    for rank in range(machine.n_ranks):
        ctx = RankContext(rank, engine, network, machine, trace)
        if nbytes:
            engine.process(collective(ctx, machine.n_ranks, nbytes), name=f"coll{rank}")
        else:
            engine.process(collective(ctx, machine.n_ranks), name=f"coll{rank}")
    return engine.run()
