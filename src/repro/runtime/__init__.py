"""Global-Arrays-style distributed runtime over the simulated network.

This layer gives execution models the abstractions the paper's kernel was
written against:

- :mod:`repro.runtime.trace` -- per-rank activity accounting
  (compute / communication / runtime-overhead / idle), the data behind the
  utilization-breakdown experiment E2.
- :mod:`repro.runtime.comm` -- :class:`RankContext`, the per-rank facade
  that wraps network operations with trace recording and speed-aware
  compute.
- :mod:`repro.runtime.garrays` -- distributed blocked matrices with
  ``get``/``accumulate`` on blocks and pluggable block->rank distributions.
- :mod:`repro.runtime.counter` -- the NXTVAL-style global shared counter.
"""

from repro.runtime.trace import TraceRecorder, COMPUTE, COMM, OVERHEAD
from repro.runtime.comm import RankContext
from repro.runtime.garrays import BlockDistribution, GlobalBlockedMatrix
from repro.runtime.counter import GlobalCounter

__all__ = [
    "TraceRecorder",
    "COMPUTE",
    "COMM",
    "OVERHEAD",
    "RankContext",
    "BlockDistribution",
    "GlobalBlockedMatrix",
    "GlobalCounter",
]
