"""Distributed blocked matrices (Global-Arrays style).

The density and Fock matrices live distributed across ranks, blocked by the
task graph's :class:`~repro.chemistry.basis.BlockStructure`. This module
models their *placement and movement costs* — block ownership and the bytes
of each ``get``/``accumulate`` — which is all the scheduling study needs
(the actual numerics are validated separately by replaying assignments
through the real kernel).

Ownership also drives *locality*: balancers such as semi-matching restrict
tasks to ranks that own part of their footprint, cutting remote traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chemistry.basis import BlockStructure
from repro.chemistry.tasks import BlockRef
from repro.runtime.comm import RankContext
from repro.util import ConfigurationError, check_positive


@dataclass(frozen=True)
class BlockDistribution:
    """Maps a 2-D block coordinate to its owning rank.

    Attributes:
        n_blocks: blocks per matrix dimension.
        n_ranks: rank count.
        scheme: ``"cyclic"`` (row-major round-robin over block pairs,
            the Global Arrays default for irregular access) or
            ``"row"`` (contiguous row-block panels per rank).
    """

    n_blocks: int
    n_ranks: int
    scheme: str = "cyclic"

    def __post_init__(self) -> None:
        check_positive("n_blocks", self.n_blocks)
        check_positive("n_ranks", self.n_ranks)
        if self.scheme not in ("cyclic", "row"):
            raise ConfigurationError(f"unknown distribution scheme {self.scheme!r}")

    def owner(self, ref: BlockRef) -> int:
        i, j = ref
        if not (0 <= i < self.n_blocks and 0 <= j < self.n_blocks):
            raise ConfigurationError(
                f"block {ref} out of range for {self.n_blocks} blocks"
            )
        if self.scheme == "cyclic":
            return (i * self.n_blocks + j) % self.n_ranks
        rows_per_rank = -(-self.n_blocks // self.n_ranks)  # ceil division
        return min(i // rows_per_rank, self.n_ranks - 1)

    def owner_matrix(self) -> np.ndarray:
        """``(n_blocks, n_blocks)`` owner map (for balancer vectorization)."""
        nb = self.n_blocks
        if self.scheme == "cyclic":
            lin = np.arange(nb * nb, dtype=np.int64).reshape(nb, nb)
            return lin % self.n_ranks
        rows_per_rank = -(-nb // self.n_ranks)  # ceil division
        row_owner = np.minimum(
            np.arange(nb, dtype=np.int64) // rows_per_rank, self.n_ranks - 1
        )
        return np.repeat(row_owner, nb).reshape(nb, nb)


class GlobalBlockedMatrix:
    """A distributed blocked matrix with traced block get/accumulate.

    Block ownership and byte counts are precomputed into dense lookup
    tables at construction (`n_blocks**2` entries) — the per-task hot path
    is then two list indexes instead of a validated modular-arithmetic
    call per block reference.
    """

    __slots__ = ("name", "blocks", "distribution", "failover", "_owners", "_nbytes")

    def __init__(
        self,
        name: str,
        blocks: BlockStructure,
        distribution: BlockDistribution,
    ) -> None:
        if distribution.n_blocks != blocks.n_blocks:
            raise ConfigurationError(
                f"distribution covers {distribution.n_blocks} blocks, "
                f"structure has {blocks.n_blocks}"
            )
        self.name = name
        self.blocks = blocks
        self.distribution = distribution
        #: Optional rank-redirection hook installed by fault-tolerant
        #: harnesses: maps the nominal owner to a live replica holder when
        #: the owner has crashed (Callable[[int], int]).
        self.failover = None
        n = blocks.n_blocks
        owner = distribution.owner
        self._owners = [[owner((i, j)) for j in range(n)] for i in range(n)]
        size = blocks.block_size
        sizes = [size(i) for i in range(n)]
        self._nbytes = [[si * sj * 8 for sj in sizes] for si in sizes]

    def owner(self, ref: BlockRef) -> int:
        i, j = ref
        nominal = self._owners[i][j]
        if self.failover is None:
            return nominal
        return self.failover(nominal)

    def nbytes(self, ref: BlockRef) -> int:
        i, j = ref
        return self._nbytes[i][j]

    def get(self, ctx: RankContext, ref: BlockRef):
        """Fetch one block into ``ctx``'s local buffer (traced COMM)."""
        i, j = ref
        owner = self._owners[i][j]
        if self.failover is not None:
            owner = self.failover(owner)
        return ctx.get(owner, self._nbytes[i][j])

    def accumulate(self, ctx: RankContext, ref: BlockRef):
        """Accumulate a local contribution into one block (traced COMM)."""
        i, j = ref
        owner = self._owners[i][j]
        if self.failover is not None:
            owner = self.failover(owner)
        return ctx.accumulate(owner, self._nbytes[i][j])
