"""repro: execution-model case study on a computational chemistry kernel.

A from-scratch reproduction of *"On the Impact of Execution Models: A Case
Study in Computational Chemistry"* (IPDPSW 2015): a Hartree-Fock Fock-build
task kernel, a discrete-event HPC cluster simulator with a Global-Arrays
style one-sided runtime, four families of execution models (static,
inspector-executor, centralized dynamic counter, distributed work stealing,
persistence-based), and semi-matching / hypergraph-partitioning / greedy
load balancers — plus the benchmark harness that regenerates the paper's
evaluation.

Typical entry points (the :mod:`repro.api` facade is the stable surface):

>>> from repro import api
>>> problem = api.ScfProblem.build(api.water_cluster(4), block_size=8)
>>> config = api.StudyConfig(models=("static_block", "work_stealing"),
...                          n_ranks=(64,))
>>> report = api.run_study(config, problem)
>>> cached = api.sweep(config, problem, jobs=4,
...                    cache=api.default_cache_dir())  # parallel + cached
"""

from repro.chemistry import (
    Molecule,
    water_cluster,
    linear_alkane,
    random_cluster,
    ScfProblem,
    run_scf,
)

__version__ = "1.0.0"

__all__ = [
    "Molecule",
    "water_cluster",
    "linear_alkane",
    "random_cluster",
    "ScfProblem",
    "run_scf",
    "__version__",
]
