"""Persistent study service: HTTP job API over the sweep orchestrator.

``python -m repro serve`` runs the daemon; clients POST
:class:`~repro.core.jobspec.JobSpec` JSON to ``/v1/jobs`` and stream
NDJSON result rows as cells settle. See ``docs/service.md``.
"""

from repro.service.jobs import Job, JobManager, QueueFull
from repro.service.router import AUTO, BackendRouter
from repro.service.server import ServiceHandler, StudyService, wait_ready

__all__ = [
    "AUTO",
    "BackendRouter",
    "Job",
    "JobManager",
    "QueueFull",
    "ServiceHandler",
    "StudyService",
    "wait_ready",
]
