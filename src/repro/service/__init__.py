"""Persistent study service: HTTP job API over the sweep orchestrator.

``python -m repro serve`` runs the daemon; clients POST
:class:`~repro.core.jobspec.JobSpec` JSON to ``/v1/jobs`` and stream
NDJSON result rows as cells settle. ``repro submit`` wraps
:class:`ServiceClient` for the command line. See ``docs/service.md``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Draining, Job, JobManager, QueueFull
from repro.service.retention import Janitor, RetentionPolicy
from repro.service.router import AUTO, BackendRouter
from repro.service.server import ServiceHandler, StudyService, wait_ready

__all__ = [
    "AUTO",
    "BackendRouter",
    "Draining",
    "Janitor",
    "Job",
    "JobManager",
    "QueueFull",
    "RetentionPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceHandler",
    "StudyService",
    "wait_ready",
]
