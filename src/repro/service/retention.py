"""Retention for the study service: TTL garbage collection of job state.

A long-lived daemon accretes three kinds of state per finished job: the
JSON job record under ``<state_dir>/jobs/``, the sweep's checkpoint
journal under ``<state_dir>/cache/journal/``, and the job's cell results
in the shared content-addressed cache. None of it expires on its own —
PR 7's service would grow its state dir forever. This module adds the
missing half of the lifecycle:

- :class:`RetentionPolicy` — declarative knobs: how long terminal job
  records live (``ttl_s``), how often the janitor wakes
  (``interval_s``).
- :class:`Janitor` — a daemon thread that periodically expires terminal
  jobs past their TTL: the record, its journal, and any cache entries
  no *surviving* job references. Jobs with live row streams
  (:meth:`~repro.service.jobs.Job.active_streams`) are skipped — GC
  never truncates a reader.
- **Crash-safe two-phase delete.** Each expiry first drops the job from
  the manager (so no new stream can attach), then writes a *tombstone*
  (``<id>.tomb``) listing every path to remove, fsyncs it, removes the
  paths, and finally removes the tombstone. A crash at any point leaves
  either a resurrectable job (nothing deleted yet) or a tombstone that
  :func:`finish_tombstones` completes on the next startup — never a
  half-deleted job that recovery would half-resurrect.

Cache deletion is *reference-counted by job record*: an entry is only
removed when no surviving record's cell list names its key. Records that
carry no cell list (pre-retention records, drained jobs) conservatively
pin nothing — worst case a shared entry is deleted and one future cell
recomputes; the cache is a performance artifact, never a correctness
one.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

#: Tombstone marker suffix (sits next to job records in ``jobs/``).
TOMBSTONE_SUFFIX = ".tomb"

#: Tombstone schema version.
TOMBSTONE_VERSION = 1


@dataclass(frozen=True)
class RetentionPolicy:
    """Retention knobs for one daemon.

    Attributes:
        ttl_s: seconds a *terminal* job's state lives after it finishes;
            None disables garbage collection entirely (the pre-retention
            behaviour).
        interval_s: janitor wake period. Expiry latency is at most
            ``ttl_s + interval_s``.
    """

    ttl_s: float | None = None
    interval_s: float = 30.0

    def validate(self) -> "RetentionPolicy":
        from repro.core.jobspec import JobSpecError

        if self.ttl_s is not None and self.ttl_s < 0:
            raise JobSpecError(
                "retention.ttl_s", f"must be >= 0 seconds, got {self.ttl_s!r}"
            )
        if self.interval_s <= 0:
            raise JobSpecError(
                "retention.interval_s",
                f"must be positive seconds, got {self.interval_s!r}",
            )
        return self


def finish_tombstones(
    jobs_dir: "str | os.PathLike",
    *,
    log: Callable[[str], None] | None = None,
) -> int:
    """Complete any interrupted two-phase deletes; returns count finished.

    Called by the manager before recovery scans job records, so a crash
    mid-GC can never resurrect the record half of a half-deleted job.
    A malformed tombstone is itself removed (its paths are unknown; the
    worst case is an expired job surviving one more TTL cycle).
    """
    finished = 0
    jobs_dir = pathlib.Path(jobs_dir)
    for tomb in sorted(jobs_dir.glob(f"*{TOMBSTONE_SUFFIX}")):
        try:
            record = json.loads(tomb.read_text(encoding="utf-8"))
            paths = [pathlib.Path(p) for p in record.get("paths", [])]
        except (OSError, ValueError):
            paths = []
        for path in paths:
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            except OSError:
                pass
        try:
            tomb.unlink()
        except OSError:
            continue
        finished += 1
        if log is not None:
            log(f"finished interrupted GC tombstone {tomb.name}")
    return finished


class Janitor:
    """TTL garbage collector for one :class:`~repro.service.jobs.JobManager`.

    Args:
        manager: the owning job manager (records, cache, journal layout).
        policy: what to expire and how often to look.
        log: optional ``print``-like callable for GC lines.

    Start with :meth:`start` (daemon thread) or drive synchronously with
    :meth:`gc_now` (tests and the chaos harness do the latter).
    """

    def __init__(
        self,
        manager: Any,
        policy: RetentionPolicy,
        *,
        log: Callable[[str], None] | None = None,
    ) -> None:
        self.manager = manager
        self.policy = policy.validate()
        self.log = log if log is not None else (lambda _msg: None)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.removed_jobs = 0  #: lifetime expiry count (observability)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.policy.ttl_s is None or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-retention-janitor", daemon=True
        )
        self._thread.start()

    def close(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.policy.interval_s):
            try:
                self.gc_now()
            except Exception as exc:  # noqa: BLE001 - janitor must survive
                self.log(f"retention pass failed: {type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    def gc_now(self, now: float | None = None) -> dict[str, int]:
        """One synchronous retention pass; returns what it removed.

        Expiry predicate: terminal, ``finished_at`` older than the TTL,
        and no live row stream. Each expired job is removed via the
        two-phase tombstone protocol (see module docstring).
        """
        if self.policy.ttl_s is None:
            return {"jobs": 0, "journals": 0, "cache_entries": 0}
        now = time.time() if now is None else now
        jobs = self.manager.list_jobs()
        expired = [
            job
            for job in jobs
            if job.terminal
            and job.finished_at
            and now - job.finished_at >= self.policy.ttl_s
            and job.active_streams == 0
        ]
        if not expired:
            return {"jobs": 0, "journals": 0, "cache_entries": 0}
        expired_ids = {job.id for job in expired}
        # Cache keys still referenced by any surviving record stay.
        live_keys: set[str] = set()
        for job in jobs:
            if job.id in expired_ids:
                continue
            live_keys.update(self._cell_keys(job))
        removed = {"jobs": 0, "journals": 0, "cache_entries": 0}
        for job in expired:
            counts = self._expire(job, live_keys)
            if counts is None:
                continue
            for name, value in counts.items():
                removed[name] += value
        self.removed_jobs += removed["jobs"]
        if removed["jobs"]:
            self.log(
                f"retention: expired {removed['jobs']} job(s), "
                f"{removed['journals']} journal(s), "
                f"{removed['cache_entries']} cache entr(ies)"
            )
        return removed

    # ------------------------------------------------------------------
    @staticmethod
    def _cell_keys(job: Any) -> set[str]:
        return {
            cell.get("key", "")
            for cell in job.cells
            if isinstance(cell, dict) and cell.get("key")
        }

    def _paths_for(self, job: Any, live_keys: set[str]) -> dict[str, list[pathlib.Path]]:
        """Everything one expired job owns exclusively."""
        from repro.core.cache import ResultCache
        from repro.core.journal import SweepJournal

        paths: dict[str, list[pathlib.Path]] = {
            "jobs": [self.manager.record_path(job.id)],
            "journals": [],
            "cache_entries": [],
        }
        keys = self._cell_keys(job)
        if keys:
            # The journal file is derived from the sweep's cell keys —
            # identical grids share a job_key (hence a record), so an
            # expired job's journal has no other owner.
            journal = SweepJournal.for_sweep(
                self.manager.cache_dir / "journal", sorted(keys)
            )
            if journal.path.exists():
                paths["journals"].append(journal.path)
            cache = ResultCache(self.manager.cache_dir)
            for key in sorted(keys - live_keys):
                entry = cache.path_for(key)
                if entry.exists():
                    paths["cache_entries"].append(entry)
        return paths

    def _expire(
        self, job: Any, live_keys: set[str]
    ) -> dict[str, int] | None:
        """Two-phase delete of one job; None if it must be kept.

        Order matters for crash safety: (1) drop the job from the
        manager — atomic with the live-stream check, after which no new
        reader can attach; (2) durably write the tombstone naming every
        path; (3) remove the paths; (4) remove the tombstone. A crash
        before (2) resurrects the job wholesale on restart (GC simply
        retries); a crash after (2) is completed by
        :func:`finish_tombstones` before recovery reads records.
        """
        if not self.manager.forget(job.id):
            return None  # a stream attached since we looked; next pass
        paths = self._paths_for(job, live_keys)
        tomb = self.manager.record_path(job.id).with_suffix(TOMBSTONE_SUFFIX)
        record = {
            "v": TOMBSTONE_VERSION,
            "id": job.id,
            "paths": [str(p) for group in paths.values() for p in group],
        }
        with open(tomb, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True))
            fh.flush()
            os.fsync(fh.fileno())
        for group in paths.values():
            for path in group:
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
        try:
            tomb.unlink()
        except OSError:
            pass
        return {name: len(group) for name, group in paths.items()}
