"""Job lifecycle for the study service: queue, run, stream, persist.

One :class:`JobManager` owns every job the daemon has ever accepted:

- **Submit-side dedupe.** A job's identity is its spec's content address
  (:meth:`~repro.core.jobspec.JobSpec.job_key`), so resubmitting an
  identical spec returns the *same* job — queued, running, or done —
  without touching the queue. A million identical POSTs cost one
  simulation; the cell-level result cache then dedupes even partially
  overlapping grids below that.
- **Bounded sequential execution.** Jobs run one at a time on a single
  worker thread (each job already fans its cells across the executor's
  workers; stacking concurrent sweeps would just thrash the host), and
  the queue is bounded — past the limit, submission fails fast with a
  structured error rather than buffering unboundedly.
- **Durability.** Every job writes a JSON record under
  ``<state_dir>/jobs/`` (spec + status + rows when finished), and every
  sweep checkpoints through the journal machinery from PR 4. A daemon
  kill + restart reloads the records, re-enqueues anything unfinished
  with ``resume=True``, and the journal restores already-computed cells
  bit-for-bit — restart costs only the cells that never settled.
- **Row streaming.** Completed rows are appended (and watchers woken)
  as cells settle, via the sweep's ``on_result`` hook — this is what
  ``GET /v1/jobs/{id}/rows`` serves as NDJSON while the job still runs.
  When the job finishes, the stored rows are replaced by the finished
  report's canonical table (same dicts, canonical (P, model) order).
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.core.cache import ResultCache, atomic_tmp_path
from repro.core.jobspec import JobSpec, JobSpecError
from repro.core.results import result_row
from repro.parallel.supervisor import CellFailure
from repro.service.router import BackendRouter

#: Lifecycle states a job moves through (terminal: done/failed/cancelled).
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled")

#: Job-record schema version for the on-disk JSON files.
RECORD_VERSION = 1


class JobCancelled(Exception):
    """Raised inside a running sweep when its job is cancelled."""


class QueueFull(JobSpecError):
    """The bounded job queue is at capacity; submit again later."""

    def __init__(self, limit: int) -> None:
        super().__init__("queue", f"job queue full ({limit} queued); retry later")


@dataclass
class Job:
    """One accepted study and everything observable about it."""

    id: str
    spec: JobSpec
    status: str = "queued"
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    error: str = ""
    total_cells: int = 0
    completed_cells: int = 0
    cached_cells: int = 0
    failed_cells: int = 0
    executor: str = ""  #: resolved executor spec the job ran (or runs) under
    rows: list[dict[str, Any]] = field(default_factory=list)
    cells: list[dict[str, Any]] = field(default_factory=list)
    failures: list[dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._cancel = threading.Event()

    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    def snapshot(self) -> dict[str, Any]:
        """A consistent status view (what ``GET /v1/jobs/{id}`` returns)."""
        with self._lock:
            return {
                "id": self.id,
                "status": self.status,
                "spec": self.spec.to_json(),
                "executor": self.executor,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "error": self.error,
                "progress": {
                    "total": self.total_cells,
                    "completed": self.completed_cells,
                    "cached": self.cached_cells,
                    "failed": self.failed_cells,
                },
                "cells": list(self.cells),
            }

    # ------------------------------------------------------------------
    def _notify(self) -> None:
        with self._changed:
            self._changed.notify_all()

    def stream_rows(self, poll: float = 0.25) -> Iterator[dict[str, Any]]:
        """Yield row dicts as they land; returns when the job is terminal.

        Safe to call at any point in the job's life: rows already
        recorded are replayed first, then the iterator blocks on the
        job's condition until new rows arrive or the job finishes.
        """
        served = 0
        while True:
            with self._changed:
                while served >= len(self.rows) and not self.terminal:
                    self._changed.wait(timeout=poll)
                batch = self.rows[served:]
                served += len(batch)
                finished = self.terminal and served >= len(self.rows)
            for row in batch:
                yield row
            if finished:
                return


class JobManager:
    """Accepts, queues, executes, and persists jobs for one daemon.

    Args:
        state_dir: the service's durable root — job records under
            ``jobs/``, the shared result cache under ``cache/``, sweep
            journals under ``cache/journal``. The layout matches what
            ``repro study --cache-dir <state_dir>/cache`` produces, so a
            hand-run study pointed there shares cells with the daemon.
        router: backend routing policy (default: local in-process).
        max_queued: bound on jobs waiting to run.
        log: optional ``print``-like callable for lifecycle lines.
    """

    def __init__(
        self,
        state_dir: "str | os.PathLike",
        *,
        router: BackendRouter | None = None,
        max_queued: int = 64,
        log: Callable[[str], None] | None = None,
    ) -> None:
        self.state_dir = pathlib.Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.cache_dir = self.state_dir / "cache"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.router = router if router is not None else BackendRouter()
        self.max_queued = int(max_queued)
        self.log = log if log is not None else (lambda _msg: None)
        self._jobs: dict[str, Job] = {}
        self._queue: list[str] = []
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._recover()
        self._worker = threading.Thread(
            target=self._run_loop, name="repro-job-worker", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Durable job records
    # ------------------------------------------------------------------
    def _record_path(self, job_id: str) -> pathlib.Path:
        return self.jobs_dir / f"{job_id}.json"

    def _persist(self, job: Job) -> None:
        """Write the job's durable record atomically (crash-safe)."""
        record = {
            "v": RECORD_VERSION,
            "id": job.id,
            "spec": job.spec.to_json(),
            "status": job.status,
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
            "error": job.error,
            "executor": job.executor,
            "rows": job.rows if job.terminal else [],
            "failures": job.failures,
        }
        path = self._record_path(job.id)
        tmp = atomic_tmp_path(path)
        try:
            tmp.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _recover(self) -> None:
        """Reload job records; re-enqueue anything the crash interrupted.

        A ``running`` record means the previous daemon died mid-sweep;
        it goes back on the queue and the sweep's journal restores every
        cell that settled before the kill. Malformed records are skipped
        (one lost record = one lost job *description*; the results
        themselves live in the content-addressed cache regardless).
        """
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                if record.get("v") != RECORD_VERSION:
                    continue
                spec = JobSpec.from_json(record["spec"])
                job = Job(
                    id=str(record["id"]),
                    spec=spec,
                    status=str(record.get("status", "queued")),
                    submitted_at=float(record.get("submitted_at", 0.0)),
                    started_at=float(record.get("started_at", 0.0)),
                    finished_at=float(record.get("finished_at", 0.0)),
                    error=str(record.get("error", "")),
                    executor=str(record.get("executor", "")),
                    rows=list(record.get("rows", [])),
                    failures=list(record.get("failures", [])),
                )
            except (OSError, ValueError, KeyError, JobSpecError):
                continue
            if job.status not in JOB_STATUSES:
                continue
            if job.id != job.spec.job_key():
                continue  # record does not match its own spec; distrust it
            if not job.terminal:
                job.status = "queued"
                job.rows = []
                self._queue.append(job.id)
                self.log(f"recovered unfinished job {job.id[:12]} -> requeued")
            self._jobs[job.id] = job
        if self._queue:
            self.log(f"{len(self._queue)} job(s) resumed from {self.jobs_dir}")

    # ------------------------------------------------------------------
    # Public API (what the HTTP layer calls)
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> tuple[Job, bool]:
        """Accept one spec; returns ``(job, deduped)``.

        ``deduped`` is True when an identical spec (same
        :meth:`~repro.core.jobspec.JobSpec.job_key`) was already known —
        the existing job is returned untouched, whatever its state.
        A *cancelled* identical job is revived instead (requeued), since
        cancellation was an operator choice, not a property of the spec.
        """
        normalized = self.router.normalize(spec)
        job_id = spec.job_key()
        with self._lock:
            if self._closed:
                raise JobSpecError("service", "daemon is shutting down")
            existing = self._jobs.get(job_id)
            if existing is not None and existing.status != "cancelled":
                return existing, True
            if len(self._queue) >= self.max_queued:
                raise QueueFull(self.max_queued)
            revived = existing is not None
            job = Job(
                id=job_id,
                spec=spec,
                submitted_at=time.time(),
                executor=self.router.resolve_spec(normalized),
            )
            self._jobs[job_id] = job
            self._queue.append(job_id)
            self._wake.notify_all()
        self._persist(job)
        self.log(
            f"job {job_id[:12]} {'revived' if revived else 'queued'} "
            f"({len(spec.models)} model(s) x ranks {list(spec.ranks)})"
        )
        return job, False

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def cancel(self, job_id: str) -> Job | None:
        """Cancel a job: dequeue if waiting, interrupt if running.

        Already-terminal jobs are returned unchanged (cancel is
        idempotent). Cells that settled before the cancel stay journaled
        and cached — a revived job resumes from them.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.terminal:
                return job
            if job.status == "queued":
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    pass
                job.status = "cancelled"
                job.finished_at = time.time()
            else:  # running: the sweep's callbacks notice the event
                job._cancel.set()
        if job.status == "cancelled":
            self._persist(job)
            job._notify()
        self.log(f"job {job_id[:12]} cancel requested")
        return job

    def result_store(self) -> ResultCache:
        """The shared content-addressed store (artifact fetch endpoint)."""
        return ResultCache(self.cache_dir)

    def stats(self) -> dict[str, int]:
        with self._lock:
            counts = {status: 0 for status in JOB_STATUSES}
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
            counts["queued_depth"] = len(self._queue)
            return counts

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting work and interrupt the running job (if any)."""
        with self._lock:
            self._closed = True
            for job_id in self._queue:
                job = self._jobs[job_id]
                job.status = "cancelled"
                job.finished_at = time.time()
                job._notify()
            cancelled = [self._jobs[j] for j in self._queue]
            self._queue.clear()
            for job in self._jobs.values():
                if job.status == "running":
                    job._cancel.set()
            self._wake.notify_all()
        for job in cancelled:
            self._persist(job)
        self._worker.join(timeout=timeout)

    # ------------------------------------------------------------------
    # The worker loop
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._closed:
                    self._wake.wait(timeout=0.5)
                if self._closed and not self._queue:
                    return
                job = self._jobs[self._queue.pop(0)]
            try:
                self._run_job(job)
            except Exception as exc:  # the loop must survive anything
                with job._lock:
                    if not job.terminal:
                        job.status = "failed"
                        job.error = f"{type(exc).__name__}: {exc}"
                        job.finished_at = time.time()
                self._persist(job)
                job._notify()
                self.log(f"job {job.id[:12]} failed: {job.error}")

    def _run_job(self, job: Job) -> None:
        from repro import api

        spec = self.router.normalize(job.spec)
        executor, owned = self.router.executor_for(spec)
        with job._lock:
            job.status = "running"
            job.started_at = time.time()
            job.executor = self.router.resolve_spec(spec)
            job.total_cells = len(spec.models) * len(spec.ranks)
        self._persist(job)
        job._notify()
        self.log(f"job {job.id[:12]} running on {job.executor!r}")

        # Whether row dicts carry the fault-accounting columns is a
        # whole-table property in the finished report; for streaming we
        # decide it up front from the spec (a fault plan present = fault
        # columns present). The terminal rows are rebuilt from the
        # report, so the stored table is canonical regardless.
        faulty = bool(spec.faults)

        def on_result(index, cell, key, outcome, how):
            if job._cancel.is_set():
                raise JobCancelled(job.id)
            with job._lock:
                job.completed_cells += 1
                if how in ("cached", "resumed"):
                    job.cached_cells += 1
                cell_info = {
                    "label": cell.label,
                    "key": key or "",
                    "status": how,
                }
                job.cells.append(cell_info)
                if isinstance(outcome, CellFailure):
                    job.failed_cells += 1
                    job.failures.append(
                        {
                            "label": outcome.label,
                            "error": f"{outcome.error_type}: {outcome.message}",
                            "attempts": outcome.attempts,
                        }
                    )
                else:
                    job.rows.append(result_row(outcome, faulty=faulty))
            job._notify()

        def progress(event):
            if job._cancel.is_set():
                raise JobCancelled(job.id)

        try:
            report = api.run_job(
                spec,
                executor=executor,
                on_result=on_result,
                progress=progress,
                cache=ResultCache(self.cache_dir) if spec.cache else None,
                journal=str(self.cache_dir / "journal"),
                resume=True,
            )
        except JobCancelled:
            with job._lock:
                job.status = "cancelled"
                job.finished_at = time.time()
            self.log(f"job {job.id[:12]} cancelled mid-run")
        else:
            with job._lock:
                # Replace streamed rows with the finished report's
                # canonical table: same dicts, canonical order, and the
                # fault-column decision made the way StudyReport makes it.
                job.rows = report.rows()
                job.status = "done" if report.complete else "failed"
                if not report.complete:
                    job.error = (
                        f"{len(report.failures)} cell(s) quarantined"
                    )
                job.finished_at = time.time()
        finally:
            if owned:
                close = getattr(executor, "close", None)
                if callable(close):
                    close()
        self._persist(job)
        job._notify()
        self.log(f"job {job.id[:12]} {job.status}")
