"""Job lifecycle for the study service: schedule, run, stream, persist.

One :class:`JobManager` owns every job the daemon has ever accepted:

- **Submit-side dedupe.** A job's identity is its spec's content address
  (:meth:`~repro.core.jobspec.JobSpec.job_key`), so resubmitting an
  identical spec returns the *same* job — queued, running, or done —
  without touching the queue. A million identical POSTs cost one
  simulation; the cell-level result cache then dedupes even partially
  overlapping grids below that.
- **Concurrent, weighted execution.** A pool of runner threads executes
  jobs concurrently under an admission budget: each job weighs
  ``max(1, jobs)`` (its worker-process fan-out) against a host-derived
  ``capacity``, so two 2-process sweeps overlap while a pile of wide
  sweeps cannot oversubscribe the machine. Promotion is strict FIFO —
  only the queue head runs next — so wide jobs cannot be starved by a
  stream of narrow ones. The queue itself is bounded; past the limit,
  submission fails fast with a structured :class:`QueueFull` (surfaced
  by the HTTP layer as 503 + ``Retry-After``) rather than buffering
  unboundedly.
- **Deadlines.** ``spec.deadline_s`` bounds a job's whole wall clock:
  the budget is converted to an absolute instant at start and enforced
  executor-deep (the local pool kills in-flight cells; serial and
  distributed stop between cells). An expired job reaches the terminal
  ``failed`` state with an error starting ``"deadline"``; its settled
  cells stay journaled, so resubmission resumes rather than restarts.
- **Durability.** Every job writes a JSON record under
  ``<state_dir>/jobs/`` (spec + status + cells + rows when finished),
  and every sweep checkpoints through the journal machinery from PR 4.
  A daemon kill + restart reloads the records, re-enqueues anything
  unfinished with ``resume=True``, and the journal restores
  already-computed cells bit-for-bit — restart costs only the cells
  that never settled.
- **Graceful drain.** :meth:`JobManager.drain` (the SIGTERM path) flips
  the manager into *draining*: new submissions get a structured
  :class:`Draining` (503 + ``Retry-After``), queued jobs stay queued on
  disk, and running jobs get ``grace`` seconds to finish before being
  interrupted at their next checkpoint and persisted back as
  ``queued`` — so a restarted daemon resumes them journal-consistently.
- **Row streaming.** Completed rows are appended (and watchers woken)
  as cells settle, via the sweep's ``on_result`` hook — this is what
  ``GET /v1/jobs/{id}/rows`` serves as NDJSON while the job still runs.
  When the job finishes, the stored rows are replaced by the finished
  report's canonical table (same dicts, canonical (P, model) order).
  Active streams are refcounted (:meth:`Job.stream_ref`) so the
  retention janitor (:mod:`repro.service.retention`) never deletes a
  record somebody is still reading.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.core.cache import ResultCache, atomic_tmp_path
from repro.core.jobspec import JobSpec, JobSpecError
from repro.core.results import result_row
from repro.parallel.supervisor import CellFailure
from repro.service.router import BackendRouter

#: Lifecycle states a job moves through (terminal: done/failed/cancelled).
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled")

#: Job-record schema version for the on-disk JSON files.
RECORD_VERSION = 1


def default_capacity() -> int:
    """The default weighted admission budget: one slot per host CPU."""
    return max(2, os.cpu_count() or 2)


class JobCancelled(Exception):
    """Raised inside a running sweep when its job is cancelled."""


class JobDrained(Exception):
    """Raised inside a running sweep when the daemon's drain grace ends.

    Unlike :class:`JobCancelled` this is not an operator verdict on the
    job — the job goes back to ``queued`` (in memory and on disk) so a
    restarted daemon resumes it from its journal.
    """


class QueueFull(JobSpecError):
    """The bounded job queue is at capacity; submit again later.

    Carries the scheduler snapshot the HTTP layer serializes into the
    503 body (``queued``/``running``/``capacity``) plus the
    ``Retry-After`` hint in seconds.
    """

    def __init__(
        self,
        limit: int,
        *,
        queued: int = 0,
        running: int = 0,
        capacity: int = 0,
        retry_after: float = 1.0,
    ) -> None:
        super().__init__(
            "queue", f"job queue full ({limit} queued); retry later"
        )
        self.limit = limit
        self.queued = queued
        self.running = running
        self.capacity = capacity
        self.retry_after = retry_after


class Draining(JobSpecError):
    """The daemon is draining for shutdown; submit to its successor."""

    def __init__(
        self,
        *,
        queued: int = 0,
        running: int = 0,
        capacity: int = 0,
        retry_after: float = 2.0,
    ) -> None:
        super().__init__(
            "service", "daemon is draining; retry against the restarted "
            "service"
        )
        self.queued = queued
        self.running = running
        self.capacity = capacity
        self.retry_after = retry_after


@dataclass
class Job:
    """One accepted study and everything observable about it."""

    id: str
    spec: JobSpec
    status: str = "queued"
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    error: str = ""
    total_cells: int = 0
    completed_cells: int = 0
    cached_cells: int = 0
    failed_cells: int = 0
    executor: str = ""  #: resolved executor spec the job ran (or runs) under
    rows: list[dict[str, Any]] = field(default_factory=list)
    cells: list[dict[str, Any]] = field(default_factory=list)
    failures: list[dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._cancel = threading.Event()
        self._streams = 0
        #: Admission weight (the job's worker-process fan-out); set by
        #: the manager at submit/recover time.
        self.weight = max(1, self.spec.jobs)

    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    @property
    def active_streams(self) -> int:
        """Live row-stream subscribers (blocks retention GC while > 0)."""
        return self._streams

    def snapshot(self) -> dict[str, Any]:
        """A consistent status view (what ``GET /v1/jobs/{id}`` returns)."""
        with self._lock:
            return {
                "id": self.id,
                "status": self.status,
                "spec": self.spec.to_json(),
                "executor": self.executor,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "error": self.error,
                "progress": {
                    "total": self.total_cells,
                    "completed": self.completed_cells,
                    "cached": self.cached_cells,
                    "failed": self.failed_cells,
                },
                "cells": list(self.cells),
            }

    # ------------------------------------------------------------------
    def _notify(self) -> None:
        with self._changed:
            self._changed.notify_all()

    @contextlib.contextmanager
    def stream_ref(self) -> Iterator[None]:
        """Refcount a live row stream for the duration of the block.

        The HTTP layer wraps every ``/rows`` response in this, so the
        retention janitor can see (and skip) records that are still
        being read — deleting under a reader would truncate its stream.
        """
        with self._lock:
            self._streams += 1
        try:
            yield
        finally:
            with self._lock:
                self._streams -= 1

    def stream_rows(self, poll: float = 0.25) -> Iterator[dict[str, Any]]:
        """Yield row dicts as they land; returns when the job is terminal.

        Safe to call at any point in the job's life: rows already
        recorded are replayed first, then the iterator blocks on the
        job's condition until new rows arrive or the job finishes.
        """
        served = 0
        while True:
            with self._changed:
                while served >= len(self.rows) and not self.terminal:
                    self._changed.wait(timeout=poll)
                batch = self.rows[served:]
                served += len(batch)
                finished = self.terminal and served >= len(self.rows)
            for row in batch:
                yield row
            if finished:
                return


class JobManager:
    """Accepts, schedules, executes, and persists jobs for one daemon.

    Args:
        state_dir: the service's durable root — job records under
            ``jobs/``, the shared result cache under ``cache/``, sweep
            journals under ``cache/journal``. The layout matches what
            ``repro study --cache-dir <state_dir>/cache`` produces, so a
            hand-run study pointed there shares cells with the daemon.
        router: backend routing policy (default: local in-process).
        max_queued: bound on jobs waiting to run.
        capacity: weighted admission budget (default: one slot per host
            CPU, minimum 2). A job weighs ``max(1, jobs)``; the head of
            the queue is promoted while the running weight stays within
            the budget — except that the head always runs when nothing
            else is running, so a job wider than the whole budget still
            executes (alone).
        workers: job-runner threads (default: derived from ``capacity``,
            capped at 4 — each job already fans its *cells* across
            worker processes; runner threads only bound how many jobs
            can overlap).
        log: optional ``print``-like callable for lifecycle lines.
    """

    def __init__(
        self,
        state_dir: "str | os.PathLike",
        *,
        router: BackendRouter | None = None,
        max_queued: int = 64,
        capacity: int | None = None,
        workers: int | None = None,
        log: Callable[[str], None] | None = None,
    ) -> None:
        self.state_dir = pathlib.Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.cache_dir = self.state_dir / "cache"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.router = router if router is not None else BackendRouter()
        self.max_queued = int(max_queued)
        self.capacity = int(capacity) if capacity else default_capacity()
        if self.capacity < 1:
            raise JobSpecError("capacity", "must be >= 1")
        self.workers = (
            int(workers) if workers else max(2, min(self.capacity, 4))
        )
        if self.workers < 1:
            raise JobSpecError("workers", "must be >= 1")
        self.log = log if log is not None else (lambda _msg: None)
        self._jobs: dict[str, Job] = {}
        self._queue: list[str] = []
        self._running: set[str] = set()
        self._running_weight = 0
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._draining = False
        self._drain_stop = threading.Event()
        #: Serializes jobs on *shared* (daemon-lifetime) executors — the
        #: distributed fabric dispatches one sweep at a time; local
        #: executors are per-job and overlap freely.
        self._shared_gate = threading.Lock()
        self._recover()
        self._threads = [
            threading.Thread(
                target=self._run_loop,
                name=f"repro-job-runner-{i}",
                daemon=True,
            )
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Durable job records
    # ------------------------------------------------------------------
    def record_path(self, job_id: str) -> pathlib.Path:
        """The job's durable JSON record (public: the janitor uses it)."""
        return self.jobs_dir / f"{job_id}.json"

    # Backwards-compatible internal alias.
    _record_path = record_path

    def _persist(self, job: Job) -> None:
        """Write the job's durable record atomically (crash-safe)."""
        record = {
            "v": RECORD_VERSION,
            "id": job.id,
            "spec": job.spec.to_json(),
            "status": job.status,
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
            "error": job.error,
            "executor": job.executor,
            "rows": job.rows if job.terminal else [],
            "cells": job.cells if job.terminal else [],
            "failures": job.failures,
        }
        path = self.record_path(job.id)
        tmp = atomic_tmp_path(path)
        try:
            tmp.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _recover(self) -> None:
        """Reload job records; re-enqueue anything the crash interrupted.

        A ``running`` record means the previous daemon died mid-sweep;
        it goes back on the queue and the sweep's journal restores every
        cell that settled before the kill. Malformed records are skipped
        (one lost record = one lost job *description*; the results
        themselves live in the content-addressed cache regardless).
        Unfinished retention tombstones are completed first, so a crash
        mid-GC cannot leave a half-deleted job resurrectable.
        """
        from repro.service.retention import finish_tombstones

        finish_tombstones(self.jobs_dir, log=self.log)
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                if record.get("v") != RECORD_VERSION:
                    continue
                spec = JobSpec.from_json(record["spec"])
                job = Job(
                    id=str(record["id"]),
                    spec=spec,
                    status=str(record.get("status", "queued")),
                    submitted_at=float(record.get("submitted_at", 0.0)),
                    started_at=float(record.get("started_at", 0.0)),
                    finished_at=float(record.get("finished_at", 0.0)),
                    error=str(record.get("error", "")),
                    executor=str(record.get("executor", "")),
                    rows=list(record.get("rows", [])),
                    cells=list(record.get("cells", [])),
                    failures=list(record.get("failures", [])),
                )
            except (OSError, ValueError, KeyError, JobSpecError):
                continue
            if job.status not in JOB_STATUSES:
                continue
            if job.id != job.spec.job_key():
                continue  # record does not match its own spec; distrust it
            job.weight = self._weight_for(spec)
            if not job.terminal:
                job.status = "queued"
                job.started_at = 0.0
                job.rows = []
                job.cells = []
                self._queue.append(job.id)
                self.log(f"recovered unfinished job {job.id[:12]} -> requeued")
            self._jobs[job.id] = job
        if self._queue:
            self.log(f"{len(self._queue)} job(s) resumed from {self.jobs_dir}")

    def _weight_for(self, spec: JobSpec) -> int:
        """Admission weight: the normalized spec's process fan-out."""
        try:
            return max(1, self.router.normalize(spec).jobs)
        except JobSpecError:
            return max(1, spec.jobs)

    # ------------------------------------------------------------------
    # Public API (what the HTTP layer calls)
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> tuple[Job, bool]:
        """Accept one spec; returns ``(job, deduped)``.

        ``deduped`` is True when an identical spec (same
        :meth:`~repro.core.jobspec.JobSpec.job_key`) was already known
        and is queued, running, or done — the existing job is returned
        untouched. A *cancelled* or *failed* identical job is revived
        instead (requeued): cancellation was an operator choice and
        failure is a circumstance (a deadline, a poison host), neither a
        property of the spec — and the revived run resumes from the
        journaled cells the earlier attempt settled.

        Raises :class:`Draining` while the daemon drains (dedupe hits on
        already-known jobs still answer — they cost nothing) and
        :class:`QueueFull` when the bounded queue is at capacity; both
        carry the scheduler snapshot and a ``Retry-After`` hint.
        """
        normalized = self.router.normalize(spec)
        job_id = spec.job_key()
        with self._lock:
            if self._closed:
                raise JobSpecError("service", "daemon is shutting down")
            existing = self._jobs.get(job_id)
            if existing is not None and existing.status not in (
                "cancelled",
                "failed",
            ):
                return existing, True
            if self._draining:
                raise Draining(
                    queued=len(self._queue),
                    running=len(self._running),
                    capacity=self.capacity,
                )
            if len(self._queue) >= self.max_queued:
                raise QueueFull(
                    self.max_queued,
                    queued=len(self._queue),
                    running=len(self._running),
                    capacity=self.capacity,
                    retry_after=self._retry_after_locked(),
                )
            revived = existing is not None
            job = Job(
                id=job_id,
                spec=spec,
                submitted_at=time.time(),
                executor=self.router.resolve_spec(normalized),
            )
            job.weight = max(1, normalized.jobs)
            self._jobs[job_id] = job
            self._queue.append(job_id)
            self._wake.notify_all()
        self._persist(job)
        self.log(
            f"job {job_id[:12]} {'revived' if revived else 'queued'} "
            f"({len(spec.models)} model(s) x ranks {list(spec.ranks)})"
        )
        return job, False

    def _retry_after_locked(self) -> float:
        """A Retry-After hint scaled to the current backlog."""
        backlog = len(self._queue) + len(self._running)
        return min(30.0, max(1.0, 0.5 * backlog))

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def cancel(self, job_id: str) -> Job | None:
        """Cancel a job: dequeue if waiting, interrupt if running.

        Already-terminal jobs are returned unchanged (cancel is
        idempotent). Cells that settled before the cancel stay journaled
        and cached — a revived job resumes from them.

        Race-free by construction: the queued->running transition
        happens under the manager lock (in :meth:`_promote_locked`), so
        under that same lock ``status == "queued"`` *implies* the id is
        still in the queue — a cancelled spec can never be left for a
        runner to execute, and a promoted job can never leave a phantom
        queue slot behind.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.terminal:
                return job
            if job.status == "queued":
                self._queue.remove(job_id)  # invariant: queued => enqueued
                job.status = "cancelled"
                job.finished_at = time.time()
                settled = True
            else:  # running: the sweep's callbacks notice the event
                job._cancel.set()
                settled = False
        if settled:
            self._persist(job)
            job._notify()
        self.log(f"job {job_id[:12]} cancel requested")
        return job

    def forget(self, job_id: str) -> bool:
        """Drop a terminal, unwatched job from memory (retention GC).

        Atomic with the live-stream check under the manager lock: once a
        job is forgotten, :meth:`get` returns None, so no new stream can
        attach while the janitor deletes its files. Refuses (returns
        False) for unknown, non-terminal, or actively streamed jobs.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or not job.terminal or job.active_streams:
                return False
            del self._jobs[job_id]
            return True

    def result_store(self) -> ResultCache:
        """The shared content-addressed store (artifact fetch endpoint)."""
        return ResultCache(self.cache_dir)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            counts: dict[str, Any] = {status: 0 for status in JOB_STATUSES}
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
            counts["queued_depth"] = len(self._queue)
            counts["running_weight"] = self._running_weight
            counts["capacity"] = self.capacity
            counts["workers"] = self.workers
            counts["draining"] = self._draining
            return counts

    # ------------------------------------------------------------------
    # Drain and shutdown
    # ------------------------------------------------------------------
    def drain(self, grace: float = 10.0) -> None:
        """Graceful shutdown, phase 1: stop admitting, let jobs finish.

        New submissions 503 (:class:`Draining`); queued jobs stay queued
        — in memory and in their on-disk records — so a restarted daemon
        picks them up. Running jobs get ``grace`` seconds to complete;
        whatever is still running then is interrupted at its next
        checkpoint (:class:`JobDrained`), put back to ``queued``, and
        persisted that way. Either way the journal already holds every
        settled cell, so the restart resumes bit-for-bit.

        Call :meth:`close` afterwards to join the runner threads.
        """
        deadline = time.monotonic() + max(0.0, grace)
        with self._wake:
            if self._draining:
                return
            self._draining = True
            self._wake.notify_all()
        self.log(f"draining: waiting up to {grace:.1f}s for running jobs")
        while time.monotonic() < deadline:
            with self._lock:
                if not self._running:
                    break
            time.sleep(0.05)
        with self._lock:
            leftover = len(self._running)
        if leftover:
            self.log(
                f"drain grace expired with {leftover} job(s) running; "
                "checkpointing them back to queued"
            )
            self._drain_stop.set()
            # Bounded unwind: runners notice the event at the next cell
            # settle (cells are short; chaos tests cover a hung reader,
            # not a hung cell).
            unwind_deadline = time.monotonic() + max(2.0, grace)
            while time.monotonic() < unwind_deadline:
                with self._lock:
                    if not self._running:
                        break
                time.sleep(0.05)

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting work and interrupt running jobs.

        Hard stop: queued jobs are *cancelled* (and persisted so). After
        :meth:`drain`, queued jobs have already been preserved as
        ``queued`` on disk and are left untouched here — the restart
        owns them.
        """
        with self._lock:
            self._closed = True
            cancelled: list[Job] = []
            if not self._draining:
                for job_id in self._queue:
                    job = self._jobs[job_id]
                    job.status = "cancelled"
                    job.finished_at = time.time()
                cancelled = [self._jobs[j] for j in self._queue]
                self._queue.clear()
            for job_id in self._running:
                self._jobs[job_id]._cancel.set()
            self._wake.notify_all()
        for job in cancelled:
            self._persist(job)
            job._notify()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(timeout=max(0.1, deadline - time.monotonic()))

    # ------------------------------------------------------------------
    # The scheduler and runner loop
    # ------------------------------------------------------------------
    def _promote_locked(self) -> Job | None:
        """Pop-and-mark the queue head if the admission budget allows.

        The *single* place a job leaves the queue and turns ``running``
        — and it happens atomically under the manager lock, which is
        what makes :meth:`cancel` race-free. Strict FIFO: only the head
        is considered, so a wide job blocks later narrow ones rather
        than starving behind them; a job wider than the whole budget
        runs once it has the machine to itself.
        """
        if self._draining or not self._queue:
            return None
        job = self._jobs[self._queue[0]]
        if self._running and self._running_weight + job.weight > self.capacity:
            return None
        self._queue.pop(0)
        self._running.add(job.id)
        self._running_weight += job.weight
        job.status = "running"
        job.started_at = time.time()
        return job

    def _run_loop(self) -> None:
        while True:
            with self._wake:
                job = None
                while job is None:
                    if self._closed and not self._queue:
                        return
                    job = self._promote_locked()
                    if job is None:
                        self._wake.wait(timeout=0.5)
            try:
                self._run_job(job)
            except Exception as exc:  # the loop must survive anything
                with job._lock:
                    if not job.terminal:
                        job.status = "failed"
                        job.error = f"{type(exc).__name__}: {exc}"
                        job.finished_at = time.time()
                self._persist(job)
                job._notify()
                self.log(f"job {job.id[:12]} failed: {job.error}")
            finally:
                with self._wake:
                    self._running.discard(job.id)
                    self._running_weight -= job.weight
                    self._wake.notify_all()

    def _run_job(self, job: Job) -> None:
        from repro import api

        if job._cancel.is_set():
            # Cancelled in the promotion window: never touch the sweep.
            with job._lock:
                job.status = "cancelled"
                job.finished_at = time.time()
            self._persist(job)
            job._notify()
            self.log(f"job {job.id[:12]} cancelled before start")
            return
        spec = self.router.normalize(job.spec)
        executor, owned = self.router.executor_for(spec)
        with job._lock:
            job.executor = self.router.resolve_spec(spec)
            job.total_cells = len(spec.models) * len(spec.ranks)
        self._persist(job)
        job._notify()
        self.log(f"job {job.id[:12]} running on {job.executor!r}")

        # Whether row dicts carry the fault-accounting columns is a
        # whole-table property in the finished report; for streaming we
        # decide it up front from the spec (a fault plan present = fault
        # columns present). The terminal rows are rebuilt from the
        # report, so the stored table is canonical regardless.
        faulty = bool(spec.faults)
        deadline = (
            time.monotonic() + spec.deadline_s
            if spec.deadline_s is not None
            else None
        )

        def check_stop() -> None:
            if job._cancel.is_set():
                raise JobCancelled(job.id)
            if self._drain_stop.is_set():
                raise JobDrained(job.id)

        def on_result(index, cell, key, outcome, how):
            check_stop()
            with job._lock:
                job.completed_cells += 1
                if how in ("cached", "resumed"):
                    job.cached_cells += 1
                cell_info = {
                    "label": cell.label,
                    "key": key or "",
                    "status": how,
                }
                job.cells.append(cell_info)
                if isinstance(outcome, CellFailure):
                    job.failed_cells += 1
                    job.failures.append(
                        {
                            "label": outcome.label,
                            "error": f"{outcome.error_type}: {outcome.message}",
                            "attempts": outcome.attempts,
                        }
                    )
                else:
                    job.rows.append(result_row(outcome, faulty=faulty))
            job._notify()

        def progress(event):
            check_stop()

        # Shared daemon-lifetime executors (the distributed fabric)
        # dispatch one sweep at a time; per-job executors overlap freely.
        gate = (
            contextlib.nullcontext() if owned else self._shared_gate
        )
        try:
            with gate:
                check_stop()
                report = api.run_job(
                    spec,
                    executor=executor,
                    on_result=on_result,
                    progress=progress,
                    cache=ResultCache(self.cache_dir) if spec.cache else None,
                    journal=str(self.cache_dir / "journal"),
                    resume=True,
                    deadline=deadline,
                )
        except JobCancelled:
            with job._lock:
                job.status = "cancelled"
                job.finished_at = time.time()
            self.log(f"job {job.id[:12]} cancelled mid-run")
        except JobDrained:
            # Not a verdict on the job: back to queued, journal intact,
            # so the restarted daemon resumes it.
            with self._lock:
                self._queue.insert(0, job.id)
                job.status = "queued"
                job.started_at = 0.0
            with job._lock:
                job.rows = []
                job.cells = []
                job.completed_cells = 0
                job.cached_cells = 0
                job.failed_cells = 0
                job.failures = []
            self.log(f"job {job.id[:12]} checkpointed for drain -> queued")
        else:
            expired = [
                f
                for f in report.failures
                if f.error_type == "DeadlineExceeded"
            ]
            with job._lock:
                # Replace streamed rows with the finished report's
                # canonical table: same dicts, canonical order, and the
                # fault-column decision made the way StudyReport makes it.
                job.rows = report.rows()
                if expired:
                    job.status = "failed"
                    job.error = (
                        f"deadline: {spec.deadline_s}s budget exhausted "
                        f"with {len(expired)} cell(s) unsettled"
                    )
                else:
                    job.status = "done" if report.complete else "failed"
                    if not report.complete:
                        job.error = (
                            f"{len(report.failures)} cell(s) quarantined"
                        )
                job.finished_at = time.time()
        finally:
            if owned:
                close = getattr(executor, "close", None)
                if callable(close):
                    close()
        self._persist(job)
        job._notify()
        self.log(f"job {job.id[:12]} {job.status}")
