"""Backend routing: a job's declared requirements -> a live executor.

The sweep layer already abstracts *how cells execute* behind the
:class:`~repro.parallel.CellExecutor` registry; the router owns the
service-side policy questions on top of it:

- which backend a :class:`~repro.core.jobspec.JobSpec` gets (its own
  ``executor`` spec string, or the daemon default when it says
  ``"auto"``);
- when the daemon-lifetime distributed fabric is preferred (remote
  workers are attached) versus the in-process pool (nobody is);
- what ``GET /v1/backends`` reports: every registered backend name, how
  it ships graphs, and — for the fabric — how many workers are attached
  right now.

Jobs on *per-job* executors (local/serial) run concurrently under the
manager's weighted scheduler; jobs routed to the shared daemon-lifetime
fabric are serialized by the manager's shared-executor gate, so the
fabric still dispatches one sweep at a time.
"""

from __future__ import annotations

from typing import Any

from repro.core.jobspec import JobSpec
from repro.parallel.executor import (
    EXECUTOR_BACKENDS,
    CellExecutor,
    executor_names,
    make_executor,
    parse_executor_spec,
)

#: Spec value meaning "let the router decide".
AUTO = "auto"


class BackendRouter:
    """Maps job requirements to executor backends.

    Args:
        default: executor spec string used when a job says ``"auto"``
            and no fabric workers are attached.
        fabric: an optional daemon-lifetime
            :class:`~repro.parallel.DistributedExecutor` whose TCP
            endpoint outlives individual jobs — ``python -m repro
            worker`` daemons attach once and serve every routed job.
    """

    def __init__(
        self,
        default: str = "local",
        *,
        fabric: Any | None = None,
    ) -> None:
        parse_executor_spec(default)  # fail fast on a bad daemon default
        self.default = default
        self.fabric = fabric

    # ------------------------------------------------------------------
    def fabric_workers(self) -> int:
        """Live workers attached to the daemon fabric (0 = none/no fabric)."""
        if self.fabric is None:
            return 0
        try:
            return len(self.fabric.server.live_workers())
        except Exception:
            return 0

    def resolve_spec(self, spec: JobSpec) -> str:
        """The executor spec string a job will actually run under."""
        if spec.executor != AUTO:
            return spec.executor
        if self.fabric_workers() > 0:
            return "distributed"
        return self.default

    def executor_for(self, spec: JobSpec) -> tuple[CellExecutor, bool]:
        """Construct (or reuse) the executor for one job.

        Returns ``(executor, owned)`` — ``owned`` is True when the
        router built a fresh instance the caller must close after the
        job, False when it handed out the shared daemon fabric.
        """
        resolved = self.resolve_spec(spec)
        name, options = parse_executor_spec(resolved)
        if name == "distributed" and self.fabric is not None and not options:
            # Reuse the daemon-lifetime fabric: its endpoint is what the
            # operator printed at startup and what workers attached to.
            # A job naming explicit fabric options gets its own server.
            return self.fabric, False
        return make_executor(resolved), True

    # ------------------------------------------------------------------
    def backends(self) -> list[dict[str, Any]]:
        """The ``GET /v1/backends`` inventory."""
        out: list[dict[str, Any]] = []
        for name in executor_names():
            factory = EXECUTOR_BACKENDS[name]
            entry: dict[str, Any] = {
                "name": name,
                "graph_handoff": getattr(factory, "graph_handoff", None)
                if isinstance(factory, type)
                else ("ref" if name == "distributed" else None),
                "default": name == parse_executor_spec(self.default)[0],
            }
            if name == "distributed":
                entry["fabric_attached"] = self.fabric is not None
                entry["workers"] = self.fabric_workers()
                if self.fabric is not None:
                    host, port = self.fabric.endpoint
                    entry["endpoint"] = f"{host}:{port}"
            out.append(entry)
        return out

    def normalize(self, spec: JobSpec) -> JobSpec:
        """Resolve service-only vocabulary and validate the result.

        ``"auto"`` is resolved here (not in ``JobSpec.validate``, which
        stays surface-neutral) to the fabric when workers are attached,
        else the daemon default. An auto-routed distributed job with
        ``jobs < 2`` gets its fallback pool widened to 2 rather than
        rejected — the user never asked for ``distributed``, so the
        spec-level interplay error would be unactionable. Raises
        :class:`~repro.core.jobspec.JobSpecError` on anything invalid.
        """
        if spec.executor == AUTO:
            spec = spec.with_overrides(executor=self.resolve_spec(spec))
            if (
                parse_executor_spec(spec.executor)[0] == "distributed"
                and spec.jobs < 2
            ):
                spec = spec.with_overrides(jobs=2)
        spec.validate()
        return spec
