"""The study daemon's HTTP surface: stdlib-only, loopback-friendly.

``python -m repro serve`` binds a :class:`ThreadingHTTPServer` whose
handler translates a small REST vocabulary onto one
:class:`~repro.service.jobs.JobManager`:

====== ================================ ======================================
Method Path                             Meaning
====== ================================ ======================================
GET    /v1/health                       liveness + job counters
GET    /v1/backends                     executor inventory (router view)
POST   /v1/jobs                         submit a JobSpec (JSON body)
GET    /v1/jobs                         list all jobs (summaries)
GET    /v1/jobs/{id}                    full status for one job
GET    /v1/jobs/{id}/rows              NDJSON result rows, streamed live
GET    /v1/jobs/{id}/artifacts/{key}   raw cached cell bytes by content key
DELETE /v1/jobs/{id}                    cancel (idempotent)
====== ================================ ======================================

The rows endpoint intentionally uses HTTP/1.0-style connection-close
framing (no ``Content-Length``, no chunked encoding): each row is one
JSON line flushed as the corresponding sweep cell settles, and the
stream ends — socket close delimits the body — when the job reaches a
terminal state. ``curl -N`` and :mod:`http.client` both consume this
correctly, and it keeps the handler inside the stdlib.

Like the distributed fabric (``docs/distributed.md``), the wire carries
no authentication: bind loopback (the default) or a trusted network
only.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro import __version__
from repro.core.jobspec import JobSpec, JobSpecError
from repro.service.jobs import Draining, JobManager, QueueFull
from repro.service.retention import Janitor, RetentionPolicy

#: Largest request body accepted, bytes. A JobSpec is a few hundred
#: bytes; anything near this limit is a client bug, not a bigger study.
MAX_BODY = 1 << 20

#: Default per-write socket timeout for the NDJSON rows stream. A
#: reader that stops draining its socket stalls `wfile.write` once the
#: kernel buffers fill; past this budget the connection is dropped so a
#: stalled subscriber can never wedge a handler thread (the sweep's own
#: row appends never touch the socket — see JobManager).
STREAM_WRITE_TIMEOUT = 10.0


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes one request; the manager lives on the server object."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; the daemon logs
    # job lifecycle lines itself, so request noise is opt-in.
    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Response helpers
    # ------------------------------------------------------------------
    def _send_json(
        self,
        status: int,
        payload: Any,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, reason: str, **extra: Any) -> None:
        self._send_json(status, {"error": reason, **extra})

    def _read_body(self) -> bytes | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._error(400, "request body required")
            return None
        if length > MAX_BODY:
            self._error(413, f"body exceeds {MAX_BODY} bytes")
            return None
        return self.rfile.read(length)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if parts == ["v1", "health"]:
            stats = self.manager.stats()
            return self._send_json(
                200,
                {
                    "ok": True,
                    "version": __version__,
                    "jobs": stats,
                    # Scheduler vitals, lifted top-level for operators
                    # and load balancers that only read a flat body.
                    "queued": stats.get("queued", 0),
                    "running": stats.get("running", 0),
                    "capacity": stats.get("capacity", 0),
                    "draining": stats.get("draining", False),
                },
            )
        if parts == ["v1", "backends"]:
            return self._send_json(
                200, {"backends": self.manager.router.backends()}
            )
        if parts == ["v1", "jobs"]:
            return self._send_json(
                200,
                {
                    "jobs": [
                        {
                            "id": job.id,
                            "status": job.status,
                            "submitted_at": job.submitted_at,
                        }
                        for job in self.manager.list_jobs()
                    ]
                },
            )
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            job = self.manager.get(parts[2])
            if job is None:
                return self._error(404, f"no such job: {parts[2]}")
            return self._send_json(200, job.snapshot())
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "rows":
            return self._stream_rows(parts[2])
        if (
            len(parts) == 5
            and parts[:2] == ["v1", "jobs"]
            and parts[3] == "artifacts"
        ):
            return self._send_artifact(parts[2], parts[4])
        self._error(404, f"unknown path: {self.path}")

    def do_POST(self) -> None:
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if parts != ["v1", "jobs"]:
            return self._error(404, f"unknown path: {self.path}")
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body)
            spec = JobSpec.from_json(payload)
        except JobSpecError as exc:
            return self._send_json(400, {"error": str(exc), **exc.to_json()})
        except (ValueError, TypeError) as exc:
            return self._error(400, f"malformed JobSpec body: {exc}")
        try:
            job, deduped = self.manager.submit(spec)
        except (QueueFull, Draining) as exc:
            # Backpressure, not failure: 503 with a machine-readable
            # Retry-After plus the scheduler snapshot, so clients
            # (repro submit) can back off instead of hammering.
            return self._send_json(
                503,
                {
                    "error": str(exc),
                    **exc.to_json(),
                    "retry_after": exc.retry_after,
                    "queued": exc.queued,
                    "running": exc.running,
                    "capacity": exc.capacity,
                },
                headers={
                    "Retry-After": str(max(1, round(exc.retry_after)))
                },
            )
        except JobSpecError as exc:
            status = 503 if exc.field in ("queue", "service") else 400
            headers = (
                {"Retry-After": "2"} if status == 503 else None
            )
            return self._send_json(
                status, {"error": str(exc), **exc.to_json()}, headers=headers
            )
        self._send_json(
            202 if not deduped else 200,
            {"job_id": job.id, "status": job.status, "deduped": deduped},
        )

    def do_DELETE(self) -> None:
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            job = self.manager.cancel(parts[2])
            if job is None:
                return self._error(404, f"no such job: {parts[2]}")
            return self._send_json(200, {"job_id": job.id, "status": job.status})
        self._error(404, f"unknown path: {self.path}")

    # ------------------------------------------------------------------
    # Streaming endpoints
    # ------------------------------------------------------------------
    def _stream_rows(self, job_id: str) -> None:
        """NDJSON rows in completion order; closes when the job settles.

        Connection-close framing: we drop to HTTP/1.0 semantics for this
        one response (``Connection: close``, no length header) because
        the body's length is unknowable until the sweep finishes.

        The stream is *bounded against slow readers*: every write runs
        under a per-socket timeout (``stream_write_timeout`` on the
        service), so a subscriber that stops draining its socket gets
        its connection dropped once the kernel send buffer fills — it
        can never wedge this handler thread, and it never touches the
        sweep at all (the sweep's ``on_result`` only appends rows under
        the job lock; sockets are written exclusively here). The stream
        is refcounted (:meth:`Job.stream_ref`) so retention GC skips
        records with live readers.
        """
        job = self.manager.get(job_id)
        if job is None:
            return self._error(404, f"no such job: {job_id}")
        with job.stream_ref():
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Connection", "close")
            self.end_headers()
            self.close_connection = True
            sndbuf = getattr(self.server, "stream_sndbuf", None)
            if sndbuf:
                # Deterministic back-pressure for tests/chaos: a tiny
                # send buffer makes a stalled reader block writes fast.
                try:
                    self.connection.setsockopt(
                        socket.SOL_SOCKET, socket.SO_SNDBUF, int(sndbuf)
                    )
                except OSError:
                    pass
            timeout = getattr(
                self.server, "stream_write_timeout", STREAM_WRITE_TIMEOUT
            )
            self.connection.settimeout(timeout)
            try:
                for row in job.stream_rows():
                    self.wfile.write(
                        (json.dumps(row, sort_keys=True) + "\n").encode(
                            "utf-8"
                        )
                    )
                    self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away; the job keeps running
            except (socket.timeout, TimeoutError, OSError):
                # Stalled reader: drop it rather than block this thread.
                self.close_connection = True

    def _send_artifact(self, job_id: str, key: str) -> None:
        """Raw cached bytes for one settled cell, by content key."""
        job = self.manager.get(job_id)
        if job is None:
            return self._error(404, f"no such job: {job_id}")
        known = {c["key"] for c in job.snapshot()["cells"] if c.get("key")}
        if key not in known:
            return self._error(404, f"job {job_id} has no cell with key {key}")
        store = self.manager.result_store()
        path = store.path_for(key)
        if not path.is_file():
            return self._error(404, f"no cached artifact for key {key}")
        blob = path.read_bytes()
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)


class _ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with a backlog sized for submit bursts.

    The stdlib default listen backlog is 5; a burst of concurrent
    clients (the dedupe-storm chaos scenario races 32) overflows it and
    the extras see connection resets instead of the structured 503/200
    answers the service promises. The kernel clamps this to
    ``net.core.somaxconn``, so a generous value is safe everywhere.
    """

    request_queue_size = 128


class StudyService:
    """A bound daemon: HTTP server + job manager, one state directory.

    Context-managed for tests (``with StudyService(...) as svc:``);
    ``serve_forever`` blocks for the CLI. The server thread pool is the
    stdlib's (one thread per connection); job *execution* stays on the
    manager's single worker regardless of how many clients connect.
    """

    def __init__(
        self,
        state_dir: str,
        *,
        bind: str = "127.0.0.1:8750",
        manager: JobManager | None = None,
        verbose: bool = False,
        log: Any = None,
        retention: RetentionPolicy | None = None,
        stream_write_timeout: float = STREAM_WRITE_TIMEOUT,
        stream_sndbuf: int | None = None,
    ) -> None:
        host, _, port_text = bind.rpartition(":")
        if not host or not port_text:
            raise JobSpecError("bind", f"expected HOST:PORT, got {bind!r}")
        try:
            port = int(port_text)
        except ValueError:
            raise JobSpecError("bind", f"port must be an integer, got {port_text!r}")
        self.manager = manager if manager is not None else JobManager(
            state_dir, log=log
        )
        self.janitor: Janitor | None = None
        if retention is not None and retention.ttl_s is not None:
            self.janitor = Janitor(self.manager, retention, log=log)
        self.httpd = _ServiceServer((host, port), ServiceHandler)
        self.httpd.daemon_threads = True
        self.httpd.manager = self.manager  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self.httpd.stream_write_timeout = stream_write_timeout  # type: ignore[attr-defined]
        self.httpd.stream_sndbuf = stream_sndbuf  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def endpoint(self) -> tuple[str, int]:
        """The actually-bound (host, port) — port 0 resolves here."""
        addr = self.httpd.server_address
        return str(addr[0]), int(addr[1])

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Block serving requests (the CLI path); Ctrl-C returns."""
        if self.janitor is not None:
            self.janitor.start()
        try:
            self.httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def start(self) -> "StudyService":
        """Serve on a background thread (the test/embedding path)."""
        if self.janitor is not None:
            self.janitor.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def drain(self, grace: float = 10.0) -> None:
        """Graceful-shutdown phase 1 (the SIGTERM path).

        Flips the manager into draining — new submits 503 with
        ``Retry-After``, health reports ``draining: true`` — and blocks
        while running jobs finish or checkpoint back to ``queued``
        within ``grace`` seconds. The HTTP listener keeps answering
        throughout (clients need the 503s); call :meth:`close`
        afterwards for the actual exit.
        """
        self.manager.drain(grace)

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.janitor is not None:
            self.janitor.close()
        self.manager.close()

    def __enter__(self) -> "StudyService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()


def wait_ready(host: str, port: int, timeout: float = 10.0) -> bool:
    """Poll until the daemon accepts TCP connections (test helper)."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=0.5):
                return True
        except OSError:
            time.sleep(0.05)
    return False
