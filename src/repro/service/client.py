"""A retrying client for the study service: ``repro submit``'s engine.

The daemon's overload answers are *structured* — 503 with a
``Retry-After`` header plus a JSON scheduler snapshot — and submissions
are *idempotent* — a job's identity is its spec's content address, so
resubmitting the same spec can only dedupe onto the same job. Those two
properties make a correct client small: retry 503s (and connection
errors, which is what a draining/restarting daemon looks like from
outside) with exponential backoff, honour the server's ``Retry-After``
hint when it is larger, and never worry about double-submitting.

:class:`ServiceClient` wraps the whole REST vocabulary; the ``repro
submit`` CLI subcommand is a thin shell over it.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Iterator

from repro.util import ReproError

#: Default retry schedule: attempts and backoff shape.
MAX_RETRIES = 8
BACKOFF_BASE = 0.25  #: first retry delay, seconds
BACKOFF_CAP = 30.0  #: ceiling on any single delay


class ServiceError(ReproError):
    """A request that failed for good (non-retryable, or retries spent).

    Attributes:
        status: HTTP status (0 for transport-level failures).
        body: decoded JSON error body when the server sent one.
    """

    def __init__(self, message: str, *, status: int = 0, body: Any = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body


class ServiceClient:
    """Talks to one study daemon with retry/backoff built in.

    Args:
        host, port: the daemon's endpoint.
        timeout: per-request socket timeout, seconds.
        max_retries: attempts for retryable failures (503, connection
            refused/reset) before :class:`ServiceError`.
        backoff_base: first retry delay; doubles per attempt up to
            ``backoff_cap``. The server's ``Retry-After`` wins when it
            asks for longer.
        sleep: injectable clock for tests (defaults to ``time.sleep``).
        log: optional ``print``-like callable for retry lines.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        max_retries: int = MAX_RETRIES,
        backoff_base: float = BACKOFF_BASE,
        backoff_cap: float = BACKOFF_CAP,
        sleep: Callable[[float], None] = time.sleep,
        log: Callable[[str], None] | None = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.sleep = sleep
        self.log = log if log is not None else (lambda _msg: None)
        self.retries = 0  #: lifetime retry count (observability/tests)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: "dict[str, Any] | None" = None
    ) -> tuple[int, dict[str, str], bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                data,
            )
        finally:
            conn.close()

    @staticmethod
    def _decode(data: bytes) -> Any:
        try:
            return json.loads(data) if data else {}
        except json.JSONDecodeError:
            return {}

    def _retry_delay(
        self, attempt: int, headers: dict[str, str], body: Any
    ) -> float:
        """Exponential backoff, floored by the server's Retry-After."""
        delay = min(self.backoff_cap, self.backoff_base * (2**attempt))
        hinted = 0.0
        raw = headers.get("retry-after", "")
        if raw:
            try:
                hinted = float(raw)
            except ValueError:
                hinted = 0.0
        if isinstance(body, dict):
            try:
                hinted = max(hinted, float(body.get("retry_after", 0.0)))
            except (TypeError, ValueError):
                pass
        return min(self.backoff_cap, max(delay, hinted))

    def _with_retries(
        self, method: str, path: str, body: "dict[str, Any] | None" = None
    ) -> Any:
        """One logical request; 503s and transport errors are retried."""
        last: str = "no attempt made"
        for attempt in range(self.max_retries + 1):
            try:
                status, headers, data = self._request(method, path, body)
            except (ConnectionError, OSError) as exc:
                # A draining or restarting daemon refuses/resets; the
                # submit is idempotent, so retrying is always safe.
                last = f"connection failed: {exc}"
                if attempt >= self.max_retries:
                    break
                delay = self._retry_delay(attempt, {}, None)
                self.retries += 1
                self.log(f"retry {attempt + 1}: {last}; sleeping {delay:.2f}s")
                self.sleep(delay)
                continue
            decoded = self._decode(data)
            if status == 503:
                last = (
                    decoded.get("error", "service unavailable")
                    if isinstance(decoded, dict)
                    else "service unavailable"
                )
                if attempt >= self.max_retries:
                    break
                delay = self._retry_delay(attempt, headers, decoded)
                self.retries += 1
                self.log(f"retry {attempt + 1}: {last}; sleeping {delay:.2f}s")
                self.sleep(delay)
                continue
            if status >= 400:
                message = (
                    decoded.get("error", f"HTTP {status}")
                    if isinstance(decoded, dict)
                    else f"HTTP {status}"
                )
                raise ServiceError(message, status=status, body=decoded)
            return decoded
        raise ServiceError(
            f"{method} {path} failed after {self.max_retries + 1} "
            f"attempt(s): {last}",
            status=503,
        )

    # ------------------------------------------------------------------
    # The REST vocabulary
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._with_retries("GET", "/v1/health")

    def submit(self, spec: Any) -> dict[str, Any]:
        """Submit a JobSpec (or its JSON form); retries through overload.

        Returns the acceptance body (``job_id``, ``status``,
        ``deduped``). Safe to call repeatedly — identity is the spec's
        content address, so at most one job ever exists for it.
        """
        body = spec.to_json() if hasattr(spec, "to_json") else dict(spec)
        return self._with_retries("POST", "/v1/jobs", body)

    def status(self, job_id: str) -> dict[str, Any]:
        return self._with_retries("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._with_retries("DELETE", f"/v1/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        *,
        timeout: float | None = None,
        poll: float = 0.2,
        on_progress: Callable[[dict[str, Any]], None] | None = None,
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns the final snapshot."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            snapshot = self.status(job_id)
            if on_progress is not None:
                on_progress(snapshot)
            if snapshot.get("status") in ("done", "failed", "cancelled"):
                return snapshot
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id[:12]} not terminal after {timeout}s "
                    f"(status: {snapshot.get('status')})"
                )
            self.sleep(poll)

    def stream_rows(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield NDJSON rows as the daemon streams them (blocks on live
        jobs until terminal; connection close ends the stream)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/rows")
            response = conn.getresponse()
            if response.status != 200:
                decoded = self._decode(response.read())
                message = (
                    decoded.get("error", f"HTTP {response.status}")
                    if isinstance(decoded, dict)
                    else f"HTTP {response.status}"
                )
                raise ServiceError(
                    message, status=response.status, body=decoded
                )
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def rows(self, job_id: str) -> list[dict[str, Any]]:
        """Every row for one job, fully drained."""
        return list(self.stream_rows(job_id))

    def submit_and_wait(
        self,
        spec: Any,
        *,
        timeout: float | None = None,
        poll: float = 0.2,
        on_progress: Callable[[dict[str, Any]], None] | None = None,
    ) -> tuple[dict[str, Any], list[dict[str, Any]]]:
        """Submit, wait for a terminal state, fetch rows: the whole trip.

        The convenience path ``repro submit --watch`` uses; returns the
        final snapshot and the rows.
        """
        accepted = self.submit(spec)
        job_id = accepted["job_id"]
        snapshot = self.wait(
            job_id, timeout=timeout, poll=poll, on_progress=on_progress
        )
        return snapshot, self.rows(job_id)
