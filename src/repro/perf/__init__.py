"""Performance instrumentation: counters, timers, microbenchmarks.

Three layers, smallest first:

- :mod:`repro.perf.counters` — deterministic per-run volume counters
  (events dispatched, zero-delay run-queue share, trace intervals)
  threaded through :class:`~repro.simulate.engine.Engine` and
  :class:`~repro.runtime.trace.TraceRecorder` and surfaced on every
  :class:`~repro.exec_models.base.RunResult`.
- :mod:`repro.perf.timers` — wall-clock measurement helpers
  (:class:`WallTimer`, median-of-k :func:`time_repeated`).
- :mod:`repro.perf.bench` — the microbenchmark suites behind
  ``python -m repro bench``, emitting schema-validated
  ``BENCH_core.json`` / ``BENCH_e2e.json`` baselines.

See ``docs/perf.md`` for the workflow.
"""

from repro.perf.bench import (
    SCHEMA,
    SUITES,
    check_regression,
    run_suite,
    validate_report,
    write_report,
)
from repro.perf.counters import events_per_second, run_counters
from repro.perf.timers import TimingStats, WallTimer, median, time_repeated

__all__ = [
    "SCHEMA",
    "SUITES",
    "check_regression",
    "run_suite",
    "validate_report",
    "write_report",
    "events_per_second",
    "run_counters",
    "TimingStats",
    "WallTimer",
    "median",
    "time_repeated",
]
