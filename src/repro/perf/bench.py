"""Microbenchmark runner emitting machine-readable baselines.

Four benchmarks cover the simulator's hot layers:

- ``engine_events``     — raw event dispatch: many processes ping-ponging
  heap timeouts and zero-delay run-queue wake-ups, no model logic.
- ``steal_roundtrip``   — the steal protocol end to end: work stealing on
  a skewed synthetic graph, where most events are lock/queue RMA.
- ``trace_record``      — interval accounting throughput in
  :class:`~repro.runtime.trace.TraceRecorder`.
- ``e2e_e1_cell``       — one end-to-end E1 cell (real chemistry
  workload, work stealing) from task graph to :class:`RunResult`.

``run_suite`` times each benchmark median-of-k and attaches the run's
deterministic counters (:func:`repro.perf.counters.run_counters`), so a
report both *measures* (host-dependent timings) and *anchors*
(host-independent event volumes). Reports serialize to
``BENCH_core.json`` / ``BENCH_e2e.json``; see ``docs/perf.md``.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Callable

from repro.perf.counters import run_counters
from repro.perf.timers import TimingStats, time_repeated
from repro.util import ConfigurationError

__all__ = [
    "SCHEMA",
    "SUITES",
    "run_suite",
    "write_report",
    "validate_report",
    "check_regression",
]

#: Report format identifier (bump on breaking field changes).
SCHEMA = "repro-bench/1"


def _git_sha() -> str:
    """Current commit SHA (with ``-dirty`` suffix), or ``unknown``."""
    try:
        root = Path(__file__).resolve().parents[3]
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
        ).stdout.strip()
        if not sha:
            return "unknown"
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root, capture_output=True, text=True, timeout=10,
        ).stdout.strip()
        return f"{sha}-dirty" if dirty else sha
    except Exception:
        return "unknown"


# ----------------------------------------------------------------------
# Benchmark bodies. Each returns (fn, counters_from_result) where fn is
# the timed closure; counters are taken from the *last* repeat.
# ----------------------------------------------------------------------

def _engine_events_bench(engine_factory):
    from repro.simulate.engine import Timeout, pooled_timeout

    n_procs, n_steps = 64, 400

    def body():
        engine = engine_factory()

        def proc(pid: int):
            # Alternate heap timeouts and zero-delay wake-ups — the mix
            # real models produce (grants/fires are mostly zero-delay).
            for step in range(n_steps):
                yield pooled_timeout(1.0e-6 * ((pid + step) % 7))
                yield pooled_timeout(0.0)

        for pid in range(n_procs):
            engine.process(proc(pid))
        engine.run()
        return engine

    def counters(engine) -> dict:
        return {
            "sim_events": float(engine.events_dispatched),
            "sim_ready_events": float(engine.ready_dispatched),
            "sim_bucket_events": float(engine.bucket_dispatched),
        }

    return body, counters


def _bench_engine_events() -> tuple[Callable[[], object], Callable[[object], dict]]:
    from repro.simulate.engine import Engine

    return _engine_events_bench(Engine)


def _bench_engine_events_bucket() -> tuple[Callable[[], object], Callable[[object], dict]]:
    from repro.simulate.sched import BucketEngine

    return _engine_events_bench(BucketEngine)


def _bench_engine_events_compiled():
    """Same event mix through the compiled loop; None when unavailable."""
    from repro.simulate.sched import CompiledEngine, compiled_available

    if not compiled_available():
        return None
    return _engine_events_bench(CompiledEngine)


def _bench_steal_roundtrip() -> tuple[Callable[[], object], Callable[[object], dict]]:
    from repro.chemistry.tasks import synthetic_task_graph
    from repro.core import MACHINE_PRESETS
    from repro.exec_models import make_model

    graph = synthetic_task_graph(2000, 24, seed=31, skew=1.2)
    machine = MACHINE_PRESETS["commodity"](32)
    model = make_model("work_stealing")

    def body():
        return model.run(graph, machine, seed=7)

    return body, run_counters


def _bench_trace_record() -> tuple[Callable[[], object], Callable[[object], dict]]:
    from repro.runtime.trace import COMM, COMPUTE, TraceRecorder

    n_ranks, n_records = 64, 200_000

    def body():
        trace = TraceRecorder(n_ranks)
        record = trace.record
        t = 0.0
        for i in range(n_records):
            record(i % n_ranks, COMPUTE if i % 3 else COMM, t, t + 1.0e-4)
            t += 1.0e-4
        trace.breakdown(t + 1.0)
        return trace

    def counters(trace) -> dict:
        return {"trace_records": float(trace.records)}

    return body, counters


def _bench_e2e_e1_cell() -> tuple[Callable[[], object], Callable[[object], dict]]:
    from repro.chemistry import ScfProblem
    from repro.chemistry.molecules import water_cluster
    from repro.core import MACHINE_PRESETS
    from repro.exec_models import make_model

    problem = ScfProblem.build(water_cluster(4), block_size=6, tau=1.0e-10)
    machine = MACHINE_PRESETS["commodity"](16)
    model = make_model("work_stealing")

    def body():
        return model.run(problem.graph, machine, seed=1)

    return body, run_counters


#: suite name -> ordered {benchmark name -> factory}.
SUITES: dict[str, dict[str, Callable]] = {
    "core": {
        "engine_events": _bench_engine_events,
        "engine_events_bucket": _bench_engine_events_bucket,
        "engine_events_compiled": _bench_engine_events_compiled,
        "steal_roundtrip": _bench_steal_roundtrip,
        "trace_record": _bench_trace_record,
    },
    "e2e": {
        "e2e_e1_cell": _bench_e2e_e1_cell,
    },
}


def run_suite(
    suite: str, repeats: int = 5, progress: Callable[[str], None] | None = None
) -> dict:
    """Run one suite; return a schema-conforming report dict."""
    benches = SUITES.get(suite)
    if benches is None:
        raise ConfigurationError(
            f"unknown bench suite {suite!r}; known: {', '.join(SUITES)}"
        )
    results: dict[str, dict] = {}
    for name, factory in benches.items():
        made = factory()
        if made is None:  # e.g. compiled engine without a C toolchain
            if progress is not None:
                progress(f"  {name}: skipped (unavailable on this host)")
            continue
        body, extract = made
        body()  # warm-up: imports, allocator, caches
        stats, last = time_repeated(body, repeats=repeats)
        counters = extract(last)
        entry = stats.as_dict()
        entry["counters"] = counters
        events = counters.get("sim_events")
        if events:
            entry["events_per_second"] = events / stats.median_s
        records = counters.get("trace_records")
        if records and "events_per_second" not in entry:
            entry["records_per_second"] = records / stats.median_s
        results[name] = entry
        if progress is not None:
            eps = entry.get("events_per_second") or entry.get("records_per_second")
            rate = f", {eps:,.0f}/s" if eps else ""
            progress(f"  {name}: median {stats.median_s * 1e3:.2f} ms{rate}")
    from repro.simulate.sched import engine_mode

    return {
        "schema": SCHEMA,
        "suite": suite,
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        # Engine mode the *model-level* benchmarks ran under (the
        # engine_events_* variants pin their engine class explicitly);
        # optional in validation so pre-scheduler baselines stay loadable.
        "engine_mode": engine_mode(),
        "generated_unix": time.time(),
        "repeats": repeats,
        "benchmarks": results,
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Validate and write a report as pretty-printed JSON."""
    validate_report(report)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def validate_report(report: dict) -> None:
    """Raise :class:`ConfigurationError` unless ``report`` fits the schema."""

    def need(cond: bool, msg: str) -> None:
        if not cond:
            raise ConfigurationError(f"invalid bench report: {msg}")

    need(isinstance(report, dict), "not a mapping")
    need(report.get("schema") == SCHEMA, f"schema != {SCHEMA!r}")
    for key in ("suite", "git_sha", "python", "platform"):
        need(isinstance(report.get(key), str) and report[key], f"missing {key}")
    need(isinstance(report.get("benchmarks"), dict) and report["benchmarks"],
         "missing benchmarks")
    for name, entry in report["benchmarks"].items():
        for key in ("median_s", "min_s", "max_s"):
            need(isinstance(entry.get(key), (int, float)) and entry[key] > 0,
                 f"{name}.{key} not a positive number")
        need(isinstance(entry.get("counters"), dict), f"{name}.counters missing")
        for ckey, cval in entry["counters"].items():
            need(isinstance(cval, (int, float)), f"{name}.counters[{ckey!r}]")


def check_regression(
    current: dict, baseline: dict, max_regression: float = 0.30
) -> list[str]:
    """Compare event/record throughput against a baseline report.

    Returns a list of human-readable failure strings — one per benchmark
    whose throughput dropped by more than ``max_regression`` (fractional;
    0.30 = 30%) relative to the baseline. Benchmarks absent from either
    side are skipped; an empty list means no regression.
    """
    validate_report(current)
    validate_report(baseline)
    failures: list[str] = []
    for name, base in baseline["benchmarks"].items():
        cur = current["benchmarks"].get(name)
        if cur is None:
            continue
        for metric in ("events_per_second", "records_per_second"):
            base_rate, cur_rate = base.get(metric), cur.get(metric)
            if not base_rate or not cur_rate:
                continue
            drop = 1.0 - cur_rate / base_rate
            if drop > max_regression:
                failures.append(
                    f"{name}: {metric} {cur_rate:,.0f}/s is {drop:.0%} below "
                    f"baseline {base_rate:,.0f}/s (limit {max_regression:.0%})"
                )
    return failures
