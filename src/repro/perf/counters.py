"""Deterministic volume counters for simulated runs.

The engine and trace recorder count *how much work the simulator did* —
events dispatched (split by heap vs. zero-delay run-queue vs. bucketed
timeline), task costs evaluated through the vectorized batch path, and
trace intervals recorded — independent of how fast the host ran it. Those
volumes are pure functions of the workload/seed, so they serve two jobs:

- **regression anchors**: a refactor that claims bit-for-bit identity
  must reproduce them exactly;
- **throughput denominators**: events/second = ``sim_events`` divided by
  measured wall time, the headline metric of ``repro.perf.bench``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.exec_models.base import RunResult

__all__ = ["run_counters", "events_per_second"]


def run_counters(result: "RunResult") -> dict[str, float]:
    """Flatten every deterministic counter of a run into one dict.

    Engine/trace volumes come first, then model-specific counters
    (``model.*``: steals, chunks, rounds, ...), then network operation
    counts (``network.*``). Keys are sorted within each group so the
    mapping is stable across runs and Python versions.
    """
    out: dict[str, float] = {
        "sim_events": float(result.sim_events),
        "sim_ready_events": float(result.sim_ready_events),
        "sim_bucket_events": float(result.sim_bucket_events),
        "batched_costs": float(result.batched_costs),
        "timeout_allocs": float(result.timeout_allocs),
        "grant_resumes": float(result.grant_resumes),
        "fused_ops": float(result.fused_ops),
        "trace_records": float(result.trace_records),
        "n_tasks": float(result.n_tasks),
        "n_ranks": float(result.n_ranks),
    }
    for key in sorted(result.counters):
        out[f"model.{key}"] = float(result.counters[key])
    for key in sorted(result.network):
        out[f"network.{key}"] = float(result.network[key])
    return out


def events_per_second(result: "RunResult", wall_seconds: float) -> float:
    """Simulator event throughput for one measured run."""
    if wall_seconds <= 0.0:
        return 0.0
    return result.sim_events / wall_seconds
