"""Wall-clock instrumentation for the perf harness.

Real (host) time, not simulated time: these helpers measure how fast the
simulator itself runs. All measurements use :func:`time.perf_counter`,
the highest-resolution monotonic clock CPython exposes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.util import ConfigurationError

__all__ = ["WallTimer", "TimingStats", "median", "time_repeated"]


def median(values: list[float] | tuple[float, ...]) -> float:
    """Median of a non-empty sequence (mean of the middle two for even n)."""
    if not values:
        raise ConfigurationError("median of an empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


class WallTimer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with WallTimer() as t:
    ...     do_work()
    >>> t.elapsed  # seconds
    """

    __slots__ = ("elapsed", "_t0")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "WallTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._t0


@dataclass(frozen=True)
class TimingStats:
    """Repeated-measurement summary (all values in seconds)."""

    runs: tuple[float, ...]

    @property
    def median_s(self) -> float:
        return median(self.runs)

    @property
    def min_s(self) -> float:
        return min(self.runs)

    @property
    def max_s(self) -> float:
        return max(self.runs)

    def as_dict(self) -> dict[str, object]:
        return {
            "median_s": self.median_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "repeats": len(self.runs),
            "runs_s": list(self.runs),
        }


def time_repeated(
    fn: Callable[[], Any], repeats: int = 5
) -> tuple[TimingStats, Any]:
    """Run ``fn`` ``repeats`` times; return timing stats and the last result.

    Median-of-k is the headline statistic: robust to one-off scheduler
    hiccups without discarding the spread (kept in ``runs``).
    """
    if repeats <= 0:
        raise ConfigurationError(f"repeats must be positive, got {repeats}")
    runs: list[float] = []
    result: Any = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        runs.append(time.perf_counter() - t0)
    return TimingStats(tuple(runs)), result
