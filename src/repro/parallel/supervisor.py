"""Supervised worker pool: timeouts, crash recovery, retry, quarantine.

:func:`repro.parallel.parallel_imap` fans jobs out but inherits
``ProcessPoolExecutor``'s failure semantics: a hung job blocks forever, a
SIGKILLed worker poisons every in-flight future, and a poison job aborts
the whole batch. This module is the fault-tolerant replacement the sweep
orchestrator runs on — the host-layer mirror of the *simulated* fault
tolerance in :mod:`repro.faults`:

- **One duplex pipe per worker.** The supervisor assigns exactly one job
  to a worker at a time over its own pipe, so it always knows which
  worker is running which job — no shared queue whose lock a dying
  worker can corrupt, and a SIGKILL surfaces as an EOF on that worker's
  pipe (or its process sentinel), never as a poisoned pool.
- **Per-job wall-clock timeouts.** A job that exceeds ``timeout``
  seconds is treated as hung: its worker is SIGKILLed and respawned, and
  the job is retried like any other failure.
- **Bounded retry with backoff**, reusing the same
  :class:`~repro.faults.retry.RetryPolicy` the simulated fault-tolerant
  models use (host-scale delays via :data:`HOST_RETRY_POLICY`).
- **Poison-job quarantine.** A job that fails ``max_attempts`` times is
  reported as a structured :class:`CellFailure` result instead of
  aborting the batch (``on_error="quarantine"``), or re-raised as a
  :class:`~repro.parallel.executor.WorkerError` (``on_error="raise"``).
- **Graceful degradation.** No ``fork``, one worker, one job, or a pool
  that fails to spawn ⇒ the same jobs run serially in-process through
  the identical retry/quarantine logic (timeouts cannot be enforced
  without process isolation and are ignored serially).

Jobs are assumed *idempotent and deterministic* (sweep cells are pure
functions of their inputs), so re-running a job after a crash or timeout
yields the result the lost attempt would have produced.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.faults.retry import RetryPolicy
from repro.parallel.executor import (
    DegradedExecutionWarning,
    WorkerError,
    fork_available,
    serial_fallback_reason,
    warn_degraded,
)
from repro.util import ConfigurationError, check_positive

#: Default host-side retry policy: three attempts, capped ~0.5 s backoff.
#: (The simulated models use microsecond-scale delays; host faults —
#: crashed workers, killed cells — deserve human-scale ones.) Jitter is
#: deterministic — every pool seeds its own backoff RNG — and non-zero so
#: a batch of cells requeued by one dead worker does not retry in
#: lockstep against the shared cache/journal (thundering herd).
HOST_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.05, max_delay=0.5, jitter=0.25
)

#: ``on_error`` modes: quarantine poison jobs as :class:`CellFailure`
#: results, or re-raise the final failure as a ``WorkerError``.
ON_ERROR_MODES = ("quarantine", "raise")


@dataclass(frozen=True)
class CellFailure:
    """A job that exhausted its retry budget, quarantined not fatal.

    Appears *in place of* a result so one poison cell cannot abort a
    million-cell sweep; the sweep layer records these on the report
    (``StudyReport.failures``) and the CLI renders them as a table.
    """

    index: int  #: position in the submitted job list
    label: str  #: the job's display label (cell label for sweeps)
    attempts: int  #: attempts consumed (== the policy's max_attempts)
    error_type: str  #: exception class name (or "CellTimeout"/"WorkerCrash")
    message: str  #: str() of the final error
    traceback_text: str = ""  #: remote traceback of the final attempt, if any

    def __str__(self) -> str:
        return (
            f"{self.label} (index {self.index}): {self.error_type}: "
            f"{self.message} [after {self.attempts} attempt(s)]"
        )


@dataclass
class SupervisorStats:
    """Fault accounting across one :class:`SupervisedPool` lifetime."""

    completed: int = 0  #: jobs that produced a result
    retries: int = 0  #: attempts re-dispatched after a failure
    crashes: int = 0  #: worker deaths observed (SIGKILL/OOM/hard exit)
    timeouts: int = 0  #: jobs killed for exceeding the wall-clock budget
    quarantined: int = 0  #: jobs that exhausted retries -> CellFailure
    respawns: int = 0  #: replacement workers forked
    # Distributed-fabric counters (repro.parallel.fabric); zero for the
    # local backend.
    lease_expiries: int = 0  #: leases revoked (overrun or missed beats)
    duplicates: int = 0  #: late/duplicate completions deduped away
    disconnects: int = 0  #: worker connections lost mid-session
    degraded: int = 0  #: jobs rerouted to the fallback local executor


class _Task:
    __slots__ = ("index", "job", "attempts", "not_before", "last_error")

    def __init__(self, index: int, job: Any) -> None:
        self.index = index
        self.job = job
        self.attempts = 0
        self.not_before = 0.0
        self.last_error: tuple[str, str, str] | None = None


class AttemptLedger:
    """Retry/quarantine bookkeeping shared by every executor backend.

    One instance owns the attempt budget, deterministic backoff jitter
    stream, quarantine decision, and fault accounting for a batch of
    jobs. :class:`SupervisedPool` (the ``local`` backend) and the TCP
    fabric supervisor (:mod:`repro.parallel.fabric`, the ``distributed``
    backend) both drive their scheduling loops through the same ledger,
    so a lease expiry on a remote host consumes an attempt exactly the
    way a SIGKILLed forked worker does.
    """

    def __init__(
        self,
        retry: RetryPolicy = HOST_RETRY_POLICY,
        on_error: str = "quarantine",
        labels: Sequence[str] | None = None,
        stats: "SupervisorStats | None" = None,
        seed: int = 0,
    ) -> None:
        if on_error not in ON_ERROR_MODES:
            raise ConfigurationError(
                f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
            )
        self.retry = retry
        self.on_error = on_error
        self.labels = labels
        self.stats = stats if stats is not None else SupervisorStats()
        self.rng = np.random.default_rng(seed)  # backoff jitter stream

    def make_tasks(self, jobs: Sequence[Any]) -> deque[_Task]:
        """The work queue: one retryable task per job, in input order."""
        return deque(_Task(index, job) for index, job in enumerate(jobs))

    def label(self, index: int) -> str:
        if self.labels is not None and index < len(self.labels):
            return self.labels[index]
        return f"job[{index}]"

    def fail_attempt(
        self,
        task: _Task,
        error: tuple[str, str, str],
        queue: deque[_Task],
        now: float,
    ) -> CellFailure | None:
        """Record a failed attempt: requeue with backoff, or give up.

        Returns the :class:`CellFailure` when the retry budget is spent
        (quarantine mode); raises in ``on_error="raise"`` mode. The
        requeue delay is jittered from this ledger's seeded RNG, so
        simultaneous requeues spread out deterministically instead of
        retrying in lockstep.
        """
        task.attempts += 1
        task.last_error = error
        if task.attempts < self.retry.max_attempts:
            task.not_before = now + self.retry.delay(task.attempts - 1, self.rng)
            self.stats.retries += 1
            queue.append(task)
            return None
        self.stats.quarantined += 1
        failure = CellFailure(
            index=task.index,
            label=self.label(task.index),
            attempts=task.attempts,
            error_type=error[0],
            message=error[1],
            traceback_text=error[2],
        )
        if self.on_error == "raise":
            raise WorkerError(
                failure.label,
                failure.index,
                failure.error_type,
                f"{failure.message} [after {failure.attempts} attempt(s)]",
                failure.traceback_text,
            )
        return failure

    def raise_non_retryable(self, task: _Task, error: tuple[str, str, str]):
        raise WorkerError(
            self.label(task.index), task.index, error[0], error[1], error[2]
        )

    @staticmethod
    def next_ready(queue: deque[_Task], now: float) -> _Task | None:
        """Pop the first task whose backoff delay has elapsed."""
        for _ in range(len(queue)):
            task = queue.popleft()
            if task.not_before <= now:
                return task
            queue.append(task)
        return None


def _worker_main(fn: Callable[[Any], Any], conn) -> None:
    """Worker child: serve one job at a time over the duplex pipe."""
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:  # orderly shutdown sentinel
            return
        index, job = msg
        try:
            payload = (index, "ok", fn(job), True)
        except (KeyboardInterrupt, SystemExit):
            return
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            retryable = not isinstance(exc, ConfigurationError)
            payload = (
                index,
                "err",
                (type(exc).__name__, str(exc), traceback.format_exc()),
                retryable,
            )
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            return
        except Exception as exc:  # unpicklable result: report, keep serving
            conn.send(
                (
                    index,
                    "err",
                    (type(exc).__name__, f"result not picklable: {exc}", ""),
                    False,
                )
            )


class _Slot:
    """One supervised worker: its process, pipe, and current assignment."""

    __slots__ = ("process", "conn", "task", "dispatched_at")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.task: _Task | None = None
        self.dispatched_at = 0.0


class SupervisedPool:
    """A crash-tolerant, timeout-enforcing pool of forked workers.

    Args:
        fn: the job function (must be importable/picklable-compatible;
            with ``fork`` it is inherited at spawn time).
        n_workers: worker processes (>= 1).
        timeout: per-job wall-clock budget in seconds; None disables.
        retry: attempt budget and backoff schedule
            (:data:`HOST_RETRY_POLICY` by default).
        on_error: ``"quarantine"`` yields :class:`CellFailure` for jobs
            that exhaust retries; ``"raise"`` re-raises a
            :class:`WorkerError` instead. Non-retryable errors
            (:class:`ConfigurationError`) always raise immediately.
        labels: display labels per job index (for errors/failures).
        on_dispatch: test/chaos hook called as ``on_dispatch(index, pid)``
            each time a job lands on a worker.
        stats: fault-accounting sink (a fresh one by default).
        deadline: absolute ``time.monotonic()`` instant past which the
            whole batch is abandoned: every busy worker is SIGKILLed and
            every unfinished job — running, queued, or awaiting a retry —
            is settled immediately as a :class:`CellFailure` with
            ``error_type="DeadlineExceeded"`` (no retries; a deadline is
            terminal by definition). None disables. This is the job-level
            budget the study service enforces; ``timeout`` stays the
            per-cell budget.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        n_workers: int,
        *,
        timeout: float | None = None,
        retry: RetryPolicy = HOST_RETRY_POLICY,
        on_error: str = "quarantine",
        labels: Sequence[str] | None = None,
        on_dispatch: Callable[[int, int], None] | None = None,
        stats: SupervisorStats | None = None,
        deadline: float | None = None,
    ) -> None:
        check_positive("n_workers", n_workers)
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        self.fn = fn
        self.n_workers = int(n_workers)
        self.timeout = timeout
        self.deadline = deadline
        self.retry = retry
        self.on_error = on_error
        self.labels = labels
        self.on_dispatch = on_dispatch
        self.ledger = AttemptLedger(
            retry, on_error, labels=labels, stats=stats
        )
        self.stats = self.ledger.stats
        self._ctx = multiprocessing.get_context("fork")
        self._slots: list[_Slot] = []

    # -- lifecycle -----------------------------------------------------
    def start(self, n_slots: int) -> None:
        """Fork the initial workers (raises ``OSError`` when fork fails)."""
        self._slots = []
        try:
            for _ in range(n_slots):
                self._slots.append(self._spawn_slot())
        except OSError:
            self._shutdown()
            raise

    def _spawn_slot(self) -> _Slot:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(self.fn, child_conn), daemon=True
        )
        process.start()
        child_conn.close()
        self.stats.respawns += 1
        return _Slot(process, parent_conn)

    def _retire_slot(self, slot: _Slot, *, kill: bool = False) -> None:
        try:
            slot.conn.close()
        except OSError:
            pass
        if kill and slot.process.is_alive():
            slot.process.kill()
        slot.process.join(timeout=5.0)
        if slot.process.is_alive():  # pragma: no cover - last resort
            slot.process.kill()
            slot.process.join(timeout=5.0)
        slot.process.close()

    def worker_pids(self) -> list[int]:
        """PIDs of the current worker processes (chaos/testing hook)."""
        return [
            slot.process.pid
            for slot in self._slots
            if slot.process.pid is not None
        ]

    def busy_pids(self) -> list[int]:
        """PIDs of workers currently executing a job."""
        return [
            slot.process.pid
            for slot in self._slots
            if slot.task is not None and slot.process.pid is not None
        ]

    # -- helpers -------------------------------------------------------
    # Retry/quarantine decisions live on the shared AttemptLedger so the
    # distributed fabric reuses them verbatim; these thin wrappers keep
    # the supervision loop readable.
    def _fail_attempt(
        self,
        task: _Task,
        error: tuple[str, str, str],
        queue: deque[_Task],
        now: float,
    ) -> CellFailure | None:
        return self.ledger.fail_attempt(task, error, queue, now)

    def _raise_non_retryable(self, task: _Task, error: tuple[str, str, str]):
        self.ledger.raise_non_retryable(task, error)

    # -- the supervision loop ------------------------------------------
    def run(self, jobs: Sequence[Any]) -> Iterator[tuple[int, Any]]:
        """Yield ``(index, result-or-CellFailure)`` in completion order."""
        queue: deque[_Task] = self.ledger.make_tasks(jobs)
        outstanding = len(queue)
        try:
            if not self._slots:
                self.start(min(self.n_workers, len(jobs)))
            while outstanding:
                now = time.monotonic()

                # Job-level deadline: abandon everything unfinished at
                # once. Workers are SIGKILLed (a deadline must hold even
                # against a hung cell) and every unsettled task becomes a
                # terminal DeadlineExceeded failure — no retries.
                if self.deadline is not None and now >= self.deadline:
                    for index, failure in self._expire_deadline(queue):
                        outstanding -= 1
                        yield index, failure
                    return

                # Kill and account jobs that blew their wall-clock budget.
                if self.timeout is not None:
                    for slot in self._slots:
                        if (
                            slot.task is not None
                            and now - slot.dispatched_at > self.timeout
                        ):
                            task = slot.task
                            slot.task = None
                            self.stats.timeouts += 1
                            self._retire_slot(slot, kill=True)
                            self._replace(slot)
                            failure = self._fail_attempt(
                                task,
                                (
                                    "CellTimeout",
                                    f"exceeded {self.timeout:g}s wall-clock "
                                    f"budget; worker killed",
                                    "",
                                ),
                                queue,
                                now,
                            )
                            if failure is not None:
                                outstanding -= 1
                                yield task.index, failure

                # Dispatch ready tasks onto idle workers.
                for position in range(len(self._slots)):
                    slot = self._slots[position]
                    if slot.task is not None or not queue:
                        continue
                    task = self._next_ready(queue, now)
                    if task is None:
                        break
                    if not slot.process.is_alive():
                        self._retire_slot(slot)
                        self._replace(slot)
                        slot = self._slots[position]
                    try:
                        slot.conn.send((task.index, task.job))
                    except (BrokenPipeError, OSError):
                        # Worker died between jobs; replace and count the
                        # dispatch as a failed attempt of this task.
                        self.stats.crashes += 1
                        self._retire_slot(slot, kill=True)
                        self._replace(slot)
                        failure = self._fail_attempt(
                            task,
                            ("WorkerCrash", "worker unreachable at dispatch", ""),
                            queue,
                            now,
                        )
                        if failure is not None:
                            outstanding -= 1
                            yield task.index, failure
                        continue
                    slot.task = task
                    slot.dispatched_at = now
                    if self.on_dispatch is not None:
                        self.on_dispatch(task.index, slot.process.pid)

                busy = [slot for slot in self._slots if slot.task is not None]
                if not busy and not queue:
                    break  # nothing left anywhere (all yielded)
                if not busy:
                    # Only backoff-delayed retries remain: sleep until due.
                    wake = min(task.not_before for task in queue)
                    time.sleep(max(0.0, wake - now))
                    continue

                ready = connection.wait(
                    [slot.conn for slot in busy]
                    + [slot.process.sentinel for slot in busy],
                    timeout=self._wait_timeout(queue, busy, now),
                )
                conn_to_slot = {slot.conn: slot for slot in busy}
                sentinel_to_slot = {slot.process.sentinel: slot for slot in busy}
                handled: set[int] = set()
                for obj in ready:
                    slot = conn_to_slot.get(obj) or sentinel_to_slot.get(obj)
                    if slot is None or id(slot) in handled or slot.task is None:
                        continue
                    handled.add(id(slot))
                    outstanding -= self._reap(slot, queue, yield_to := [])
                    for index, outcome in yield_to:
                        yield index, outcome
        finally:
            self._shutdown()

    def _replace(self, dead: _Slot) -> None:
        self._slots[self._slots.index(dead)] = self._spawn_slot()

    def _expire_deadline(
        self, queue: deque[_Task]
    ) -> list[tuple[int, CellFailure]]:
        """Settle every unfinished task as a terminal DeadlineExceeded.

        Busy workers are killed (not waited for — the deadline already
        passed); queued and backoff-delayed tasks fail in place. In
        ``on_error="raise"`` mode the first abandoned task raises a
        :class:`~repro.parallel.executor.WorkerError` instead.
        """
        abandoned: list[_Task] = []
        retired: list[_Slot] = []
        for slot in self._slots:
            if slot.task is not None:
                abandoned.append(slot.task)
                slot.task = None
                self.stats.timeouts += 1
                self._retire_slot(slot, kill=True)
                retired.append(slot)
        # Retired slots hold closed process objects; drop them so the
        # shutdown in run()'s finally does not double-close them.
        self._slots = [slot for slot in self._slots if slot not in retired]
        abandoned.extend(queue)
        queue.clear()
        abandoned.sort(key=lambda task: task.index)
        out: list[tuple[int, CellFailure]] = []
        for task in abandoned:
            self.stats.quarantined += 1
            failure = CellFailure(
                index=task.index,
                label=self.ledger.label(task.index),
                attempts=max(1, task.attempts + 1),
                error_type="DeadlineExceeded",
                message="job deadline reached before this cell settled",
            )
            if self.on_error == "raise":
                raise WorkerError(
                    failure.label,
                    failure.index,
                    failure.error_type,
                    failure.message,
                )
            out.append((task.index, failure))
        return out

    def _next_ready(self, queue: deque[_Task], now: float) -> _Task | None:
        return self.ledger.next_ready(queue, now)

    def _wait_timeout(
        self, queue: deque[_Task], busy: list[_Slot], now: float
    ) -> float | None:
        deadlines = []
        if self.timeout is not None:
            deadlines += [
                slot.dispatched_at + self.timeout for slot in busy
            ]
        if self.deadline is not None:
            deadlines.append(self.deadline)
        deadlines += [task.not_before for task in queue if task.not_before > now]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - now) + 0.005

    def _reap(
        self,
        slot: _Slot,
        queue: deque[_Task],
        out: list[tuple[int, Any]],
    ) -> int:
        """Collect one worker's message (or death); returns jobs settled."""
        task = slot.task
        assert task is not None
        now = time.monotonic()
        try:
            if slot.conn.poll(0):
                index, status, payload, retryable = slot.conn.recv()
            elif not slot.process.is_alive():
                raise EOFError  # died without a message
            else:
                return 0  # sentinel raced a still-alive worker; wait more
        except (EOFError, OSError):
            # Hard death mid-job: SIGKILL, OOM kill, or interpreter abort.
            slot.task = None
            self.stats.crashes += 1
            self._retire_slot(slot, kill=True)
            self._replace(slot)
            failure = self._fail_attempt(
                task,
                (
                    "WorkerCrash",
                    "worker process died mid-job (SIGKILL/OOM?)",
                    "",
                ),
                queue,
                now,
            )
            if failure is not None:
                out.append((task.index, failure))
                return 1
            return 0
        slot.task = None
        if status == "ok":
            self.stats.completed += 1
            out.append((index, payload))
            return 1
        if not retryable:
            self._raise_non_retryable(task, payload)
        failure = self._fail_attempt(task, payload, queue, now)
        if failure is not None:
            out.append((task.index, failure))
            return 1
        return 0

    def _shutdown(self) -> None:
        for slot in self._slots:
            try:
                slot.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            self._retire_slot(slot, kill=True)
        self._slots = []


def _serial_supervised(
    fn: Callable[[Any], Any],
    jobs: Sequence[Any],
    retry: RetryPolicy,
    on_error: str,
    labels: Sequence[str] | None,
    deadline: float | None = None,
) -> Iterator[tuple[int, Any]]:
    """In-process degradation path: same retry/quarantine, no isolation.

    A ``deadline`` is checked *between* jobs only — without process
    isolation a running cell cannot be interrupted — so every job not
    yet started when the deadline passes fails as DeadlineExceeded.
    """
    rng = np.random.default_rng(0)
    for index, job in enumerate(jobs):
        if deadline is not None and time.monotonic() >= deadline:
            label = labels[index] if labels and index < len(labels) else f"job[{index}]"
            message = "job deadline reached before this cell started"
            if on_error == "raise":
                raise WorkerError(label, index, "DeadlineExceeded", message)
            yield index, CellFailure(
                index=index,
                label=label,
                attempts=1,
                error_type="DeadlineExceeded",
                message=message,
            )
            continue
        attempts = 0
        while True:
            try:
                yield index, fn(job)
                break
            except (KeyboardInterrupt, SystemExit, ConfigurationError):
                raise
            except Exception as exc:
                attempts += 1
                if attempts < retry.max_attempts:
                    time.sleep(retry.delay(attempts - 1, rng))
                    continue
                if on_error == "raise":
                    raise
                label = labels[index] if labels and index < len(labels) else f"job[{index}]"
                yield index, CellFailure(
                    index=index,
                    label=label,
                    attempts=attempts,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    traceback_text=traceback.format_exc(),
                )
                break


def supervised_imap(
    fn: Callable[[Any], Any],
    jobs: Sequence[Any],
    n_workers: int = 1,
    *,
    timeout: float | None = None,
    retry: RetryPolicy = HOST_RETRY_POLICY,
    on_error: str = "quarantine",
    labels: Sequence[str] | None = None,
    on_dispatch: Callable[[int, int], None] | None = None,
    stats: SupervisorStats | None = None,
    deadline: float | None = None,
) -> Iterator[tuple[int, Any]]:
    """Fault-tolerant :func:`~repro.parallel.parallel_imap`.

    Yields ``(index, outcome)`` in completion order, where ``outcome`` is
    the job's result or a :class:`CellFailure` for quarantined jobs.
    Falls back to serial in-process execution (identical retry and
    quarantine semantics, no timeouts) with ``n_workers <= 1``, a single
    job, no ``fork`` support, or a pool that fails to start.

    Pass a :class:`SupervisorStats` as ``stats`` to receive the pool's
    fault accounting (crashes, timeouts, retries, quarantines).

    Degrading to serial execution with ``n_workers > 1`` — because the
    platform lacks ``fork``/``SIGKILL`` or the pool failed to start —
    emits one structured :class:`~repro.parallel.executor.
    DegradedExecutionWarning` naming the reason (never a silent
    fallback).
    """
    check_positive("n_workers", n_workers)
    n_workers = min(int(n_workers), len(jobs))
    if n_workers > 1 and len(jobs) > 1:
        reason = serial_fallback_reason()
        if reason is None:
            pool = SupervisedPool(
                fn,
                n_workers,
                timeout=timeout,
                retry=retry,
                on_error=on_error,
                labels=labels,
                on_dispatch=on_dispatch,
                stats=stats,
                deadline=deadline,
            )
            try:
                # Fork eagerly so setup failure degrades *before* any
                # result is yielded (a mid-run fallback would re-run
                # yielded jobs).
                pool.start(n_workers)
            except OSError as exc:
                warn_degraded(
                    "local", f"worker pool failed to start: {exc}", once=False
                )
            else:
                yield from pool.run(jobs)
                return
        else:
            warn_degraded("local", reason)
    yield from _serial_supervised(fn, jobs, retry, on_error, labels, deadline)
