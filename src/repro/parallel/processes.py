"""Process-pool Fock builder: the distributed-memory host backend.

Where :mod:`repro.parallel.pool` uses threads (shared address space, GIL
interleaving), this backend forks worker *processes* — separate address
spaces, explicit result movement — which is the honest shared-nothing
analogue of the paper's MPI ranks on a laptop scale:

- ``static``: LPT pre-partition, no coordination at all;
- ``counter``: a ``multiprocessing.Value`` fetch-and-add — a real
  OS-level shared counter with real lock contention.

Each worker accumulates a private partial Fock and ships it back whole
over a queue (one reduce at the end, like the simulated runtime's
accumulate phase collapsed into a single message). Requires a ``fork``
start method (POSIX), which lets workers inherit the problem's integral
caches without pickling.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field

import numpy as np

from repro.balance.greedy import lpt
from repro.chemistry.scf import GBuilder, ScfProblem
from repro.util import ConfigurationError, SchedulingError, check_positive


@dataclass
class ProcessStats:
    """Observability for one process-pool build."""

    mode: str
    n_workers: int
    wall_seconds: float = 0.0
    tasks_per_worker: list[int] = field(default_factory=list)


def _static_worker(problem, tids, density, out_queue, worker_id):
    n = problem.basis.n_basis
    partial = np.zeros((n, n))
    for tid in tids:
        problem.kernel.execute_dense(problem.graph.tasks[tid], density, partial)
    out_queue.put((worker_id, len(tids), partial))


def _counter_worker(problem, counter, density, out_queue, worker_id):
    n = problem.basis.n_basis
    n_tasks = problem.graph.n_tasks
    partial = np.zeros((n, n))
    executed = 0
    while True:
        with counter.get_lock():
            tid = counter.value
            counter.value += 1
        if tid >= n_tasks:
            break
        problem.kernel.execute_dense(problem.graph.tasks[tid], density, partial)
        executed += 1
    out_queue.put((worker_id, executed, partial))


class ProcessFockBuilder:
    """Builds the two-electron Fock matrix with forked worker processes.

    Args:
        problem: prebuilt SCF problem.
        n_workers: process count.
        mode: ``"static"`` or ``"counter"``.
    """

    def __init__(
        self, problem: ScfProblem, n_workers: int = 2, mode: str = "static"
    ) -> None:
        check_positive("n_workers", n_workers)
        if mode not in ("static", "counter"):
            raise ConfigurationError(f"mode must be 'static' or 'counter', got {mode!r}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "ProcessFockBuilder needs the 'fork' start method (POSIX only)"
            )
        self.problem = problem
        self.n_workers = int(n_workers)
        self.mode = mode
        self.last_stats: ProcessStats | None = None
        self._ctx = multiprocessing.get_context("fork")

    def build(self, density: np.ndarray) -> np.ndarray:
        """Compute G(D) across worker processes."""
        n = self.problem.basis.n_basis
        if density.shape != (n, n):
            raise ConfigurationError(f"density must be ({n}, {n}), got {density.shape}")
        graph = self.problem.graph
        start = time.perf_counter()
        out_queue = self._ctx.Queue()
        workers = []
        if self.mode == "static":
            assignment = lpt(graph.costs, self.n_workers)
            lists: list[list[int]] = [[] for _ in range(self.n_workers)]
            for tid, w in enumerate(assignment):
                lists[w].append(tid)
            for worker_id in range(self.n_workers):
                workers.append(
                    self._ctx.Process(
                        target=_static_worker,
                        args=(self.problem, lists[worker_id], density, out_queue, worker_id),
                    )
                )
        else:
            counter = self._ctx.Value("l", 0)
            for worker_id in range(self.n_workers):
                workers.append(
                    self._ctx.Process(
                        target=_counter_worker,
                        args=(self.problem, counter, density, out_queue, worker_id),
                    )
                )
        for proc in workers:
            proc.daemon = True
            proc.start()
        total = np.zeros((n, n))
        counts = [0] * self.n_workers
        for _ in range(self.n_workers):
            worker_id, executed, partial = out_queue.get(timeout=600)
            counts[worker_id] = executed
            total += partial
        for proc in workers:
            proc.join(timeout=60)
        stats = ProcessStats(self.mode, self.n_workers)
        stats.wall_seconds = time.perf_counter() - start
        stats.tasks_per_worker = counts
        self.last_stats = stats
        if sum(counts) != graph.n_tasks:
            raise SchedulingError(
                f"{sum(counts)} tasks executed across processes, "
                f"expected {graph.n_tasks}"
            )
        return total

    __call__ = build


def process_g_builder(
    problem: ScfProblem, n_workers: int = 2, mode: str = "static"
) -> GBuilder:
    """A :func:`repro.chemistry.scf.run_scf`-compatible process builder."""
    builder = ProcessFockBuilder(problem, n_workers=n_workers, mode=mode)
    return builder.build
