"""The distributed sweep fabric: leased TCP workers, one coordination loop.

:mod:`repro.parallel.supervisor` supervises *forked* workers over pipes;
this module is the same supervision discipline stretched across hosts.
A :class:`FabricServer` listens on a TCP endpoint; any number of
``python -m repro worker`` daemons (:mod:`repro.parallel.worker`)
connect, pull cells under **time-bounded leases**, stream heartbeats
while computing, and push results tagged with the cell's content key.
:class:`DistributedExecutor` wraps the server behind the
:class:`~repro.parallel.executor.CellExecutor` protocol, so the sweep
orchestrator cannot tell the backends apart.

Design rules, mirroring the local supervisor:

- **One cell per worker at a time.** The server always knows which
  worker holds which cell; a vanished worker costs exactly its in-flight
  cell, never the batch.
- **Leases, not trust.** A dispatched cell carries a wall-clock lease.
  A cell that overruns it (hung or frozen worker) is revoked and
  requeued; a worker that stops heartbeating (SIGKILL, network
  partition, SIGSTOP) has its connection declared dead and its cell
  requeued. Both paths consume one retry attempt through the *same*
  :class:`~repro.parallel.supervisor.AttemptLedger` the forked pool
  uses — requeue, deterministic jittered backoff, quarantine after
  ``max_attempts``.
- **Content-keyed transfer, never pickled graphs per cell.** Task
  graphs and the job function travel once per worker as content-keyed
  blobs (the cross-host analogue of the shared-memory handoff in
  :mod:`repro.parallel.shm`): cells are dispatched with a
  :class:`GraphRef` in place of the graph, and workers ``fetch`` the
  bytes by key on first use. Results come back tagged with a dispatch
  key derived from the cell's content, so a **duplicate completion** —
  a partitioned-then-healed worker pushing a result the server already
  requeued and recomputed — is deduplicated idempotently (first valid
  result wins, the rest are counted and dropped).
- **Graceful degradation.** If no worker ever connects, or every remote
  worker is lost mid-sweep, the executor reroutes the unfinished cells
  through the fallback local executor after one structured
  :class:`~repro.parallel.executor.DegradedExecutionWarning` — a dead
  fleet costs its in-flight cells, not the sweep.

Wire protocol (version :data:`PROTOCOL_VERSION`): length-prefixed
pickled tuples; see ``docs/distributed.md`` for the frame and failure
matrix. Cells are assumed idempotent and deterministic (sweep cells are
pure functions of their inputs), which is what makes requeue-on-lease-
expiry and duplicate dedupe *correct*, not merely convenient.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
import queue as queue_mod
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.parallel.executor import (
    CellExecutor,
    LocalExecutor,
    WorkerError,
    warn_degraded,
)
from repro.parallel.supervisor import (
    HOST_RETRY_POLICY,
    AttemptLedger,
    CellFailure,
    SupervisorStats,
)
from repro.util import ConfigurationError

#: Fabric wire-protocol version; a worker with a different version is
#: turned away at the handshake.
PROTOCOL_VERSION = 1

#: Hard cap on a single frame (a pickled TaskGraph blob fits well under
#: this; anything larger is a protocol violation, not a workload).
MAX_FRAME_BYTES = 1 << 30

_LEN = struct.Struct("!Q")


class FabricProtocolError(ConfigurationError):
    """A malformed or oversized frame on the fabric socket."""


class NoWorkersError(RuntimeError):
    """The fabric has no live workers left; ``pending`` holds the
    indices of jobs that still need a home."""

    def __init__(self, reason: str, pending: list[int]) -> None:
        super().__init__(reason)
        self.reason = reason
        self.pending = pending


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def send_frame(sock: socket.socket, obj: Any, lock: threading.Lock | None = None) -> None:
    """Write one length-prefixed pickled frame (thread-safe with ``lock``)."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    data = _LEN.pack(len(payload)) + payload
    if lock is not None:
        with lock:
            sock.sendall(data)
    else:
        sock.sendall(data)


def recv_frame(sock: socket.socket) -> Any:
    """Read one frame; raises ``EOFError`` on a cleanly closed socket."""
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FabricProtocolError(f"frame of {length} bytes exceeds cap")
    return pickle.loads(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise EOFError("fabric peer closed the connection")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Content-keyed references
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GraphRef:
    """A content-keyed stand-in for a task graph in a dispatched cell.

    ``key`` is the sha256 of the graph's pickled bytes; workers resolve
    it through the fabric's ``fetch`` channel, caching per process — the
    cross-host analogue of :class:`repro.parallel.shm.GraphHandle`.
    """

    key: str
    nbytes: int = 0


def blob_key(data: bytes) -> str:
    """The content address of one transferable blob."""
    return hashlib.sha256(data).hexdigest()


def _swap_graph_refs(
    jobs: Sequence[Any], blobs: dict[str, bytes]
) -> list[tuple[Any, bytes, str]]:
    """Prepare jobs for dispatch: pickle each with its graph replaced by
    a :class:`GraphRef`, registering graph bytes in ``blobs`` once per
    distinct graph. Returns ``(original_job, payload_bytes, key)`` per
    job, where ``key`` is the dispatch content key.
    """
    graph_keys: dict[int, str] = {}
    out: list[tuple[Any, bytes, str]] = []
    for job in jobs:
        ship = job
        graph = getattr(job, "graph", None)
        if (
            graph is not None
            and dataclasses.is_dataclass(job)
            and not isinstance(graph, GraphRef)
        ):
            gkey = graph_keys.get(id(graph))
            if gkey is None:
                data = pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL)
                gkey = blob_key(data)
                blobs.setdefault(gkey, data)
                graph_keys[id(graph)] = gkey
            ship = dataclasses.replace(
                job, graph=GraphRef(key=gkey, nbytes=len(blobs[gkey]))
            )
        payload = pickle.dumps(ship, protocol=pickle.HIGHEST_PROTOCOL)
        out.append((job, payload, blob_key(payload)))
    return out


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------

class _WorkerConn:
    """One connected worker daemon: socket, identity, and assignment."""

    __slots__ = (
        "sock", "wlock", "worker_id", "pid", "state",
        "task", "key", "dispatched_at", "last_seen",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.wlock = threading.Lock()
        self.worker_id = "?"
        self.pid = -1
        # new -> idle <-> busy -> dead; "revoked" = lease taken back but
        # the worker is still chewing on the old cell (do not redispatch
        # until it reports ready).
        self.state = "new"
        self.task = None  # the _Task currently leased to this worker
        self.key = ""  # dispatch key of the leased cell
        self.dispatched_at = 0.0
        self.last_seen = 0.0

    def send(self, obj: Any) -> None:
        send_frame(self.sock, obj, self.wlock)

    def close(self) -> None:
        self.state = "dead"
        try:
            self.sock.close()
        except OSError:
            pass


class FabricServer:
    """TCP sweep supervisor: accepts workers, leases cells, collects results.

    Args:
        host, port: bind address (``port=0`` picks an ephemeral port;
            read :attr:`endpoint` afterwards).
        lease: default per-cell wall-clock lease in seconds. A cell not
            completed within its lease is revoked and requeued.
        heartbeat: heartbeat interval advertised to workers (default
            ``lease / 4``, clamped to [0.05, 2.0]).
        connect_timeout: how long :meth:`run` waits for the *first*
            worker before giving up on the fabric entirely.
        degrade_after: grace period with zero live workers (after at
            least one had connected) before :meth:`run` abandons the
            fabric mid-sweep.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lease: float = 30.0,
        heartbeat: float | None = None,
        connect_timeout: float = 10.0,
        degrade_after: float = 5.0,
    ) -> None:
        if lease <= 0:
            raise ConfigurationError(f"lease must be > 0, got {lease}")
        self.lease = float(lease)
        self.heartbeat = (
            float(heartbeat)
            if heartbeat is not None
            else min(2.0, max(0.05, self.lease / 4.0))
        )
        self.connect_timeout = float(connect_timeout)
        self.degrade_after = float(degrade_after)
        self._listener = socket.create_server((host, port), backlog=16)
        self._listener.settimeout(0.25)
        self._conns: list[_WorkerConn] = []
        self._conns_lock = threading.Lock()
        self._events: queue_mod.Queue = queue_mod.Queue()
        self._blobs: dict[str, bytes] = {}
        self._closed = False
        self._ever_connected = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fabric-accept", daemon=True
        )
        self._accept_thread.start()

    # -- lifecycle -----------------------------------------------------
    @property
    def endpoint(self) -> tuple[str, int]:
        """The ``(host, port)`` workers should connect to."""
        addr = self._listener.getsockname()
        return addr[0], addr[1]

    def close(self) -> None:
        """Shut the fabric down: tell workers to exit, close every socket."""
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conns_lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.send(("shutdown",))
            except OSError:
                pass
            conn.close()

    def __enter__(self) -> "FabricServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- connection plumbing (accept + reader threads) ------------------
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _WorkerConn(sock)
            with self._conns_lock:
                self._conns.append(conn)
            threading.Thread(
                target=self._reader_loop,
                args=(conn,),
                name="fabric-reader",
                daemon=True,
            ).start()

    def _reader_loop(self, conn: _WorkerConn) -> None:
        while True:
            try:
                frame = recv_frame(conn.sock)
            except (EOFError, OSError, pickle.UnpicklingError, FabricProtocolError) as exc:
                self._events.put(("gone", conn, repr(exc)))
                return
            self._events.put(("frame", conn, frame))

    def live_workers(self) -> list[_WorkerConn]:
        """Connections that have completed the handshake and not died."""
        with self._conns_lock:
            return [
                c for c in self._conns if c.state in ("idle", "busy", "revoked")
            ]

    def worker_pids(self) -> list[int]:
        """Remote daemon PIDs (chaos/testing hook)."""
        return [c.pid for c in self.live_workers() if c.pid > 0]

    def _drop(self, conn: _WorkerConn) -> None:
        conn.close()
        with self._conns_lock:
            if conn in self._conns:
                self._conns.remove(conn)

    # -- the supervision loop ------------------------------------------
    def run(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        lease: float | None = None,
        retry: Any = None,
        on_error: str = "quarantine",
        labels: Sequence[str] | None = None,
        on_dispatch: Callable[[int, int], None] | None = None,
        stats: SupervisorStats | None = None,
    ) -> Iterator[tuple[int, Any]]:
        """Yield ``(index, result-or-CellFailure)`` in completion order.

        Raises :class:`NoWorkersError` (carrying the unfinished indices)
        when the fabric is or becomes workerless — the executor layer
        turns that into local fallback, so callers of the executor never
        see it.
        """
        ledger = AttemptLedger(
            retry if retry is not None else HOST_RETRY_POLICY,
            on_error,
            labels=labels,
            stats=stats,
        )
        lease_s = float(lease) if lease is not None else self.lease
        fn_bytes = pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL)
        fn_key = blob_key(fn_bytes)
        self._blobs = {fn_key: fn_bytes}
        prepared = _swap_graph_refs(jobs, self._blobs)
        payloads = {i: (p, k) for i, (_job, p, k) in enumerate(prepared)}
        queue = ledger.make_tasks(jobs)
        tasks = {task.index: task for task in queue}
        settled: set[int] = set()
        outstanding = len(queue)
        started = time.monotonic()
        last_alive = started
        hb_timeout = max(3.0 * self.heartbeat, 0.5)

        def revoke(conn: _WorkerConn, error: tuple[str, str, str], *, drop: bool):
            """Take the leased cell back; returns a quarantine failure or None."""
            task = conn.task
            conn.task, conn.key = None, ""
            if drop:
                self._drop(conn)
            else:
                # Still chewing on the revoked cell; back in rotation
                # only after it reports ready.
                conn.state = "revoked"
            if task is None or task.index in settled:
                return None
            return ledger.fail_attempt(task, error, queue, time.monotonic())

        def settle(index: int) -> None:
            settled.add(index)
            tasks.pop(index, None)

        while outstanding:
            now = time.monotonic()

            # Expire leases: overrun cells are revoked (worker kept, it
            # may just be slow); silent workers are declared dead.
            for conn in self.live_workers():
                if conn.state == "revoked":
                    # Heartbeats continue through a slow cell; a revoked
                    # worker gone silent is dead (e.g. SIGSTOP forever)
                    # and must not keep the fabric looking alive.
                    if now - conn.last_seen > hb_timeout:
                        ledger.stats.disconnects += 1
                        self._drop(conn)
                    continue
                if conn.state != "busy" or conn.task is None:
                    continue
                failure = None
                if now - conn.dispatched_at > lease_s:
                    ledger.stats.lease_expiries += 1
                    ledger.stats.timeouts += 1
                    failure = revoke(
                        conn,
                        (
                            "LeaseExpired",
                            f"cell exceeded its {lease_s:g}s lease; requeued",
                            "",
                        ),
                        drop=False,
                    )
                elif now - conn.last_seen > hb_timeout:
                    ledger.stats.lease_expiries += 1
                    ledger.stats.crashes += 1
                    ledger.stats.disconnects += 1
                    failure = revoke(
                        conn,
                        (
                            "WorkerLost",
                            f"no heartbeat for {hb_timeout:g}s "
                            "(worker dead or partitioned)",
                            "",
                        ),
                        drop=True,
                    )
                if failure is not None:
                    settle(failure.index)
                    outstanding -= 1
                    yield failure.index, failure

            # Dispatch ready cells onto idle workers.
            for conn in self.live_workers():
                if conn.state != "idle" or not queue:
                    continue
                task = ledger.next_ready(queue, now)
                if task is None:
                    break
                payload, key = payloads[task.index]
                try:
                    conn.send(("cell", task.index, key, fn_key, payload))
                except OSError:
                    ledger.stats.crashes += 1
                    ledger.stats.disconnects += 1
                    self._drop(conn)
                    failure = ledger.fail_attempt(
                        task,
                        ("WorkerCrash", "worker unreachable at dispatch", ""),
                        queue,
                        now,
                    )
                    if failure is not None:
                        settle(failure.index)
                        outstanding -= 1
                        yield failure.index, failure
                    continue
                conn.task, conn.key = task, key
                conn.state = "busy"
                conn.dispatched_at = conn.last_seen = now
                if on_dispatch is not None:
                    on_dispatch(task.index, conn.pid)

            # Degrade when the fabric is (or became) workerless.
            alive = self.live_workers()
            if alive:
                last_alive = now
            else:
                grace = (
                    self.degrade_after
                    if self._ever_connected
                    else self.connect_timeout
                )
                anchor = last_alive if self._ever_connected else started
                if now - anchor > grace:
                    pending = sorted(
                        set(tasks) - settled
                    )
                    ledger.stats.degraded += len(pending)
                    raise NoWorkersError(
                        "no remote workers "
                        + ("left" if self._ever_connected else "ever connected"),
                        pending,
                    )

            # Wait for the next event or deadline.
            try:
                kind, conn, body = self._events.get(timeout=0.05)
            except queue_mod.Empty:
                continue
            if kind == "gone":
                if conn.state == "dead":
                    continue
                was_busy = conn.state == "busy"
                if was_busy:
                    ledger.stats.crashes += 1
                ledger.stats.disconnects += 1
                failure = revoke(
                    conn,
                    (
                        "WorkerCrash",
                        f"connection lost mid-cell ({body})",
                        "",
                    ),
                    drop=True,
                ) if was_busy else (self._drop(conn) or None)
                if failure is not None:
                    settle(failure.index)
                    outstanding -= 1
                    yield failure.index, failure
                continue
            # kind == "frame"
            result = self._handle_frame(
                conn, body, ledger, queue, tasks, settled, payloads
            )
            if result is not None:
                index, outcome = result
                settle(index)
                outstanding -= 1
                yield index, outcome

    # -- frame handling -------------------------------------------------
    def _handle_frame(
        self,
        conn: _WorkerConn,
        frame: Any,
        ledger: AttemptLedger,
        queue: deque,
        tasks: dict[int, Any],
        settled: set[int],
        payloads: dict[int, tuple[bytes, str]],
    ) -> tuple[int, Any] | None:
        """Process one worker frame; returns a settled (index, outcome)."""
        if not isinstance(frame, tuple) or not frame:
            self._drop(conn)
            return None
        kind = frame[0]
        now = time.monotonic()
        conn.last_seen = now
        if kind == "hello":
            _, worker_id, version, pid = frame
            if version != PROTOCOL_VERSION:
                try:
                    conn.send(("shutdown",))
                except OSError:
                    pass
                self._drop(conn)
                return None
            conn.worker_id = str(worker_id)
            conn.pid = int(pid)
            conn.state = "idle"
            self._ever_connected = True
            try:
                conn.send(
                    (
                        "welcome",
                        {
                            "version": PROTOCOL_VERSION,
                            "lease": self.lease,
                            "heartbeat": self.heartbeat,
                        },
                    )
                )
            except OSError:
                self._drop(conn)
            return None
        if kind == "ready":
            # Sent after the handshake and after each completion. Only
            # honour it when no lease is held: the post-handshake ready
            # can race a dispatch (the server may assign a cell the
            # moment hello lands), and clearing an active lease here
            # would orphan the task.
            if conn.task is None and conn.state != "dead":
                conn.state = "idle"
            return None
        if kind == "heartbeat":
            return None  # last_seen already refreshed above
        if kind == "fetch":
            _, key = frame
            data = self._blobs.get(key)
            try:
                if data is None:
                    conn.send(("no-blob", key))
                else:
                    conn.send(("blob", key, data))
            except OSError:
                pass  # reader thread will surface the loss
            return None
        if kind in ("result", "error"):
            index, key = frame[1], frame[2]
            expected = payloads.get(index)
            if (
                index in settled
                or expected is None
                or expected[1] != key
            ):
                # Duplicate or stale completion (healed partition, dup
                # delivery, previous run): idempotent — drop and count.
                ledger.stats.duplicates += 1
                return None
            task = tasks.get(index)
            if task is None:
                ledger.stats.duplicates += 1
                return None
            if conn.task is task:
                conn.task, conn.key = None, ""
            else:
                # A *different* worker holds the current lease — this is
                # the original leaseholder finishing after revocation.
                # First valid completion wins; release the other lease.
                for other in self.live_workers():
                    if other.task is task:
                        # The other worker is still computing the now-
                        # settled cell; its eventual result dedupes.
                        other.task, other.key = None, ""
                        other.state = "revoked"
            if kind == "result":
                try:
                    value = pickle.loads(frame[3])
                except Exception as exc:  # noqa: BLE001 - treat as attempt
                    failure = ledger.fail_attempt(
                        task,
                        ("ResultDecodeError", f"undecodable result: {exc}", ""),
                        queue,
                        now,
                    )
                    return (index, failure) if failure is not None else None
                ledger.stats.completed += 1
                if task in queue:  # healed partition: still queued for retry
                    queue.remove(task)
                return index, value
            _kind, _index, _key, error, retryable = frame
            if not retryable:
                ledger.raise_non_retryable(task, error)
            if task in queue:
                queue.remove(task)
            failure = ledger.fail_attempt(task, error, queue, now)
            return (index, failure) if failure is not None else None
        # Unknown frame kind: protocol violation; drop the peer.
        self._drop(conn)
        return None


# ----------------------------------------------------------------------
# The executor wrapper
# ----------------------------------------------------------------------

class DistributedExecutor(CellExecutor):
    """The ``distributed`` backend: a :class:`FabricServer` plus fallback.

    Construct (optionally via ``make_executor("distributed", ...)``),
    read :attr:`endpoint`, point ``python -m repro worker --connect
    HOST:PORT`` daemons at it, and hand the executor to
    :class:`~repro.core.sweep.SweepRunner` (``executor=``). The sweep's
    ``timeout`` knob becomes the per-cell lease. If the fabric is or
    becomes workerless, unfinished cells rerun through the fallback
    local executor (fresh retry budget) after a structured warning.
    """

    name = "distributed"
    graph_handoff = "ref"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        bind: tuple[str, int] | str | None = None,
        lease: float = 30.0,
        heartbeat: float | None = None,
        connect_timeout: float = 10.0,
        degrade_after: float = 5.0,
        fallback: CellExecutor | None = None,
    ) -> None:
        if bind is not None:
            host, port = parse_endpoint(bind) if isinstance(bind, str) else bind
        self.server = FabricServer(
            host,
            port,
            lease=lease,
            heartbeat=heartbeat,
            connect_timeout=connect_timeout,
            degrade_after=degrade_after,
        )
        self.fallback = fallback if fallback is not None else LocalExecutor()

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.server.endpoint

    def close(self) -> None:
        self.server.close()

    def __enter__(self) -> "DistributedExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def run(
        self,
        fn,
        jobs,
        *,
        n_workers=1,
        timeout=None,
        retry=None,
        on_error="quarantine",
        labels=None,
        on_dispatch=None,
        stats=None,
        deadline=None,
    ):
        # A job-level deadline is enforced *between* settles here: the
        # lease machinery already bounds each in-flight cell, so closing
        # the dispatch generator at the first settle past the deadline
        # bounds the whole batch. The remaining cells are settled as
        # terminal DeadlineExceeded failures by _expire_remaining.
        if deadline is not None:
            yield from self._run_with_deadline(
                fn, jobs, n_workers, timeout, retry, on_error, labels,
                on_dispatch, stats, deadline,
            )
            return
        try:
            yield from self.server.run(
                fn,
                jobs,
                lease=timeout,
                retry=retry,
                on_error=on_error,
                labels=labels,
                on_dispatch=on_dispatch,
                stats=stats,
            )
        except NoWorkersError as exc:
            warn_degraded("distributed", exc.reason, once=False)
            pending = exc.pending
            sub_labels = (
                [labels[i] if i < len(labels) else f"job[{i}]" for i in pending]
                if labels is not None
                else None
            )
            for position, outcome in self.fallback.run(
                fn,
                [jobs[i] for i in pending],
                n_workers=n_workers,
                timeout=timeout,
                retry=retry,
                on_error=on_error,
                labels=sub_labels,
                on_dispatch=on_dispatch,
                stats=stats,
            ):
                yield pending[position], outcome

    def _run_with_deadline(
        self, fn, jobs, n_workers, timeout, retry, on_error, labels,
        on_dispatch, stats, deadline,
    ):
        settled: set[int] = set()
        inner = self.run(
            fn,
            jobs,
            n_workers=n_workers,
            timeout=timeout,
            retry=retry,
            on_error=on_error,
            labels=labels,
            on_dispatch=on_dispatch,
            stats=stats,
        )
        expired = False
        try:
            for index, outcome in inner:
                settled.add(index)
                yield index, outcome
                if time.monotonic() >= deadline:
                    expired = True
                    break
        finally:
            inner.close()
        if not expired:
            return
        for index in range(len(jobs)):
            if index in settled:
                continue
            label = (
                labels[index]
                if labels is not None and index < len(labels)
                else f"job[{index}]"
            )
            message = "job deadline reached before this cell settled"
            if on_error == "raise":
                raise WorkerError(label, index, "DeadlineExceeded", message)
            if stats is not None:
                stats.quarantined += 1
            yield index, CellFailure(
                index=index,
                label=label,
                attempts=1,
                error_type="DeadlineExceeded",
                message=message,
            )


def parse_endpoint(spec: str) -> tuple[str, int]:
    """``"HOST:PORT"`` → ``(host, port)`` (host defaults to loopback)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ConfigurationError(
            f"endpoint must look like HOST:PORT, got {spec!r}"
        )
    return host or "127.0.0.1", int(port)
