"""Real shared-memory execution of the task graph (host validation).

The simulator answers the performance questions; this package answers the
"is any of this real?" question: the same task kernels, claimed by the same
three scheduling disciplines (static / shared counter / work stealing),
executed by actual Python threads on the host, with the resulting Fock
matrix checked against the serial reference. It also powers the laptop
examples and gives SCF a genuinely parallel two-electron builder.

:mod:`repro.parallel.executor` is the coarse-grained counterpart: generic
fork-based fan-out of independent jobs plus the :class:`CellExecutor`
backend protocol; :mod:`repro.parallel.supervisor` wraps the fan-out in
host-level fault tolerance (per-job timeouts, crash recovery,
retry/backoff, poison-job quarantine) — the ``local`` backend the sweep
orchestrator runs on by default — and :mod:`repro.parallel.fabric` /
:mod:`repro.parallel.worker` stretch the same supervision across hosts
as the ``distributed`` backend (leased TCP workers).
"""

from repro.parallel.executor import (
    CellExecutor,
    DegradedExecutionWarning,
    LocalExecutor,
    SerialExecutor,
    WorkerError,
    executor_names,
    fork_available,
    format_executor_spec,
    make_executor,
    parallel_imap,
    parallel_map,
    parse_executor_spec,
    register_executor,
)
from repro.parallel.supervisor import (
    HOST_RETRY_POLICY,
    AttemptLedger,
    CellFailure,
    SupervisedPool,
    SupervisorStats,
    supervised_imap,
)
from repro.parallel.fabric import (
    DistributedExecutor,
    FabricServer,
    GraphRef,
    NoWorkersError,
    parse_endpoint,
)
from repro.parallel.worker import WorkerChaos, run_worker
from repro.parallel.pool import (
    SharedMemoryFockBuilder,
    parallel_g_builder,
    ParallelStats,
)
from repro.parallel.processes import (
    ProcessFockBuilder,
    process_g_builder,
    ProcessStats,
)

__all__ = [
    "fork_available",
    "parallel_imap",
    "parallel_map",
    "WorkerError",
    "supervised_imap",
    "SupervisedPool",
    "SupervisorStats",
    "CellFailure",
    "AttemptLedger",
    "HOST_RETRY_POLICY",
    "CellExecutor",
    "LocalExecutor",
    "SerialExecutor",
    "DistributedExecutor",
    "DegradedExecutionWarning",
    "make_executor",
    "register_executor",
    "executor_names",
    "parse_executor_spec",
    "format_executor_spec",
    "FabricServer",
    "GraphRef",
    "NoWorkersError",
    "parse_endpoint",
    "WorkerChaos",
    "run_worker",
    "SharedMemoryFockBuilder",
    "parallel_g_builder",
    "ParallelStats",
    "ProcessFockBuilder",
    "process_g_builder",
    "ProcessStats",
]
