"""Real shared-memory execution of the task graph (host validation).

The simulator answers the performance questions; this package answers the
"is any of this real?" question: the same task kernels, claimed by the same
three scheduling disciplines (static / shared counter / work stealing),
executed by actual Python threads on the host, with the resulting Fock
matrix checked against the serial reference. It also powers the laptop
examples and gives SCF a genuinely parallel two-electron builder.

:mod:`repro.parallel.executor` is the coarse-grained counterpart: generic
fork-based fan-out of independent jobs (the sweep orchestrator's worker
pool).
"""

from repro.parallel.executor import fork_available, parallel_imap, parallel_map
from repro.parallel.pool import (
    SharedMemoryFockBuilder,
    parallel_g_builder,
    ParallelStats,
)
from repro.parallel.processes import (
    ProcessFockBuilder,
    process_g_builder,
    ProcessStats,
)

__all__ = [
    "fork_available",
    "parallel_imap",
    "parallel_map",
    "SharedMemoryFockBuilder",
    "parallel_g_builder",
    "ParallelStats",
    "ProcessFockBuilder",
    "process_g_builder",
    "ProcessStats",
]
