"""Real shared-memory execution of the task graph (host validation).

The simulator answers the performance questions; this package answers the
"is any of this real?" question: the same task kernels, claimed by the same
three scheduling disciplines (static / shared counter / work stealing),
executed by actual Python threads on the host, with the resulting Fock
matrix checked against the serial reference. It also powers the laptop
examples and gives SCF a genuinely parallel two-electron builder.

:mod:`repro.parallel.executor` is the coarse-grained counterpart: generic
fork-based fan-out of independent jobs; :mod:`repro.parallel.supervisor`
wraps it in host-level fault tolerance (per-job timeouts, crash
recovery, retry/backoff, poison-job quarantine) — the worker pool the
sweep orchestrator actually runs on.
"""

from repro.parallel.executor import (
    WorkerError,
    fork_available,
    parallel_imap,
    parallel_map,
)
from repro.parallel.supervisor import (
    HOST_RETRY_POLICY,
    CellFailure,
    SupervisedPool,
    SupervisorStats,
    supervised_imap,
)
from repro.parallel.pool import (
    SharedMemoryFockBuilder,
    parallel_g_builder,
    ParallelStats,
)
from repro.parallel.processes import (
    ProcessFockBuilder,
    process_g_builder,
    ProcessStats,
)

__all__ = [
    "fork_available",
    "parallel_imap",
    "parallel_map",
    "WorkerError",
    "supervised_imap",
    "SupervisedPool",
    "SupervisorStats",
    "CellFailure",
    "HOST_RETRY_POLICY",
    "SharedMemoryFockBuilder",
    "parallel_g_builder",
    "ParallelStats",
    "ProcessFockBuilder",
    "process_g_builder",
    "ProcessStats",
]
