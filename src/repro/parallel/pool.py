"""Thread-pool Fock builders with pluggable scheduling disciplines.

Workers accumulate into private Fock buffers (summed at the end), so no
numeric state is shared; only task *claiming* is concurrent:

- ``static``: LPT pre-partition on the analytic cost model; no runtime
  coordination at all.
- ``counter``: a shared index behind a lock — the shared-memory analogue
  of the NXTVAL counter model.
- ``stealing``: per-worker deques with per-deque locks; idle workers steal
  half a random victim's queue; termination is a shared remaining-task
  count (task counts never grow, so count-zero is exact).

Python threads interleave rather than truly parallelize this kernel (the
GIL; NumPy releases it only inside large ops), so this backend validates
*correctness under real concurrency* — exactly-once claiming, reduction-
order independence — not wall-clock scaling. The discrete-event simulator
is the performance instrument; see DESIGN.md.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.balance.greedy import lpt
from repro.chemistry.scf import GBuilder, ScfProblem
from repro.util import ConfigurationError, SchedulingError, check_positive, spawn_rng


@dataclass
class ParallelStats:
    """Observability for one parallel build."""

    mode: str
    n_workers: int
    wall_seconds: float = 0.0
    tasks_per_worker: list[int] = field(default_factory=list)
    steals: int = 0


class SharedMemoryFockBuilder:
    """Builds the two-electron Fock matrix with a thread pool.

    Args:
        problem: prebuilt SCF problem (kernel + task graph).
        n_workers: thread count.
        mode: ``"static"``, ``"counter"``, or ``"stealing"``.
        seed: victim-selection seed for stealing.
    """

    def __init__(
        self,
        problem: ScfProblem,
        n_workers: int = 4,
        mode: str = "stealing",
        seed: int = 0,
    ) -> None:
        check_positive("n_workers", n_workers)
        if mode not in ("static", "counter", "stealing"):
            raise ConfigurationError(
                f"mode must be 'static', 'counter', or 'stealing', got {mode!r}"
            )
        self.problem = problem
        self.n_workers = int(n_workers)
        self.mode = mode
        self.seed = int(seed)
        self.last_stats: ParallelStats | None = None

    # ------------------------------------------------------------------
    def build(self, density: np.ndarray) -> np.ndarray:
        """Compute G(D): the two-electron Fock contribution."""
        n = self.problem.basis.n_basis
        if density.shape != (n, n):
            raise ConfigurationError(f"density must be ({n}, {n}), got {density.shape}")
        graph = self.problem.graph
        kernel = self.problem.kernel
        partials = [np.zeros((n, n)) for _ in range(self.n_workers)]
        executed = [0] * self.n_workers
        stats = ParallelStats(self.mode, self.n_workers)
        start = time.perf_counter()

        if graph.n_tasks:
            if self.mode == "static":
                workers = self._static_workers(density, partials, executed)
            elif self.mode == "counter":
                workers = self._counter_workers(density, partials, executed)
            else:
                workers = self._stealing_workers(density, partials, executed, stats)
            threads = [
                threading.Thread(target=w, name=f"fock-worker-{i}", daemon=True)
                for i, w in enumerate(workers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        stats.wall_seconds = time.perf_counter() - start
        stats.tasks_per_worker = executed
        self.last_stats = stats
        if sum(executed) != graph.n_tasks:
            raise SchedulingError(
                f"{sum(executed)} tasks executed, expected {graph.n_tasks}"
            )
        total = partials[0]
        for p in partials[1:]:
            total += p
        return total

    __call__ = build

    # ------------------------------------------------------------------
    def _run_task(self, tid: int, density: np.ndarray, fock: np.ndarray) -> None:
        self.problem.kernel.execute_dense(self.problem.graph.tasks[tid], density, fock)

    def _static_workers(self, density, partials, executed):
        graph = self.problem.graph
        assignment = lpt(graph.costs, self.n_workers)
        lists: list[list[int]] = [[] for _ in range(self.n_workers)]
        for tid, w in enumerate(assignment):
            lists[w].append(tid)

        def make(worker: int):
            def run() -> None:
                for tid in lists[worker]:
                    self._run_task(tid, density, partials[worker])
                    executed[worker] += 1

            return run

        return [make(w) for w in range(self.n_workers)]

    def _counter_workers(self, density, partials, executed):
        graph = self.problem.graph
        lock = threading.Lock()
        state = {"next": 0}

        def make(worker: int):
            def run() -> None:
                while True:
                    with lock:
                        tid = state["next"]
                        state["next"] += 1
                    if tid >= graph.n_tasks:
                        return
                    self._run_task(tid, density, partials[worker])
                    executed[worker] += 1

            return run

        return [make(w) for w in range(self.n_workers)]

    def _stealing_workers(self, density, partials, executed, stats: ParallelStats):
        graph = self.problem.graph
        n_workers = self.n_workers
        queues: list[deque[int]] = [deque() for _ in range(n_workers)]
        for tid in range(graph.n_tasks):
            queues[tid % n_workers].append(tid)
        locks = [threading.Lock() for _ in range(n_workers)]
        remaining_lock = threading.Lock()
        state = {"remaining": graph.n_tasks, "steals": 0}

        def make(worker: int):
            rng = spawn_rng(self.seed, "parallel_steal", worker)

            def run() -> None:
                my_queue = queues[worker]
                my_lock = locks[worker]
                while True:
                    with remaining_lock:
                        if state["remaining"] == 0:
                            stats.steals = state["steals"]
                            return
                    tid: int | None = None
                    with my_lock:
                        if my_queue:
                            tid = my_queue.popleft()
                    if tid is None and n_workers > 1:
                        victim = int(rng.integers(0, n_workers - 1))
                        if victim >= worker:
                            victim += 1
                        with locks[victim]:
                            k = (len(queues[victim]) + 1) // 2
                            loot = [queues[victim].pop() for _ in range(k)]
                        if loot:
                            loot.reverse()
                            with my_lock:
                                my_queue.extend(loot)
                            with remaining_lock:
                                state["steals"] += 1
                            continue
                    if tid is None:
                        time.sleep(1e-5)
                        continue
                    self._run_task(tid, density, partials[worker])
                    executed[worker] += 1
                    with remaining_lock:
                        state["remaining"] -= 1

            return run

        return [make(w) for w in range(n_workers)]


def parallel_g_builder(
    problem: ScfProblem, n_workers: int = 4, mode: str = "stealing", seed: int = 0
) -> GBuilder:
    """A :func:`repro.chemistry.scf.run_scf`-compatible parallel builder."""
    builder = SharedMemoryFockBuilder(problem, n_workers=n_workers, mode=mode, seed=seed)
    return builder.build
