"""Host-side process-pool plumbing for coarse-grained job fan-out.

Where :mod:`repro.parallel.processes` forks workers around a single Fock
build, this module provides the generic piece the sweep orchestrator
needs: run N independent, picklable jobs across a pool of forked worker
processes and return their results in submission order.

Uses the ``fork`` start method (POSIX) so workers inherit imported
modules and any already-built problem state without re-importing; falls
back to serial in-process execution when forking is unavailable or when
the job list / worker count makes a pool pointless. Simulated runs are
deterministic functions of their inputs, so serial and parallel
execution produce identical results — the pool changes wall-clock time
only.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Iterator, Sequence

from repro.util import check_positive


def fork_available() -> bool:
    """Whether the POSIX ``fork`` start method exists on this host."""
    return "fork" in multiprocessing.get_all_start_methods()


def parallel_map(
    fn: Callable[[Any], Any],
    jobs: Sequence[Any],
    n_workers: int = 1,
) -> list[Any]:
    """``[fn(job) for job in jobs]`` across forked worker processes.

    Results come back in submission order. With ``n_workers <= 1``, a
    single job, or no ``fork`` support, runs serially in-process (no
    pickling, no subprocesses). A worker exception propagates to the
    caller unchanged in meaning (re-raised from the future).
    """
    check_positive("n_workers", n_workers)
    n_workers = min(int(n_workers), len(jobs))
    if n_workers <= 1 or len(jobs) <= 1 or not fork_available():
        return [fn(job) for job in jobs]
    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
        futures = [pool.submit(fn, job) for job in jobs]
        return [f.result() for f in futures]


def parallel_imap(
    fn: Callable[[Any], Any],
    jobs: Sequence[Any],
    n_workers: int = 1,
) -> Iterator[tuple[int, Any]]:
    """Yield ``(index, fn(jobs[index]))`` as each job completes.

    Completion order, not submission order — callers wanting progress
    reporting consume results as they land and reorder afterwards.
    Serial fallback rules match :func:`parallel_map`.
    """
    check_positive("n_workers", n_workers)
    n_workers = min(int(n_workers), len(jobs))
    if n_workers <= 1 or len(jobs) <= 1 or not fork_available():
        for index, job in enumerate(jobs):
            yield index, fn(job)
        return
    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
        pending = {pool.submit(fn, job): index for index, job in enumerate(jobs)}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                yield pending.pop(future), future.result()
