"""Host-side process-pool plumbing for coarse-grained job fan-out.

Where :mod:`repro.parallel.processes` forks workers around a single Fock
build, this module provides the generic piece the sweep orchestrator
needs: run N independent, picklable jobs across a pool of forked worker
processes and return their results in submission order.

Uses the ``fork`` start method (POSIX) so workers inherit imported
modules and any already-built problem state without re-importing; falls
back to serial in-process execution when forking is unavailable or when
the job list / worker count makes a pool pointless. Simulated runs are
deterministic functions of their inputs, so serial and parallel
execution produce identical results — the pool changes wall-clock time
only.

Failure semantics: a job exception inside a worker comes back as a
:class:`WorkerError` that names the job (label + index) and carries the
remote traceback text, instead of the bare unpickled exception whose
traceback points into ``concurrent.futures`` plumbing. A worker that
dies outright (SIGKILL, OOM) breaks the whole ``ProcessPoolExecutor``;
:func:`parallel_imap` absorbs a bounded number of such pool breakages by
respawning the pool and re-submitting only the jobs that never finished.
For per-cell timeouts, retry/backoff, and poison-job quarantine, use the
full supervisor layer (:mod:`repro.parallel.supervisor`) instead.
"""

from __future__ import annotations

import multiprocessing
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterator, Sequence

from repro.util import ReproError, check_positive


class WorkerError(ReproError, RuntimeError):
    """A job raised inside a pool worker process.

    Exceptions that cross a process boundary lose their real traceback
    (the re-raised object points into executor plumbing), so this wrapper
    preserves what the caller actually needs: which job failed (``label``
    and ``index`` into the submitted job list), the original exception
    class name, and the remote traceback text as captured in the worker.
    The unpickled original (when available) is chained as ``__cause__``.
    """

    def __init__(
        self,
        label: str,
        index: int,
        error_type: str,
        message: str,
        remote_traceback: str = "",
    ) -> None:
        super().__init__(
            f"job {label!r} (index {index}) failed in worker: "
            f"{error_type}: {message}"
        )
        self.label = label
        self.index = int(index)
        self.error_type = error_type
        self.remote_traceback = remote_traceback


def _remote_traceback(exc: BaseException) -> str:
    """The worker-side traceback text for an exception from a future.

    ``ProcessPoolExecutor`` chains the worker's formatted traceback as a
    ``_RemoteTraceback`` cause; fall back to formatting the local chain.
    """
    cause = exc.__cause__
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        return str(cause)
    return "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))


def fork_available() -> bool:
    """Whether the POSIX ``fork`` start method exists on this host."""
    return "fork" in multiprocessing.get_all_start_methods()


def _job_label(labels: Sequence[str] | None, index: int) -> str:
    if labels is not None and index < len(labels):
        return labels[index]
    return f"job[{index}]"


def parallel_map(
    fn: Callable[[Any], Any],
    jobs: Sequence[Any],
    n_workers: int = 1,
    labels: Sequence[str] | None = None,
) -> list[Any]:
    """``[fn(job) for job in jobs]`` across forked worker processes.

    Results come back in submission order. With ``n_workers <= 1``, a
    single job, or no ``fork`` support, runs serially in-process (no
    pickling, no subprocesses, exceptions propagate unchanged). In the
    pool path a job exception surfaces as a :class:`WorkerError` naming
    the failed job.
    """
    ordered: list[Any] = [None] * len(jobs)
    for index, value in parallel_imap(fn, jobs, n_workers, labels=labels):
        ordered[index] = value
    return ordered


def parallel_imap(
    fn: Callable[[Any], Any],
    jobs: Sequence[Any],
    n_workers: int = 1,
    labels: Sequence[str] | None = None,
    max_pool_restarts: int = 2,
) -> Iterator[tuple[int, Any]]:
    """Yield ``(index, fn(jobs[index]))`` as each job completes.

    Completion order, not submission order — callers wanting progress
    reporting consume results as they land and reorder afterwards.
    Serial fallback rules match :func:`parallel_map`.

    A job exception in a worker is re-raised as :class:`WorkerError`
    carrying the job's label, index, and remote traceback. A dead worker
    (SIGKILL/OOM) breaks the entire executor; the pool is respawned and
    the unfinished jobs re-submitted, up to ``max_pool_restarts`` times,
    after which the breakage propagates as the final ``WorkerError``.
    """
    check_positive("n_workers", n_workers)
    n_workers = min(int(n_workers), len(jobs))
    if n_workers <= 1 or len(jobs) <= 1 or not fork_available():
        for index, job in enumerate(jobs):
            yield index, fn(job)
        return
    ctx = multiprocessing.get_context("fork")
    remaining = dict(enumerate(jobs))
    restarts = 0
    while remaining:
        try:
            with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
                pending = {
                    pool.submit(fn, job): index for index, job in remaining.items()
                }
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = pending.pop(future)
                        try:
                            value = future.result()
                        except BrokenProcessPool:
                            raise
                        except Exception as exc:
                            raise WorkerError(
                                _job_label(labels, index),
                                index,
                                type(exc).__name__,
                                str(exc),
                                _remote_traceback(exc),
                            ) from exc
                        remaining.pop(index, None)
                        yield index, value
            return
        except BrokenProcessPool as exc:
            # A worker died hard (SIGKILL, OOM): every in-flight future is
            # poisoned. Respawn the pool and re-run only unfinished jobs.
            restarts += 1
            if restarts > max_pool_restarts:
                index = min(remaining)
                raise WorkerError(
                    _job_label(labels, index),
                    index,
                    type(exc).__name__,
                    f"process pool broke {restarts} times; giving up with "
                    f"{len(remaining)} job(s) unfinished",
                ) from exc
