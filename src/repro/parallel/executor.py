"""Host-side process-pool plumbing for coarse-grained job fan-out.

Where :mod:`repro.parallel.processes` forks workers around a single Fock
build, this module provides the generic piece the sweep orchestrator
needs: run N independent, picklable jobs across a pool of forked worker
processes and return their results in submission order.

Uses the ``fork`` start method (POSIX) so workers inherit imported
modules and any already-built problem state without re-importing; falls
back to serial in-process execution when forking is unavailable or when
the job list / worker count makes a pool pointless. Simulated runs are
deterministic functions of their inputs, so serial and parallel
execution produce identical results — the pool changes wall-clock time
only.

Failure semantics: a job exception inside a worker comes back as a
:class:`WorkerError` that names the job (label + index) and carries the
remote traceback text, instead of the bare unpickled exception whose
traceback points into ``concurrent.futures`` plumbing. A worker that
dies outright (SIGKILL, OOM) breaks the whole ``ProcessPoolExecutor``;
:func:`parallel_imap` absorbs a bounded number of such pool breakages by
respawning the pool and re-submitting only the jobs that never finished.
For per-cell timeouts, retry/backoff, and poison-job quarantine, use the
full supervisor layer (:mod:`repro.parallel.supervisor`) instead.
"""

from __future__ import annotations

import abc
import multiprocessing
import signal as _signal
import traceback
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterator, Sequence

from repro.util import ConfigurationError, ReproError, check_positive


class WorkerError(ReproError, RuntimeError):
    """A job raised inside a pool worker process.

    Exceptions that cross a process boundary lose their real traceback
    (the re-raised object points into executor plumbing), so this wrapper
    preserves what the caller actually needs: which job failed (``label``
    and ``index`` into the submitted job list), the original exception
    class name, and the remote traceback text as captured in the worker.
    The unpickled original (when available) is chained as ``__cause__``.
    """

    def __init__(
        self,
        label: str,
        index: int,
        error_type: str,
        message: str,
        remote_traceback: str = "",
    ) -> None:
        super().__init__(
            f"job {label!r} (index {index}) failed in worker: "
            f"{error_type}: {message}"
        )
        self.label = label
        self.index = int(index)
        self.error_type = error_type
        self.remote_traceback = remote_traceback


def _remote_traceback(exc: BaseException) -> str:
    """The worker-side traceback text for an exception from a future.

    ``ProcessPoolExecutor`` chains the worker's formatted traceback as a
    ``_RemoteTraceback`` cause; fall back to formatting the local chain.
    """
    cause = exc.__cause__
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        return str(cause)
    return "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))


def fork_available() -> bool:
    """Whether the POSIX ``fork`` start method exists on this host."""
    return "fork" in multiprocessing.get_all_start_methods()


class DegradedExecutionWarning(RuntimeWarning):
    """An executor silently *would* have lost capability — so it didn't.

    Emitted exactly once per (backend, reason) whenever an executor
    falls back to a weaker mode: the local pool running serially because
    the platform lacks ``fork``/``SIGKILL``, or the distributed fabric
    rerouting cells to the local pool after losing every remote worker.
    Structured: ``backend`` and ``reason`` are attributes, not just
    message text, so tooling can filter on them.
    """

    def __init__(self, backend: str, reason: str) -> None:
        super().__init__(
            f"{backend} executor degraded: {reason}; falling back to "
            f"{'serial in-process' if backend == 'local' else 'local'} "
            "execution"
        )
        self.backend = backend
        self.reason = reason


#: (backend, reason) pairs already warned about in this process, so a
#: million-cell sweep on a forkless platform warns once, not per batch.
_WARNED_DEGRADATIONS: set[tuple[str, str]] = set()


def warn_degraded(backend: str, reason: str, *, once: bool = True) -> None:
    """Emit the single structured degradation warning for ``reason``."""
    if once:
        if (backend, reason) in _WARNED_DEGRADATIONS:
            return
        _WARNED_DEGRADATIONS.add((backend, reason))
    warnings.warn(DegradedExecutionWarning(backend, reason), stacklevel=3)


def serial_fallback_reason() -> str | None:
    """Why parallel supervised execution is impossible here (None = it isn't).

    The supervised pool needs ``fork`` (workers inherit the built
    problem state) and ``SIGKILL`` (hung workers must be killable
    unconditionally); a platform missing either runs cells serially
    in-process instead — with a warning, never silently.
    """
    if not fork_available():
        return "no 'fork' start method on this platform"
    if not hasattr(_signal, "SIGKILL"):
        return "no SIGKILL on this platform (hung workers cannot be killed)"
    return None


def _job_label(labels: Sequence[str] | None, index: int) -> str:
    if labels is not None and index < len(labels):
        return labels[index]
    return f"job[{index}]"


def parallel_map(
    fn: Callable[[Any], Any],
    jobs: Sequence[Any],
    n_workers: int = 1,
    labels: Sequence[str] | None = None,
) -> list[Any]:
    """``[fn(job) for job in jobs]`` across forked worker processes.

    Results come back in submission order. With ``n_workers <= 1``, a
    single job, or no ``fork`` support, runs serially in-process (no
    pickling, no subprocesses, exceptions propagate unchanged). In the
    pool path a job exception surfaces as a :class:`WorkerError` naming
    the failed job.
    """
    ordered: list[Any] = [None] * len(jobs)
    for index, value in parallel_imap(fn, jobs, n_workers, labels=labels):
        ordered[index] = value
    return ordered


def parallel_imap(
    fn: Callable[[Any], Any],
    jobs: Sequence[Any],
    n_workers: int = 1,
    labels: Sequence[str] | None = None,
    max_pool_restarts: int = 2,
) -> Iterator[tuple[int, Any]]:
    """Yield ``(index, fn(jobs[index]))`` as each job completes.

    Completion order, not submission order — callers wanting progress
    reporting consume results as they land and reorder afterwards.
    Serial fallback rules match :func:`parallel_map`.

    A job exception in a worker is re-raised as :class:`WorkerError`
    carrying the job's label, index, and remote traceback. A dead worker
    (SIGKILL/OOM) breaks the entire executor; the pool is respawned and
    the unfinished jobs re-submitted, up to ``max_pool_restarts`` times,
    after which the breakage propagates as the final ``WorkerError``.
    """
    check_positive("n_workers", n_workers)
    n_workers = min(int(n_workers), len(jobs))
    if n_workers <= 1 or len(jobs) <= 1 or not fork_available():
        for index, job in enumerate(jobs):
            yield index, fn(job)
        return
    ctx = multiprocessing.get_context("fork")
    remaining = dict(enumerate(jobs))
    restarts = 0
    while remaining:
        try:
            with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
                pending = {
                    pool.submit(fn, job): index for index, job in remaining.items()
                }
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = pending.pop(future)
                        try:
                            value = future.result()
                        except BrokenProcessPool:
                            raise
                        except Exception as exc:
                            raise WorkerError(
                                _job_label(labels, index),
                                index,
                                type(exc).__name__,
                                str(exc),
                                _remote_traceback(exc),
                            ) from exc
                        remaining.pop(index, None)
                        yield index, value
            return
        except BrokenProcessPool as exc:
            # A worker died hard (SIGKILL, OOM): every in-flight future is
            # poisoned. Respawn the pool and re-run only unfinished jobs.
            restarts += 1
            if restarts > max_pool_restarts:
                index = min(remaining)
                raise WorkerError(
                    _job_label(labels, index),
                    index,
                    type(exc).__name__,
                    f"process pool broke {restarts} times; giving up with "
                    f"{len(remaining)} job(s) unfinished",
                ) from exc


# ----------------------------------------------------------------------
# The CellExecutor protocol and backend registry
# ----------------------------------------------------------------------

class CellExecutor(abc.ABC):
    """How a sweep's cache-miss cells get executed.

    One abstraction, several transports: the sweep orchestrator
    (:class:`repro.core.sweep.SweepRunner`) hands every backend the same
    contract — run these jobs through ``fn``, yield ``(index, outcome)``
    in completion order, where an outcome is the job's result or a
    :class:`~repro.parallel.supervisor.CellFailure` for jobs that
    exhausted their retry budget. Fault-tolerance semantics (bounded
    retry with deterministic jittered backoff, poison-job quarantine,
    non-retryable ``ConfigurationError``) are shared across backends
    through :class:`~repro.parallel.supervisor.AttemptLedger`, not
    reimplemented per transport.

    Built-in backends (see :func:`make_executor`):

    - ``"local"`` — supervised forked workers
      (:func:`~repro.parallel.supervisor.supervised_imap`): per-job
      wall-clock timeouts, SIGKILL + respawn of hung workers, crash
      re-dispatch. Degrades to serial in-process execution where
      ``fork`` is unavailable.
    - ``"serial"`` — always in-process, same retry/quarantine logic, no
      isolation (and therefore no timeouts).
    - ``"distributed"`` — leased TCP workers
      (:class:`repro.parallel.fabric.DistributedExecutor`): remote
      ``python -m repro worker`` daemons pull cells under time-bounded
      leases and push content-keyed results; losing every remote worker
      degrades to the local pool mid-sweep.
    """

    #: Registry name of this backend.
    name: str = ""

    #: How large task graphs travel to workers: ``"shm"`` (the runner
    #: publishes shared-memory handles — local forked workers), ``"ref"``
    #: (the executor ships content-keyed references and workers fetch
    #: blobs over its own channel), or None (no handoff — in-process).
    graph_handoff: str | None = None

    @abc.abstractmethod
    def run(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        n_workers: int = 1,
        timeout: float | None = None,
        retry: Any | None = None,
        on_error: str = "quarantine",
        labels: Sequence[str] | None = None,
        on_dispatch: Callable[[int, int], None] | None = None,
        stats: Any | None = None,
        deadline: float | None = None,
    ) -> Iterator[tuple[int, Any]]:
        """Yield ``(index, result-or-CellFailure)`` in completion order.

        ``deadline`` is an absolute ``time.monotonic()`` instant: past
        it, the backend settles every unfinished job as a terminal
        ``CellFailure(error_type="DeadlineExceeded")``. The local pool
        enforces it mid-cell (workers are killed); backends without that
        power (serial in-process, remote leases) enforce it between
        cells, which is still bounded because per-cell budgets
        (``timeout`` / leases) bound each cell.
        """


class LocalExecutor(CellExecutor):
    """The forked supervised pool (PR 4 semantics), as a backend."""

    name = "local"
    graph_handoff = "shm"

    def run(
        self,
        fn,
        jobs,
        *,
        n_workers=1,
        timeout=None,
        retry=None,
        on_error="quarantine",
        labels=None,
        on_dispatch=None,
        stats=None,
        deadline=None,
    ):
        from repro.parallel.supervisor import HOST_RETRY_POLICY, supervised_imap

        yield from supervised_imap(
            fn,
            jobs,
            n_workers,
            timeout=timeout,
            retry=retry if retry is not None else HOST_RETRY_POLICY,
            on_error=on_error,
            labels=labels,
            on_dispatch=on_dispatch,
            stats=stats,
            deadline=deadline,
        )


class SerialExecutor(CellExecutor):
    """In-process execution with the shared retry/quarantine semantics.

    What the local backend degrades to; selectable explicitly for
    debugging (no forking, breakpoints work) and for platforms where
    process isolation is undesirable. Timeouts require isolation and are
    ignored.
    """

    name = "serial"
    graph_handoff = None

    def run(
        self,
        fn,
        jobs,
        *,
        n_workers=1,
        timeout=None,
        retry=None,
        on_error="quarantine",
        labels=None,
        on_dispatch=None,
        stats=None,
        deadline=None,
    ):
        from repro.parallel.supervisor import (
            HOST_RETRY_POLICY,
            _serial_supervised,
        )

        yield from _serial_supervised(
            fn,
            jobs,
            retry if retry is not None else HOST_RETRY_POLICY,
            on_error,
            labels,
            deadline,
        )


def _make_distributed(**options: Any) -> CellExecutor:
    from repro.parallel.fabric import DistributedExecutor

    return DistributedExecutor(**options)


#: Backend factories by registry name. Extend with
#: :func:`register_executor`.
EXECUTOR_BACKENDS: dict[str, Callable[..., CellExecutor]] = {
    "local": LocalExecutor,
    "serial": SerialExecutor,
    "distributed": _make_distributed,
}


def executor_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(EXECUTOR_BACKENDS))


def register_executor(
    name: str, factory: Callable[..., CellExecutor], *, replace: bool = False
) -> None:
    """Register a backend factory under ``name`` (keyword options only)."""
    if not replace and name in EXECUTOR_BACKENDS:
        raise ConfigurationError(f"executor backend {name!r} already registered")
    EXECUTOR_BACKENDS[name] = factory


def _coerce_option(value: str) -> Any:
    """Type an option value from a spec string: int, float, bool, or str.

    Endpoint-shaped values (``host:port``) contain a colon and fall
    through to str; ``yes/no/true/false`` become booleans so flags like
    ``?fallback=no`` read naturally.
    """
    lowered = value.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def parse_executor_spec(spec: str) -> tuple[str, dict[str, Any]]:
    """Parse the canonical executor spec string: ``name`` or
    ``name?opt=val&opt2=val``.

    This is the *one* string form every surface accepts — the
    ``--executor`` CLI flag, ``api.sweep(executor=...)``, a
    :class:`~repro.core.jobspec.JobSpec`, and the service's backend
    router — so a spec like ``"distributed?bind=0.0.0.0:7070&lease=45"``
    means the same thing everywhere. Option values are typed by shape
    (int, then float, then bool words, else string; ``host:port`` stays a
    string). The name must be registered; options are validated by the
    backend's constructor, not here.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ConfigurationError(
            f"executor spec must be a non-empty string, got {spec!r}"
        )
    name, qmark, query = spec.partition("?")
    name = name.strip()
    if qmark and not query.strip():
        raise ConfigurationError(
            f"executor spec {spec!r} has a '?' but no options "
            "(drop it, or add opt=val terms)"
        )
    if name not in EXECUTOR_BACKENDS:
        raise ConfigurationError(
            f"unknown executor backend {name!r}; registered: "
            f"{', '.join(executor_names())}"
        )
    options: dict[str, Any] = {}
    if query:
        for term in query.split("&"):
            term = term.strip()
            if not term:
                continue
            key, sep, value = term.partition("=")
            if not sep or not key:
                raise ConfigurationError(
                    f"malformed executor option {term!r} in {spec!r} "
                    "(expected opt=val)"
                )
            if key in options:
                raise ConfigurationError(
                    f"executor option {key!r} given more than once in {spec!r}"
                )
            options[key] = _coerce_option(value)
    return name, options


def format_executor_spec(name: str, options: dict[str, Any]) -> str:
    """The inverse of :func:`parse_executor_spec` (canonical, sorted)."""
    if not options:
        return name
    query = "&".join(f"{k}={options[k]}" for k in sorted(options))
    return f"{name}?{query}"


def make_executor(
    spec: "str | CellExecutor", **options: Any
) -> CellExecutor:
    """Resolve an executor spec: an instance passes through; a string is
    parsed with :func:`parse_executor_spec` (``"name"`` or
    ``"name?opt=val"``) and constructed from the registry, with keyword
    ``options`` layered over (and overriding) the spec's own options."""
    if isinstance(spec, CellExecutor):
        if options:
            raise ConfigurationError(
                "options only apply when constructing by name; got an "
                f"instance plus {sorted(options)}"
            )
        return spec
    name, spec_options = parse_executor_spec(spec)
    spec_options.update(options)
    return EXECUTOR_BACKENDS[name](**spec_options)
