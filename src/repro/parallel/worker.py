"""The ``python -m repro worker`` daemon: one leased cell at a time.

A worker connects to a :class:`repro.parallel.fabric.FabricServer`,
introduces itself, and then loops: announce ``ready``, receive one
cell, resolve any :class:`~repro.parallel.fabric.GraphRef` in it by
fetching the content-keyed graph blob (cached per process, so a graph
travels at most once per worker), execute the job function, and push
the result back tagged with the cell's dispatch key. While a cell is
executing, a daemon thread streams ``heartbeat`` frames at the interval
the server advertised in its ``welcome`` — the server treats silence as
death, so a SIGKILLed or partitioned worker forfeits its lease and the
cell is requeued elsewhere.

Workers are deliberately dumb: no retry logic, no quarantine decisions,
no knowledge of the sweep. All fault policy lives server-side in the
shared :class:`~repro.parallel.supervisor.AttemptLedger`; the worker's
only obligations are heartbeats while busy and honest error frames
(carrying the remote traceback and a retryable flag) when a cell
raises. A lost connection is survivable: the worker reconnects with
backoff up to ``reconnect_attempts`` times — the server dedupes
anything it already has.

Chaos hooks (:class:`WorkerChaos`, parsed from the
``REPRO_WORKER_CHAOS`` environment variable) let the chaos harness
inject distributed-only failure modes that cannot be expressed as a
job-function wrapper: severing the socket mid-result-upload and
delivering a result twice. First-attempt claims use O_CREAT|O_EXCL
marker files so exactly one worker process injects each fault no matter
how cells land.
"""

from __future__ import annotations

import dataclasses
import errno
import json
import os
import pickle
import socket
import struct
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.parallel.fabric import (
    PROTOCOL_VERSION,
    GraphRef,
    recv_frame,
    send_frame,
)
from repro.util import ConfigurationError

#: Env var holding the JSON chaos spec for spawned workers.
CHAOS_ENV = "REPRO_WORKER_CHAOS"


@dataclass
class WorkerChaos:
    """Fault-injection spec for one worker daemon (testing only).

    ``sever``: labels whose result upload is cut short — the worker
    closes its socket mid-frame and reconnects, leaving the server a
    torn upload to recover from. ``dup``: labels whose result frame is
    sent twice, exercising idempotent dedupe. Labels are matched as
    substrings of the job's ``label`` attribute (falling back to
    ``str(job)``); each label fires once across all workers sharing
    ``marker_dir``.
    """

    marker_dir: str = ""
    sever: list[str] = field(default_factory=list)
    dup: list[str] = field(default_factory=list)

    @classmethod
    def from_env(cls) -> "WorkerChaos | None":
        raw = os.environ.get(CHAOS_ENV)
        if not raw:
            return None
        spec = json.loads(raw)
        return cls(
            marker_dir=spec.get("marker_dir", ""),
            sever=list(spec.get("sever", ())),
            dup=list(spec.get("dup", ())),
        )

    def _first(self, tag: str, label: str) -> bool:
        """Claim a one-shot injection atomically across worker processes."""
        if not self.marker_dir:
            return True
        name = "".join(c if c.isalnum() else "_" for c in f"{tag}-{label}")
        path = os.path.join(self.marker_dir, name)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError as exc:
            if exc.errno == errno.EEXIST:
                return False
            raise
        os.close(fd)
        return True

    def _match(self, labels: list[str], job: Any) -> str | None:
        # A SweepCell's display label is a computed property, so it never
        # shows up in the dataclass repr — check it explicitly.
        text = f"{getattr(job, 'label', '')}\n{job}"
        for label in labels:
            if label in text:
                return label
        return None


class _Heartbeat:
    """Streams heartbeats for the currently leased cell."""

    def __init__(self, sock: socket.socket, lock: threading.Lock, interval: float):
        self._sock = sock
        self._lock = lock
        self._interval = interval
        self._index: int | None = None
        self._cond = threading.Condition()
        self._stopped = False
        self._thread = threading.Thread(
            target=self._loop, name="worker-heartbeat", daemon=True
        )
        self._thread.start()

    def lease(self, index: int) -> None:
        with self._cond:
            self._index = index
            self._cond.notify()

    def release(self) -> None:
        with self._cond:
            self._index = None

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify()

    def _loop(self) -> None:
        while True:
            with self._cond:
                while self._index is None and not self._stopped:
                    self._cond.wait()
                if self._stopped:
                    return
                index = self._index
            try:
                send_frame(self._sock, ("heartbeat", index), self._lock)
            except OSError:
                return  # connection gone; main loop will notice
            time.sleep(self._interval)


class _SocketSevered(Exception):
    """Raised by chaos injection after deliberately closing the socket."""


class _ShutdownRequested(Exception):
    """The server sent ``shutdown`` while we were mid-exchange."""


def _fetch_blob(
    sock: socket.socket, lock: threading.Lock, key: str
) -> Any:
    """Request and synchronously receive one content-keyed blob.

    Safe only while this worker is the one the server thinks is busy:
    the protocol is strictly request/response then, so the next frames
    on the wire are the answer to this ``fetch`` (or a shutdown).
    """
    send_frame(sock, ("fetch", key), lock)
    while True:
        frame = recv_frame(sock)
        kind = frame[0]
        if kind == "blob" and frame[1] == key:
            return pickle.loads(frame[2])
        if kind == "no-blob":
            raise ConfigurationError(
                f"server has no blob {key[:12]} (stale dispatch?)"
            )
        if kind == "shutdown":
            raise _ShutdownRequested()
        # Anything else mid-fetch is unexpected; skip it.


def _resolve_graph(
    job: Any,
    sock: socket.socket,
    lock: threading.Lock,
    cache: dict[str, Any],
) -> Any:
    """Swap a :class:`GraphRef` back for the real graph, fetching by key."""
    ref = getattr(job, "graph", None)
    if not isinstance(ref, GraphRef):
        return job
    graph = cache.get(ref.key)
    if graph is None:
        graph = _fetch_blob(sock, lock, ref.key)
        cache[ref.key] = graph
    return dataclasses.replace(job, graph=graph)


def run_worker(
    host: str,
    port: int,
    *,
    worker_id: str | None = None,
    reconnect_attempts: int = 5,
    reconnect_delay: float = 0.5,
    chaos: WorkerChaos | None = None,
    log: Callable[[str], None] | None = None,
) -> int:
    """Serve cells from the fabric at ``(host, port)`` until shutdown.

    Returns a process exit code: 0 after an orderly ``shutdown`` frame,
    1 when the server stays unreachable past ``reconnect_attempts``.
    """
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    if chaos is None:
        chaos = WorkerChaos.from_env()
    say = log if log is not None else (lambda _msg: None)
    blob_cache: dict[str, Any] = {}
    fn_cache: dict[str, Callable[[Any], Any]] = {}
    attempts_left = int(reconnect_attempts)
    while True:
        try:
            outcome = _serve_session(
                host, port, worker_id, blob_cache, fn_cache, chaos, say
            )
        except (ConnectionError, OSError, EOFError, _SocketSevered) as exc:
            attempts_left -= 1
            if attempts_left < 0:
                say(f"worker {worker_id}: giving up on {host}:{port} ({exc!r})")
                return 1
            say(f"worker {worker_id}: reconnecting after {exc!r}")
            time.sleep(reconnect_delay)
            continue
        if outcome == "shutdown":
            say(f"worker {worker_id}: orderly shutdown")
            return 0
        # Session ended without shutdown (server closed); try again.
        attempts_left -= 1
        if attempts_left < 0:
            return 1
        time.sleep(reconnect_delay)


def _serve_session(
    host: str,
    port: int,
    worker_id: str,
    blob_cache: dict[str, Any],
    fn_cache: dict[str, Callable[[Any], Any]],
    chaos: WorkerChaos | None,
    say: Callable[[str], None],
) -> str:
    """One connect-serve-disconnect cycle; returns why it ended."""
    sock = socket.create_connection((host, port), timeout=10.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.settimeout(None)
    wlock = threading.Lock()
    heartbeat: _Heartbeat | None = None
    try:
        send_frame(sock, ("hello", worker_id, PROTOCOL_VERSION, os.getpid()), wlock)
        frame = recv_frame(sock)
        if isinstance(frame, tuple) and frame and frame[0] == "shutdown":
            return "shutdown"  # fabric is closing; exit before the handshake
        if not (isinstance(frame, tuple) and frame and frame[0] == "welcome"):
            raise ConfigurationError(f"expected welcome, got {frame!r}")
        session = frame[1]
        heartbeat = _Heartbeat(sock, wlock, float(session["heartbeat"]))
        send_frame(sock, ("ready",), wlock)
        say(f"worker {worker_id}: joined fabric at {host}:{port}")
        while True:
            frame = recv_frame(sock)
            kind = frame[0]
            if kind == "shutdown":
                return "shutdown"
            if kind != "cell":
                continue  # future-proof: ignore unknown server frames
            _kind, index, key, fn_key, payload = frame
            heartbeat.lease(index)
            try:
                reply, job = _execute(
                    index,
                    key,
                    fn_key,
                    payload,
                    sock,
                    wlock,
                    blob_cache,
                    fn_cache,
                )
                if chaos is not None:
                    _chaos_send(sock, wlock, reply, chaos, job)
                else:
                    send_frame(sock, reply, wlock)
            except _ShutdownRequested:
                return "shutdown"
            finally:
                heartbeat.release()
            send_frame(sock, ("ready",), wlock)
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        try:
            sock.close()
        except OSError:
            pass


def _execute(
    index: int,
    key: str,
    fn_key: str,
    payload: bytes,
    sock: socket.socket,
    wlock: threading.Lock,
    blob_cache: dict[str, Any],
    fn_cache: dict[str, Callable[[Any], Any]],
) -> tuple[tuple, Any]:
    """Run one cell; returns the (result|error) frame to send + the job."""
    fn = fn_cache.get(fn_key)
    if fn is None:
        fn = _fetch_blob(sock, wlock, fn_key)
        fn_cache[fn_key] = fn
    try:
        job = pickle.loads(payload)
    except Exception as exc:  # corrupt dispatch: report, don't retry
        return (
            "error",
            index,
            key,
            ("DispatchDecodeError", str(exc), traceback.format_exc()),
            False,
        ), None
    # Graph fetch talks to the socket: a failure here is a session
    # failure (reconnect + server requeue), never a cell error.
    job = _resolve_graph(job, sock, wlock, blob_cache)
    try:
        value = fn(job)
        return (
            "result",
            index,
            key,
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
        ), job
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:  # noqa: BLE001 - forwarded to the server
        retryable = not isinstance(exc, ConfigurationError)
        return (
            "error",
            index,
            key,
            (type(exc).__name__, str(exc), traceback.format_exc()),
            retryable,
        ), job


def _chaos_send(
    sock: socket.socket,
    wlock: threading.Lock,
    reply: tuple,
    chaos: WorkerChaos,
    job: Any,
) -> None:
    sever_label = chaos._match(chaos.sever, job)
    if sever_label is not None and chaos._first("sever", sever_label):
        # Sever mid-result-upload: write the length prefix plus a
        # truncated body, then hard-close. The server sees a torn frame
        # and EOF, requeues the cell, and this worker reconnects.
        payload = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
        with wlock:
            sock.sendall(struct.Struct("!Q").pack(len(payload)))
            sock.sendall(payload[: max(1, len(payload) // 2)])
            sock.close()
        raise _SocketSevered(f"severed mid-upload of {sever_label!r}")
    send_frame(sock, reply, wlock)
    dup_label = chaos._match(chaos.dup, job)
    if dup_label is not None and chaos._first("dup", dup_label):
        send_frame(sock, reply, wlock)  # duplicate delivery, verbatim
