"""Zero-copy task-graph handoff over POSIX shared memory.

The sweep supervisor dispatches every cell to its worker over a pipe, and
a cell carries the full :class:`~repro.chemistry.tasks.TaskGraph` — so a
16-cell sweep over one graph pickles the same thousands of ``TaskSpec``
objects sixteen times and unpickles them sixteen more. This module
replaces that payload with a :class:`GraphHandle`: the graph's dense
array form (quartets, flops, block offsets) is published once by the
parent into ``multiprocessing.shared_memory`` segments, and the handle —
a content key plus segment names, a few hundred bytes — rides the pipe
instead.

Workers attach the segments read-only and rebuild the graph *once per
process* (keyed by content address), mapping the NumPy arrays directly
onto the shared buffers — no array copy crosses the pipe, and repeat
cells on the same graph are a dict hit.

Only graphs whose footprints are the standard quartet derivation are
publishable (``TaskGraph.has_standard_footprints``): symmetry-folded and
hand-built graphs carry footprint structure the dense form cannot
represent, and fall back to ordinary pickling.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.chemistry.basis import BlockStructure
from repro.chemistry.tasks import TaskGraph, graph_from_arrays

#: Graphs below this task count pickle faster than they publish; the
#: handoff only engages above it.
SHM_MIN_TASKS = 256

#: Worker-side cache: content key -> rebuilt graph (one per process).
_ATTACHED_GRAPHS: dict[str, TaskGraph] = {}

#: Attached segments kept alive for the process lifetime — the arrays of
#: every cached graph are views into these buffers.
_ATTACHED_SEGMENTS: list[shared_memory.SharedMemory] = []


@dataclass(frozen=True)
class SegmentSpec:
    """One published array: segment name + dtype/shape to map it back."""

    name: str
    dtype: str
    shape: tuple[int, ...]


@dataclass(frozen=True)
class GraphHandle:
    """A content-addressed shared-memory reference to a task graph.

    Stands in for ``SweepCell.graph`` on the wire; workers resolve it
    back to a :class:`TaskGraph` with :func:`attach_graph`.
    """

    content_key: str
    quartets: SegmentSpec
    flops: SegmentSpec
    offsets: SegmentSpec
    tau: float


def _share_array(arr: np.ndarray) -> tuple[SegmentSpec, shared_memory.SharedMemory]:
    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    view: np.ndarray = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    return SegmentSpec(shm.name, arr.dtype.str, arr.shape), shm


def _attach_array(spec: SegmentSpec) -> np.ndarray:
    # Attaching re-registers the name with the resource tracker. The
    # sweep pool forks its workers, so they share the parent's tracker
    # process: the duplicate registration is a set no-op, worker exit
    # triggers no cleanup, and the parent's unlink deregisters exactly
    # once. (Unregistering here would clobber that shared registration
    # and leak the segment if the parent died before unlinking.)
    shm = shared_memory.SharedMemory(name=spec.name)
    _ATTACHED_SEGMENTS.append(shm)
    arr: np.ndarray = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    arr.flags.writeable = False
    return arr


class PublishedGraph:
    """Parent-side ownership of one graph's shared segments."""

    def __init__(
        self, handle: GraphHandle, segments: list[shared_memory.SharedMemory]
    ) -> None:
        self.handle = handle
        self._segments = segments

    def close(self) -> None:
        """Release and unlink the segments (idempotent)."""
        segments, self._segments = self._segments, []
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass


def publishable(graph: object) -> bool:
    """Whether the zero-copy handoff applies to this graph."""
    return (
        isinstance(graph, TaskGraph)
        and graph.n_tasks >= SHM_MIN_TASKS
        and graph.has_standard_footprints
    )


def publish_graph(graph: TaskGraph) -> PublishedGraph:
    """Copy the graph's dense arrays into shared memory (parent side).

    The caller owns the returned :class:`PublishedGraph` and must
    :meth:`~PublishedGraph.close` it once no worker can still attach.
    """
    segments: list[shared_memory.SharedMemory] = []
    try:
        q_spec, q_shm = _share_array(graph.quartet_array)
        segments.append(q_shm)
        f_spec, f_shm = _share_array(graph.costs)
        segments.append(f_shm)
        o_spec, o_shm = _share_array(graph.blocks.offsets)
        segments.append(o_shm)
    except Exception:
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover
                pass
        raise
    handle = GraphHandle(
        content_key=graph.content_key,
        quartets=q_spec,
        flops=f_spec,
        offsets=o_spec,
        tau=float(graph.tau),
    )
    return PublishedGraph(handle, segments)


def attach_graph(handle: GraphHandle) -> TaskGraph:
    """Resolve a handle back to a :class:`TaskGraph` (worker side).

    The rebuilt graph is cached by content key, so a worker pays the
    ``TaskSpec`` materialization once per distinct graph no matter how
    many cells it executes; the quartet/cost arrays stay views into the
    shared buffers.
    """
    cached = _ATTACHED_GRAPHS.get(handle.content_key)
    if cached is not None:
        return cached
    quartets = _attach_array(handle.quartets)
    flops = _attach_array(handle.flops)
    offsets = _attach_array(handle.offsets)
    graph = graph_from_arrays(
        quartets, flops, BlockStructure(offsets), handle.tau
    )
    _ATTACHED_GRAPHS[handle.content_key] = graph
    return graph
