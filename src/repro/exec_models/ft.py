"""Fault-tolerant execution-model variants (experiment E16).

Two variants bracket the paper's dependability contrast:

- :class:`FaultTolerantWorkStealing` — the RMA work-stealing model plus
  the three mechanisms that make crash recovery possible: a shared
  failure detector, orphan-task adoption (queued *and* in-flight tasks of
  a crashed rank are replayed by survivors — tasks are idempotent, so
  replay is safe), and the healing token ring of
  :class:`~repro.exec_models.termination.FaultTolerantTokenRing`. Under a
  crash it still finishes **every** task; the price shows up as FAILED
  time, retries, and recovery steals.
- :class:`FaultTolerantStatic` — the static baseline plus *detection
  only*. It cannot recover: the schedule is fixed before execution, so a
  crashed rank's tasks are simply lost and tasks touching its data are
  abandoned after the fail-fast timeout. The run completes degraded
  (``completion_rate < 1``). That asymmetry — not the raw makespans — is
  E16's result.

Both variants delegate to their plain base class when no fault plan is
armed, so zero-fault runs are bit-for-bit identical to the baseline.
"""

from __future__ import annotations

import numpy as np

from repro.exec_models.base import Harness
from repro.exec_models.static_ import StaticBlock
from repro.exec_models.termination import (
    TERMINATE_TAG,
    TOKEN_TAG,
    FaultTolerantTokenRing,
)
from repro.exec_models.work_stealing import _META_BYTES, WorkStealing
from repro.faults import RetryPolicy, with_retries
from repro.runtime.comm import RankContext
from repro.util import RankFailedError, spawn_rng


class FaultTolerantWorkStealing(WorkStealing):
    """Work stealing that detects crashes and replays orphaned tasks.

    Args:
        retry: backoff policy for replaying a task whose data touches a
            dead rank (default allows enough attempts to ride out two
            cascaded owner failures).
        token_timeout: silent period after which the lowest live rank
            reissues the termination token (simulated seconds).
        **kwargs: forwarded to :class:`WorkStealing` (initial, steal,
            victim, backoff bounds, park_after).
    """

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        token_timeout: float = 1.0e-3,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.retry = retry if retry is not None else RetryPolicy(max_attempts=5)
        self.token_timeout = float(token_timeout)
        self.name = "ft_work_stealing"

    # ------------------------------------------------------------------
    def setup(self, harness: Harness) -> None:
        super().setup(harness)
        if harness.injector is None:
            return
        queues = harness.model_state["queues"]
        in_flight: list[list[int]] = [[] for _ in range(harness.n_ranks)]
        harness.model_state["in_flight"] = in_flight
        #: Ranks whose orphans have been adopted (exactly-once recovery).
        harness.model_state["recovered"] = set()

        def work_remains() -> bool:
            # The replay barrier: any queued task anywhere, or any task
            # still marked in flight (a crashed rank's in-flight entries
            # persist until adopted), blocks termination.
            return any(queues) or any(in_flight)

        harness.model_state["ring"] = FaultTolerantTokenRing(
            harness.n_ranks,
            harness.detector,
            work_remains=work_remains,
            token_timeout=self.token_timeout,
        )
        harness.enable_data_failover()
        for key in (
            "failed_contacts",
            "ranks_recovered",
            "tasks_recovered",
            "token_regenerations",
        ):
            harness.counters[key] = 0.0

    # ------------------------------------------------------------------
    def _execute_with_replay(
        self, harness: Harness, ctx: RankContext, tid: int, rng: np.random.Generator
    ):
        """Run one task, retrying through owner failures (generator)."""
        detector = harness.detector
        task = harness.graph.tasks[tid]

        def on_failure(rank: int) -> None:
            # Report makes the death visible everywhere; the data-failover
            # hook then redirects the retry to the replica holder.
            detector.report(rank)
            harness.counters["failed_contacts"] += 1.0

        yield from with_retries(
            ctx,
            lambda: harness.execute_task(ctx, task),
            self.retry,
            rng,
            on_failure=on_failure,
        )

    def _recover_orphans(self, harness: Harness, ctx: RankContext):
        """Adopt queued + in-flight tasks of newly suspected ranks.

        Adoption is atomic (no yields) and happens *before* the modeled
        protocol costs are paid: if this rank dies mid-recovery the
        orphans already sit in its queue, where the next survivor finds
        them. Returns the number of tasks adopted (generator).
        """
        detector = harness.detector
        queues = harness.model_state["queues"]
        in_flight = harness.model_state["in_flight"]
        recovered: set[int] = harness.model_state["recovered"]
        ring: FaultTolerantTokenRing = harness.model_state["ring"]
        adopted = 0
        for dead in sorted(detector.suspects()):
            if dead in recovered:
                continue
            recovered.add(dead)
            moved = 0
            while queues[dead]:
                queues[ctx.rank].append(queues[dead].popleft())
                moved += 1
            while in_flight[dead]:
                queues[ctx.rank].append(in_flight[dead].pop())
                moved += 1
            if moved:
                ring.mark_dirty(ctx.rank)
            adopted += moved
            harness.counters["ranks_recovered"] += 1.0
            harness.counters["tasks_recovered"] += float(moved)
            # Pay for re-reading the dead rank's scheduler state from the
            # replica holder: queue metadata plus the orphan descriptors.
            replica = harness.next_alive((dead + 1) % harness.n_ranks)
            yield from ctx.protocol_get(replica, _META_BYTES)
            if moved:
                yield from ctx.protocol_get(
                    replica, moved * Harness.TASK_DESCRIPTOR_BYTES
                )
        return adopted

    def _choose_live_victim(
        self, ctx: RankContext, detector, rng: np.random.Generator, scan: int
    ) -> int | None:
        """A victim not currently suspected dead (None if none exists)."""
        n = ctx.machine.n_ranks
        for offset in range(n):
            victim = self._choose_victim(ctx, rng, scan + offset)
            if not detector.is_suspected(victim):
                return victim
        return None

    # ------------------------------------------------------------------
    def rank_process(self, harness: Harness, ctx: RankContext):
        if harness.injector is None:
            # Zero-fault runs take the plain path, bit for bit.
            yield from super().rank_process(harness, ctx)
            return
        queues = harness.model_state["queues"]
        ring: FaultTolerantTokenRing = harness.model_state["ring"]
        in_flight = harness.model_state["in_flight"]
        detector = harness.detector
        queue = queues[ctx.rank]
        mine = in_flight[ctx.rank]
        n_ranks = harness.n_ranks
        rng = spawn_rng(harness.rank_seed(ctx.rank, "steal"))
        retry_rng = spawn_rng(harness.rank_seed(ctx.rank, "retry"))
        heartbeat = detector.detection_latency
        backoff = self.min_backoff
        scan = 0
        consecutive_failures = 0

        while True:
            # Drain the local queue; track in-flight so a crash mid-task
            # leaves a replayable record.
            while queue:
                tid = yield from self._pop_local(harness, ctx)
                if tid is None:
                    break
                mine.append(tid)
                yield from self._execute_with_replay(harness, ctx, tid, retry_rng)
                mine.remove(tid)
                backoff = self.min_backoff
                consecutive_failures = 0

            if n_ranks == 1:
                return

            # Adopt orphans of any newly suspected rank.
            adopted = yield from self._recover_orphans(harness, ctx)
            if adopted:
                backoff = self.min_backoff
                consecutive_failures = 0
                continue

            message = ctx.try_recv()
            if message is None and consecutive_failures >= self.park_after:
                # Park, but wake every heartbeat: a token or terminate
                # lost to message faults (or a dying holder) must not
                # strand a parked rank.
                message = yield from ctx.recv(traced=False, timeout=heartbeat)
                if message is None:
                    if ring.terminated:
                        return
                    yield from ring.maybe_regenerate(ctx)
                    harness.counters["token_regenerations"] = float(
                        ring.regenerations
                    )
            if message is not None:
                if message.tag == TERMINATE_TAG:
                    return
                if message.tag == TOKEN_TAG:
                    declared = yield from ring.handle_token(ctx, message.payload)
                    harness.counters["token_hops"] = float(ring.hops)
                    if declared:
                        return
            yield from ring.maybe_launch(ctx)
            harness.counters["token_hops"] = float(ring.hops)

            victim = self._choose_live_victim(ctx, detector, rng, scan)
            scan += 1
            got = 0
            if victim is not None:
                try:
                    got = yield from self._attempt_steal(harness, ctx, victim)
                except RankFailedError as err:
                    # Victim died between selection and contact: the
                    # failed CAS is itself the detection.
                    detector.report(err.rank)
                    harness.counters["failed_contacts"] += 1.0
                    harness.counters["failed_steals"] += 1.0
            if got:
                backoff = self.min_backoff
                consecutive_failures = 0
            else:
                consecutive_failures += 1
                yield from ctx.sleep(backoff)
                backoff = min(backoff * 2.0, self.max_backoff)


class FaultTolerantStatic(StaticBlock):
    """Static block schedule with failure detection but no recovery.

    The honest fault-tolerant ceiling of a static execution model: it
    notices failures (fail-fast RMA timeouts) and keeps going, but the
    pre-computed schedule leaves it nothing to recover *with* — a crashed
    rank's tasks are lost and tasks touching its data are abandoned after
    one failed contact. Runs complete with ``completion_rate < 1``.
    """

    def __init__(self) -> None:
        super().__init__()
        self.name = "ft_static_block"

    def setup(self, harness: Harness) -> None:
        super().setup(harness)
        if harness.injector is not None:
            harness.counters["detected_failures"] = 0.0
            harness.counters["tasks_abandoned"] = 0.0

    def rank_process(self, harness: Harness, ctx: RankContext):
        if harness.injector is None:
            yield from super().rank_process(harness, ctx)
            return
        detector = harness.detector
        for tid in harness.model_state["task_lists"][ctx.rank]:
            try:
                yield from harness.execute_task(ctx, harness.graph.tasks[tid])
            except RankFailedError as err:
                detector.report(err.rank)
                harness.counters["detected_failures"] += 1.0
                harness.counters["tasks_abandoned"] += 1.0
