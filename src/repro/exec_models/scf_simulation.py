"""Whole-SCF simulation: iterated Fock builds with synchronization.

The single-shot harness answers "how long does one Fock build take?";
real SCF interleaves Fock builds with machine-wide synchronization
(Fock reduction, density broadcast, convergence check). This module
simulates ``n_iterations`` of that loop inside **one** engine, so
iteration-boundary costs and cross-iteration adaptation (persistence)
are modeled faithfully:

    per iteration:  claim & execute tasks (per the chosen discipline)
                    -> allreduce(Fock bytes)     (binomial reduce+bcast)
                    -> broadcast(density bytes)
                    -> barrier                   (convergence check)

Disciplines: ``static_block``, ``static_cyclic``, ``counter`` (chunked
NXTVAL), ``work_stealing`` (per-iteration epoch-tagged token rings), and
``persistence`` (iteration i+1 statically scheduled from iteration i's
*measured* durations and rank throughputs). The diagonalization itself is
outside the scope (it is a dense-linear-algebra phase, not part of the
paper's kernel); its synchronization structure is what the collectives
stand in for.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.balance.greedy import capacity_lpt
from repro.chemistry.tasks import TaskGraph, TaskSpec
from repro.exec_models.base import Harness
from repro.exec_models.static_ import block_assignment, cyclic_assignment
from repro.exec_models.termination import TokenRing
from repro.runtime.collectives import allreduce, barrier, broadcast
from repro.runtime.comm import RankContext
from repro.runtime.counter import GlobalCounter
from repro.runtime.garrays import BlockDistribution, GlobalBlockedMatrix
from repro.runtime.trace import COMPUTE, TraceRecorder
from repro.simulate.engine import Engine, Resource
from repro.simulate.machine import MachineSpec
from repro.simulate.network import Network
from repro.util import (
    ConfigurationError,
    SchedulingError,
    check_positive,
    derive_seed,
    spawn_rng,
)

MODES = ("static_block", "static_cyclic", "persistence", "counter", "work_stealing")


@dataclass
class ScfSimResult:
    """Outcome of one simulated multi-iteration SCF run."""

    mode: str
    n_ranks: int
    n_iterations: int
    total_time: float
    iteration_times: np.ndarray
    assignments: list[np.ndarray]
    compute_seconds: np.ndarray
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def steady_state_time(self) -> float:
        """Mean per-iteration time excluding the first iteration."""
        if self.n_iterations < 2:
            return float(self.iteration_times[0])
        return float(self.iteration_times[1:].mean())

    @property
    def first_iteration_time(self) -> float:
        return float(self.iteration_times[0])


class ScfSimulation:
    """Simulates an SCF run under one task-claiming discipline.

    Args:
        mode: one of :data:`MODES`.
        **options: discipline knobs in the same spellings
            :func:`~repro.exec_models.registry.make_model` accepts
            (``chunk``/``chunk_size`` for ``counter`` mode,
            ``steal``/``steal_policy`` for ``work_stealing`` mode).
    """

    def __init__(self, mode: str = "work_stealing", **options) -> None:
        from repro.exec_models.registry import normalize_model_options

        if mode not in MODES:
            raise ConfigurationError(f"mode must be one of {MODES}, got {mode!r}")
        normalized = normalize_model_options(options)
        chunk = normalized.pop("chunk", 1)
        steal = normalized.pop("steal", "half")
        if normalized:
            raise ConfigurationError(
                f"ScfSimulation({mode!r}) does not accept options "
                f"{sorted(normalized)}"
            )
        check_positive("chunk", chunk)
        if steal not in ("half", "one"):
            raise ConfigurationError(f"steal must be 'half' or 'one', got {steal!r}")
        self.mode = mode
        self.chunk = int(chunk)
        self.steal = steal

    # ------------------------------------------------------------------
    def run(
        self,
        graph: TaskGraph,
        machine: MachineSpec,
        n_iterations: int = 5,
        seed: int = 0,
    ) -> ScfSimResult:
        check_positive("n_iterations", n_iterations)
        n_ranks = machine.n_ranks
        n_tasks = graph.n_tasks
        engine = Engine()
        node_of = machine.node_of if machine.cores_per_node is not None else None
        network = Network(engine, machine.network, n_ranks, node_of)
        trace = TraceRecorder(n_ranks)
        dist = BlockDistribution(graph.blocks.n_blocks, n_ranks)
        density_ga = GlobalBlockedMatrix("D", graph.blocks, dist)
        fock_ga = GlobalBlockedMatrix("F", graph.blocks, dist)
        matrix_bytes = graph.blocks.n_basis**2 * 8

        executed = np.zeros((n_iterations, n_tasks), dtype=np.int64)
        assignments = [np.full(n_tasks, -1, dtype=np.int64) for _ in range(n_iterations)]
        durations = [np.zeros(n_tasks) for _ in range(n_iterations)]
        iteration_marks: list[float] = []
        counters: dict[str, float] = {"steals": 0.0, "claims": 0.0, "token_hops": 0.0}

        state = _IterationState(
            graph=graph,
            machine=machine,
            n_iterations=n_iterations,
            seed=seed,
            executed=executed,
            assignments=assignments,
            durations=durations,
            counters=counters,
        )
        state.prepare(self.mode, self.chunk, n_ranks)

        def execute(ctx: RankContext, task: TaskSpec, iteration: int):
            for ref in task.reads:
                yield from density_ga.get(ctx, ref)
            start = ctx.now
            yield from ctx.compute(task.flops)
            durations[iteration][task.tid] = ctx.now - start
            for ref in task.writes:
                yield from fock_ga.accumulate(ctx, ref)
            executed[iteration, task.tid] += 1
            assignments[iteration][task.tid] = ctx.rank

        def rank_process(rank: int):
            ctx = RankContext(rank, engine, network, machine, trace)
            for iteration in range(n_iterations):
                if self.mode in ("static_block", "static_cyclic", "persistence"):
                    for tid in state.schedule(iteration)[rank]:
                        yield from execute(ctx, graph.tasks[tid], iteration)
                elif self.mode == "counter":
                    counter = state.counter(iteration)
                    while True:
                        first = yield from counter.next(ctx, self.chunk)
                        counters["claims"] += 1.0
                        if first >= n_tasks:
                            break
                        for tid in range(first, min(first + self.chunk, n_tasks)):
                            yield from execute(ctx, graph.tasks[tid], iteration)
                else:
                    yield from self._steal_iteration(
                        ctx, state, iteration, execute, counters
                    )
                # Iteration boundary: Fock reduction, density broadcast,
                # convergence barrier.
                yield from allreduce(ctx, n_ranks, matrix_bytes, epoch=3 * iteration)
                yield from broadcast(ctx, n_ranks, matrix_bytes, epoch=3 * iteration + 1)
                yield from barrier(ctx, n_ranks, epoch=3 * iteration + 2)
                if rank == 0:
                    iteration_marks.append(engine.now)

        for rank in range(n_ranks):
            engine.process(rank_process(rank), name=f"scf-rank{rank}")
        total = engine.run()

        if not np.all(executed == 1):
            bad = np.argwhere(executed != 1)[:5]
            raise SchedulingError(
                f"iterative run broke exactly-once execution at (iter, tid) {bad.tolist()}"
            )
        marks = np.array(iteration_marks)
        iteration_times = np.diff(np.concatenate([[0.0], marks]))
        return ScfSimResult(
            mode=self.mode,
            n_ranks=n_ranks,
            n_iterations=n_iterations,
            total_time=total,
            iteration_times=iteration_times,
            assignments=assignments,
            compute_seconds=trace.total(COMPUTE),
            counters=dict(counters),
        )

    # ------------------------------------------------------------------
    def _steal_iteration(self, ctx, state: "_IterationState", iteration, execute, counters):
        """One iteration of poll-based work stealing with an epoch ring."""
        graph = state.graph
        n_ranks = state.machine.n_ranks
        queues = state.steal_queues(iteration)
        locks = state.steal_locks(iteration)
        ring = state.ring(iteration)
        queue = queues[ctx.rank]
        rng = spawn_rng(derive_seed(state.seed, "scfsim", iteration, ctx.rank))
        backoff = 1.0e-6

        while True:
            while queue:
                yield locks[ctx.rank].acquire()
                try:
                    yield from ctx.overhead_delay(Harness.LOCAL_QUEUE_OP)
                    tid = queue.popleft() if queue else None
                finally:
                    locks[ctx.rank].release()
                if tid is None:
                    break
                yield from execute(ctx, graph.tasks[tid], iteration)
                backoff = 1.0e-6
            if n_ranks == 1:
                return
            # Poll protocol messages (tag-filtered: collective traffic from
            # ranks already past termination must not be consumed here).
            message = ctx.try_recv(ring.terminate_tag)
            if message is not None:
                return
            message = ctx.try_recv(ring.token_tag)
            if message is not None:
                declared = yield from ring.handle_token(ctx, message.payload)
                counters["token_hops"] = counters.get("token_hops", 0.0) + 1.0
                if declared:
                    return
            yield from ring.maybe_launch(ctx)
            victim = int(rng.integers(0, n_ranks - 1))
            if victim >= ctx.rank:
                victim += 1
            got = yield from self._attempt_steal(ctx, queues, locks, ring, victim, counters)
            if got:
                backoff = 1.0e-6
            else:
                yield from ctx.sleep(backoff)
                backoff = min(backoff * 2.0, 8.0e-6)

    def _attempt_steal(self, ctx, queues, locks, ring, victim, counters):
        yield from ctx.protocol_get(victim, 8)
        yield locks[victim].acquire()
        try:
            yield from ctx.protocol_get(victim, 16)
            available = len(queues[victim])
            if available == 0:
                return 0
            k = (available + 1) // 2 if self.steal == "half" else 1
            yield from ctx.protocol_get(victim, k * Harness.TASK_DESCRIPTOR_BYTES)
            loot = [queues[victim].pop() for _ in range(k)]
        finally:
            locks[victim].release()
        yield from ctx.protocol_put(victim, 8)
        loot.reverse()
        queues[ctx.rank].extend(loot)
        ring.mark_dirty(ctx.rank)
        counters["steals"] = counters.get("steals", 0.0) + 1.0
        return k


class _IterationState:
    """Lazily-built per-iteration scheduling state.

    Iteration boundaries are global sync points, so by the time any rank
    asks for iteration *i*'s schedule, iteration *i-1*'s measurements are
    complete — lazy construction is race-free inside the deterministic
    simulation.
    """

    def __init__(self, graph, machine, n_iterations, seed, executed, assignments, durations, counters):
        self.graph = graph
        self.machine = machine
        self.n_iterations = n_iterations
        self.seed = seed
        self.executed = executed
        self.assignments = assignments
        self.durations = durations
        self.counters = counters
        self._schedules: dict[int, list[list[int]]] = {}
        self._counters: dict[int, GlobalCounter] = {}
        self._queues: dict[int, list[deque[int]]] = {}
        self._locks: dict[int, list[Resource]] = {}
        self._rings: dict[int, TokenRing] = {}
        self._mode = "static_block"
        self._chunk = 1
        self._n_ranks = machine.n_ranks

    def prepare(self, mode: str, chunk: int, n_ranks: int) -> None:
        self._mode = mode
        self._chunk = chunk
        self._n_ranks = n_ranks

    def _assignment_to_lists(self, assignment: np.ndarray) -> list[list[int]]:
        lists: list[list[int]] = [[] for _ in range(self._n_ranks)]
        for tid, rank in enumerate(assignment):
            lists[rank].append(tid)
        return lists

    def schedule(self, iteration: int) -> list[list[int]]:
        cached = self._schedules.get(iteration)
        if cached is not None:
            return cached
        n_tasks = self.graph.n_tasks
        if self._mode == "static_cyclic":
            assignment = cyclic_assignment(n_tasks, self._n_ranks)
        elif self._mode == "static_block" or iteration == 0:
            assignment = block_assignment(n_tasks, self._n_ranks)
        else:
            # Persistence: capacity-aware LPT on last iteration's
            # measurements (same estimator as exec_models.persistence).
            prev = iteration - 1
            durations = self.durations[prev]
            prev_assignment = self.assignments[prev]
            flops_done = np.bincount(
                prev_assignment, weights=self.graph.costs, minlength=self._n_ranks
            )
            seconds = np.bincount(
                prev_assignment, weights=durations, minlength=self._n_ranks
            )
            capacities = np.ones(self._n_ranks)
            ran = seconds > 0
            capacities[ran] = flops_done[ran] / seconds[ran]
            if ran.any():
                capacities[~ran] = capacities[ran].mean()
            neutral = durations * capacities[prev_assignment]
            assignment = capacity_lpt(neutral, capacities)
        lists = self._assignment_to_lists(assignment)
        self._schedules[iteration] = lists
        return lists

    def counter(self, iteration: int) -> GlobalCounter:
        if iteration not in self._counters:
            self._counters[iteration] = GlobalCounter(0)
        return self._counters[iteration]

    def steal_queues(self, iteration: int) -> list[deque[int]]:
        if iteration not in self._queues:
            assignment = block_assignment(self.graph.n_tasks, self._n_ranks)
            queues: list[deque[int]] = [deque() for _ in range(self._n_ranks)]
            for tid, rank in enumerate(assignment):
                queues[rank].append(tid)
            self._queues[iteration] = queues
        return self._queues[iteration]

    def steal_locks(self, iteration: int) -> list[Resource]:
        if iteration not in self._locks:
            self._locks[iteration] = [Resource(1) for _ in range(self._n_ranks)]
        return self._locks[iteration]

    def ring(self, iteration: int) -> TokenRing:
        if iteration not in self._rings:
            self._rings[iteration] = TokenRing(self._n_ranks, epoch=iteration)
        return self._rings[iteration]
