"""Token-ring termination detection for distributed work stealing.

A double-round dirty-bit token protocol (the ring form of Dijkstra-Safra,
specialized to work stealing where work moves via one-sided steals rather
than messages):

- The token carries a count of consecutive *clean* hops. Rank 0 launches it
  the first time it goes idle.
- A rank holds the token (it waits in the mailbox) while it has work; it
  forwards the token only when idle with an empty queue.
- A rank is **dirty** if it acquired work (a successful steal, or work
  appearing in its queue by being a steal victim is irrelevant — only
  *gaining* work matters for the safety argument) since it last forwarded
  the token. A dirty rank forwards with count reset to 0 and goes clean.
- When a forward would raise the count to ``2 * n_ranks``, the holder
  declares termination and broadcasts ``terminate``.

Safety: termination needs 2P consecutive clean idle forwards. Any extant
task sits in some queue; its holder will not forward the token, so the
count can never complete the double round while work exists. Steals move
tasks atomically under the victim's queue lock (no "nowhere" state), and
the thief marks itself dirty at transfer completion, breaking the classic
behind-the-token race. Liveness: once all work is done, every rank
eventually idles, forwards, and the count reaches 2P.
"""

from __future__ import annotations

from repro.runtime.comm import RankContext
from repro.util import check_positive

TOKEN_TAG = "token"
TERMINATE_TAG = "terminate"


class TokenRing:
    """Shared termination-detection state for one run (or one epoch).

    ``epoch`` (optional) is folded into the message tags so that several
    rings can run back-to-back over one network — the iterative SCF
    simulation runs one ring per Fock build, and stale tokens from a
    finished epoch must never match a later epoch's receives.
    """

    def __init__(self, n_ranks: int, epoch: int | None = None) -> None:
        check_positive("n_ranks", n_ranks)
        self.n_ranks = int(n_ranks)
        self.epoch = epoch
        self.dirty = [False] * n_ranks
        self.launched = False
        self.terminated = False
        #: Total token forwards (protocol-cost statistic).
        self.hops = 0

    @property
    def token_tag(self):
        return TOKEN_TAG if self.epoch is None else (TOKEN_TAG, self.epoch)

    @property
    def terminate_tag(self):
        return TERMINATE_TAG if self.epoch is None else (TERMINATE_TAG, self.epoch)

    def mark_dirty(self, rank: int) -> None:
        """Call when ``rank`` gains work (successful steal)."""
        self.dirty[rank] = True

    def maybe_launch(self, ctx: RankContext):
        """Rank 0 launches the token on first idleness (generator)."""
        if ctx.rank == 0 and not self.launched and self.n_ranks > 1:
            self.launched = True
            yield from ctx.send((ctx.rank + 1) % self.n_ranks, self.token_tag, 0)
            self.hops += 1

    def handle_token(self, ctx: RankContext, count: int):
        """Process a received token while idle with an empty queue.

        Returns True if this rank declared termination (generator return
        value; drive with ``yield from``).
        """
        rank = ctx.rank
        if self.dirty[rank]:
            count = 0
            self.dirty[rank] = False
        else:
            count += 1
        if count >= 2 * self.n_ranks:
            self.terminated = True
            yield from self.broadcast_terminate(ctx)
            return True
        yield from ctx.send((rank + 1) % self.n_ranks, self.token_tag, count)
        self.hops += 1
        return False

    def broadcast_terminate(self, ctx: RankContext):
        """Linear terminate broadcast from the declaring rank.

        The declarer pays one software overhead per destination; deliveries
        proceed concurrently. (A tree broadcast would shave the last
        ~P * o_send off the makespan; at the scales studied this is <1%.)
        """
        for other in range(self.n_ranks):
            if other != ctx.rank:
                yield from ctx.send(other, self.terminate_tag, None)


class FaultTolerantTokenRing(TokenRing):
    """Token ring that survives member crashes and lost tokens.

    Three extensions over the plain ring (the "ring healing" of E16):

    - **Healing:** tokens are forwarded to the next rank *not suspected
      dead*, so the ring contracts around crashed members.
    - **Regeneration:** the lowest-numbered live rank reissues the token
      with count 0 when none has been seen for ``token_timeout`` —
      covering tokens lost to message drops or to dying holders. (Launch
      duty likewise falls to the lowest live rank, not rank 0.)
    - **Replay barrier:** a ``work_remains`` callback (queued or orphaned
      in-flight work anywhere) resets the count and gates the declaration,
      so termination can never be declared while crash recovery is
      replaying tasks. Regeneration can put several tokens in flight at
      once, which breaks the classic two-round safety argument on its own;
      the declare-time ``work_remains`` check is what restores safety.

    The clean-hop threshold stays ``2 * n_ranks`` (the original member
    count) — conservative on a contracted ring, never unsafe.
    """

    def __init__(
        self,
        n_ranks: int,
        detector,
        epoch: int | None = None,
        work_remains=None,
        token_timeout: float = 1.0e-3,
    ) -> None:
        super().__init__(n_ranks, epoch)
        self.detector = detector
        self.work_remains = work_remains
        check_positive("token_timeout", token_timeout)
        self.token_timeout = float(token_timeout)
        #: Simulated time the token was last launched/handled/reissued.
        self.last_seen = 0.0
        #: Tokens reissued after a timeout (observability counter).
        self.regenerations = 0

    # ------------------------------------------------------------------
    def next_alive(self, rank: int) -> int:
        """Next ring member after ``rank`` not suspected dead."""
        for k in range(1, self.n_ranks + 1):
            cand = (rank + k) % self.n_ranks
            if not self.detector.is_suspected(cand):
                return cand
        return rank

    def lowest_alive(self) -> int:
        for rank in range(self.n_ranks):
            if not self.detector.is_suspected(rank):
                return rank
        return 0

    def _work_remains(self) -> bool:
        return self.work_remains is not None and bool(self.work_remains())

    # ------------------------------------------------------------------
    def maybe_launch(self, ctx: RankContext):
        """The lowest live rank launches the token on first idleness."""
        if (
            not self.launched
            and self.n_ranks > 1
            and ctx.rank == self.lowest_alive()
        ):
            self.launched = True
            self.last_seen = ctx.now
            yield from ctx.send(self.next_alive(ctx.rank), self.token_tag, 0)
            self.hops += 1

    def handle_token(self, ctx: RankContext, count: int):
        rank = ctx.rank
        self.last_seen = ctx.now
        if self.dirty[rank] or self._work_remains():
            count = 0
            self.dirty[rank] = False
        else:
            count += 1
        if count >= 2 * self.n_ranks and not self._work_remains():
            self.terminated = True
            yield from self.broadcast_terminate(ctx)
            return True
        yield from ctx.send(self.next_alive(rank), self.token_tag, count)
        self.hops += 1
        return False

    def maybe_regenerate(self, ctx: RankContext):
        """Reissue the token if it has been silent too long (generator)."""
        if (
            self.launched
            and not self.terminated
            and ctx.rank == self.lowest_alive()
            and ctx.now - self.last_seen > self.token_timeout
        ):
            self.last_seen = ctx.now
            self.regenerations += 1
            yield from ctx.send(self.next_alive(ctx.rank), self.token_tag, 0)
            self.hops += 1
