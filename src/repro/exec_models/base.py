"""Execution-model base class, run harness, and result record.

The :class:`Harness` wires one simulated run together: engine, network,
trace recorder, and the distributed density/Fock matrices. Its
:meth:`Harness.execute_task` generator is the *common task protocol* every
model uses —

    get density blocks -> compute kernel -> accumulate Fock blocks

so models differ **only** in how tasks are claimed, exactly as the paper's
methodology demands.

:class:`RunResult` is the uniform outcome record: makespan, per-rank
activity breakdown, the task->rank assignment (validated for exactly-once
execution), per-task timings (consumed by persistence-based balancing),
model-specific counters, and network statistics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Generator
from dataclasses import dataclass, field

import numpy as np

from repro.chemistry.tasks import TaskGraph, TaskSpec
from repro.faults import FailureDetector, FaultInjector, FaultPlan
from repro.runtime.comm import RankContext
from repro.runtime.garrays import BlockDistribution, GlobalBlockedMatrix
from repro.runtime.trace import COMM, COMPUTE, FAILED, IDLE, OVERHEAD, TraceRecorder
from repro.simulate.engine import Process, Timeout, pooled_timeout
from repro.simulate.machine import MachineSpec
from repro.simulate.sched import make_engine
from repro.simulate.network import Network
from repro.util import SchedulingError, SimulationError, derive_seed


@dataclass
class RunResult:
    """Outcome of one simulated execution.

    Attributes:
        model: execution-model name.
        n_ranks: rank count.
        n_tasks: task count.
        makespan: simulated seconds from start to the last rank finishing.
        breakdown: category -> ``(n_ranks,)`` seconds
            (compute / comm / overhead / idle).
        assignment: ``(n_tasks,)`` executing rank per task.
        task_starts: ``(n_tasks,)`` kernel start time per task.
        task_durations: ``(n_tasks,)`` kernel compute seconds per task
            (the persistence balancer's measurement input).
        finish_times: ``(n_ranks,)`` when each rank's process completed.
        counters: model-specific statistics (steals, chunks, rounds, ...).
        network: operation counts and bytes moved.
        total_flops: task-graph total (for speedup/efficiency).
        nominal_flops_per_second: machine nominal per-rank rate.
        failed_ranks: ranks that crashed during the run (fault plans).
        completion_rate: fraction of tasks that executed at least once
            (1.0 for fault-free runs; < 1.0 marks a degraded run).
    """

    model: str
    n_ranks: int
    n_tasks: int
    makespan: float
    breakdown: dict[str, np.ndarray]
    assignment: np.ndarray
    task_starts: np.ndarray
    task_durations: np.ndarray
    finish_times: np.ndarray
    counters: dict[str, float] = field(default_factory=dict)
    network: dict[str, float] = field(default_factory=dict)
    total_flops: float = 0.0
    nominal_flops_per_second: float = 1.0
    failed_ranks: tuple[int, ...] = ()
    completion_rate: float = 1.0
    #: Raw (rank, category, start, end) intervals; populated only when the
    #: run was made with ``trace_intervals=True`` (timeline rendering).
    intervals: list[tuple[int, str, float, float]] | None = None
    #: Deterministic engine/trace volume counters (see ``repro.perf``):
    #: total events dispatched, events dispatched via the zero-delay
    #: run-queue, and trace intervals recorded. Kept out of ``counters``
    #: so experiment tables are unaffected. Plain defaults keep cached
    #: result pickles from older revisions loadable.
    sim_events: int = 0
    sim_ready_events: int = 0
    trace_records: int = 0
    #: Events dispatched via a bucketed timeline (``REPRO_ENGINE=bucket``;
    #: 0 under the heap engines). Heap dispatches are the remainder:
    #: ``sim_events - sim_ready_events - sim_bucket_events``.
    sim_bucket_events: int = 0
    #: Task compute costs evaluated through the vectorized batch path
    #: (``MachineSpec.compute_seconds_batch``) rather than per-task.
    batched_costs: int = 0
    #: Timeout requests consumed by the engines' resume fast paths. With
    #: the shared freelist these no longer cost one allocation each; the
    #: counter measures how much traffic the freelist absorbs.
    timeout_allocs: int = 0
    #: Resource grants delivered straight to a waiter's resume (NIC and
    #: atomic-counter queueing) without a generic callback frame.
    grant_resumes: int = 0
    #: Traced network ops served from the fused cost tables (no
    #: generator frame); 0 when fault injection arms the traced path.
    fused_ops: int = 0

    @property
    def degraded(self) -> bool:
        """True when some tasks were lost to failures (no recovery)."""
        return self.completion_rate < 1.0

    @property
    def serial_seconds(self) -> float:
        """Modeled single-rank (nominal-speed, zero-overhead) time."""
        return self.total_flops / self.nominal_flops_per_second

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.makespan if self.makespan > 0 else 0.0

    @property
    def efficiency(self) -> float:
        return self.speedup / self.n_ranks

    @property
    def mean_utilization(self) -> float:
        """Mean fraction of makespan ranks spent computing tasks."""
        if self.makespan <= 0:
            return 0.0
        return float(self.breakdown[COMPUTE].mean() / self.makespan)

    @property
    def compute_imbalance(self) -> float:
        """max/mean of per-rank compute time (lambda >= 1; 1 is perfect)."""
        busy = self.breakdown[COMPUTE]
        mean = busy.mean()
        return float(busy.max() / mean) if mean > 0 else float("inf")

    def breakdown_fractions(self) -> dict[str, float]:
        """Machine-wide fraction of rank-seconds per activity category."""
        total = self.makespan * self.n_ranks
        if total <= 0:
            return {cat: 0.0 for cat in (COMPUTE, COMM, OVERHEAD, IDLE, FAILED)}
        return {cat: float(vals.sum() / total) for cat, vals in self.breakdown.items()}


class Harness:
    """Shared per-run machinery: engine, network, trace, global arrays."""

    #: Modeled local cost of claiming a task from a rank's own queue.
    LOCAL_QUEUE_OP = 1.0e-7
    #: Bytes of one task descriptor when stolen/transferred.
    TASK_DESCRIPTOR_BYTES = 16

    def __init__(
        self,
        graph: TaskGraph,
        machine: MachineSpec,
        seed: int = 0,
        trace_intervals: bool = False,
        distribution_scheme: str = "cyclic",
        faults: FaultPlan | None = None,
    ) -> None:
        self.graph = graph
        self.machine = machine
        self.seed = int(seed)
        self.engine = make_engine()
        node_of = machine.node_of if machine.cores_per_node is not None else None
        self.network = Network(self.engine, machine.network, machine.n_ranks, node_of)
        self.trace = TraceRecorder(machine.n_ranks)
        if trace_intervals:
            self.trace.keep_intervals()
        dist = BlockDistribution(graph.blocks.n_blocks, machine.n_ranks, distribution_scheme)
        self.density = GlobalBlockedMatrix("D", graph.blocks, dist)
        self.fock = GlobalBlockedMatrix("F", graph.blocks, dist)
        #: Scratch for model-specific statistics, folded into RunResult.
        self.counters: dict[str, float] = {}
        #: Task costs evaluated via the vectorized burst path.
        self.batched_costs = 0
        #: Per-run model state (schedules, queues, shared counters).
        self.model_state: dict = {}
        self._finish_times = np.full(machine.n_ranks, np.nan)
        #: Fault machinery; all None for fault-free runs. An *empty*
        #: FaultPlan is treated exactly like no plan at all, so zero-fault
        #: runs are bit-for-bit identical to the baseline.
        self.injector: FaultInjector | None = None
        self.detector: FailureDetector | None = None
        if faults is not None and not faults.empty:
            self.injector = FaultInjector(faults, self.engine, self.network)
            self.network.faults = self.injector
            self.detector = FailureDetector(self.injector)

    @property
    def n_ranks(self) -> int:
        return self.machine.n_ranks

    def context(self, rank: int) -> RankContext:
        return RankContext(
            rank, self.engine, self.network, self.machine, self.trace,
            faults=self.injector,
        )

    # ------------------------------------------------------------------
    # Fault-tolerance helpers (no-ops without an armed fault plan)
    # ------------------------------------------------------------------
    def next_alive(self, rank: int) -> int:
        """First rank at or after ``rank`` (cyclically) not suspected dead."""
        if self.detector is None:
            return rank % self.n_ranks
        for k in range(self.n_ranks):
            cand = (rank + k) % self.n_ranks
            if not self.detector.is_suspected(cand):
                return cand
        return rank % self.n_ranks

    def enable_data_failover(self) -> None:
        """Redirect block ownership away from suspected-dead ranks.

        Models the replicated/recoverable data store fault-tolerant
        runtimes keep (e.g. a parity copy of density/Fock blocks): once a
        rank is *suspected*, its blocks are served by the next live rank.
        Operations against a dead-but-unsuspected owner still fail fast
        and must be retried after reporting — that window is the modeled
        detection cost.
        """
        if self.detector is None:
            return

        def failover(owner: int) -> int:
            if self.detector.is_suspected(owner):
                return self.next_alive((owner + 1) % self.n_ranks)
            return owner

        self.density.failover = failover
        self.fock.failover = failover

    def rank_seed(self, rank: int, *keys: int | str) -> int:
        return derive_seed(self.seed, "rank", rank, *keys)

    # ------------------------------------------------------------------
    def execute_task(self, ctx: RankContext, task: TaskSpec):
        """The common task protocol: reads, kernel, accumulates."""
        for ref in task.reads:
            yield from self.density.get(ctx, ref)
        yield from ctx.compute(task.flops, tid=task.tid)
        for ref in task.writes:
            yield from self.fock.accumulate(ctx, ref)

    def execute_tasks(self, ctx: RankContext, tids):
        """Burst variant of :meth:`execute_task` over ordered task ids.

        Evaluates every compute cost in the burst with one vectorized
        ``compute_seconds_batch`` call and folds the trace accounting into
        one ``record_compute_batch`` call at the end, instead of a
        ``compute_seconds`` + ``record_compute`` pair per task. Event
        order — and therefore the simulation — is bit-for-bit the
        per-task path: the same gets, Timeouts, and accumulates yield in
        the same sequence, and the deferred COMPUTE accounting accumulates
        per rank in the same order with the same float values.

        Falls back to the per-task path whenever the deferral could be
        observable: time-dependent variability (costs sample the task's
        start time), an armed fault injector (stall windows, and replay
        resolves duplicate task records last-record-wins, so cross-rank
        record order matters), or a retained interval log (the interval
        *sequence* is pinned by golden digests).
        """
        graph = self.graph
        tasks = graph.tasks
        durations = (
            self.machine.compute_seconds_batch(ctx.rank, graph.costs[tids])
            if len(tids) > 1
            and self.injector is None
            and self.trace.intervals is None
            else None
        )
        if durations is None or durations.min() < 0.0:
            # Time-dependent costs, faults, interval log — or a negative
            # flop count, which the per-task path rejects with the right
            # error.
            for tid in tids:
                yield from self.execute_task(ctx, tasks[tid])
            return
        durations = durations.tolist()
        engine = self.engine
        density_get = self.density.get
        fock_accumulate = self.fock.accumulate
        spans: list[tuple[int, float, float]] = []
        append_span = spans.append
        for tid, duration in zip(tids, durations):
            task = tasks[tid]
            for ref in task.reads:
                yield from density_get(ctx, ref)
            start = engine.now
            yield pooled_timeout(duration)
            append_span((task.tid, start, engine.now))
            for ref in task.writes:
                yield from fock_accumulate(ctx, ref)
        self.trace.record_compute_batch(ctx.rank, spans)
        self.batched_costs += len(spans)

    def spawn_ranks(self, process_factory) -> None:
        """Start one process per rank; records per-rank finish times.

        ``process_factory(harness, ctx)`` must return the rank's generator.
        With a fault plan, also arms the injector so scheduled crashes can
        cancel the right processes.
        """

        # The finish time is recorded through the process's synchronous
        # on_finish hook rather than a wrapping generator: one frame fewer
        # on every event send, same record (engine.now at generator
        # return), and still skipped on cancellation exactly as the
        # statement after a ``yield from`` would be.
        engine = self.engine
        finish_times = self._finish_times

        def recorder(rank: int) -> Callable[[], None]:
            def record() -> None:
                finish_times[rank] = engine.now

            return record

        procs: dict[int, Process] = {}
        for rank in range(self.n_ranks):
            procs[rank] = engine.process(
                process_factory(self, self.context(rank)),
                name=f"rank{rank}",
                on_finish=recorder(rank),
            )
        if self.injector is not None:
            self.injector.arm(procs)

    def _tolerant_assignment(self) -> tuple[np.ndarray, int, int]:
        """Task assignment under faults: last record wins.

        Replay makes duplicate task records legitimate (tasks are
        idempotent; re-execution overwrites), and a crash can lose tasks
        outright under non-recovering models. Returns
        ``(assignment, tasks_lost, tasks_replayed)`` — lost tasks keep
        rank -1.
        """
        n_tasks = self.graph.n_tasks
        assignment = np.full(n_tasks, -1, dtype=np.int64)
        replays = 0
        for rec in self.trace.tasks:
            if not 0 <= rec.tid < n_tasks:
                raise SimulationError(f"task id {rec.tid} out of range")
            if assignment[rec.tid] != -1:
                replays += 1
            assignment[rec.tid] = rec.rank
        lost = int(np.count_nonzero(assignment < 0))
        return assignment, lost, replays

    def finish(self, model_name: str) -> RunResult:
        """Drain the engine, validate invariants, assemble the result."""
        self.engine.run()
        crashed: tuple[int, ...] = ()
        if self.injector is not None:
            crashed = self.injector.failed_ranks
            for rank in crashed:
                if np.isnan(self._finish_times[rank]):
                    self._finish_times[rank] = self.injector.dead_since[rank]
        if np.any(np.isnan(self._finish_times)):
            raise SchedulingError(
                f"model {model_name!r}: some ranks never finished"
            )
        makespan = float(np.max(self._finish_times))
        if self.injector is not None:
            # A crashed rank's remaining makespan is failed time, not idle.
            for rank in crashed:
                since = self.injector.dead_since[rank]
                if makespan > since:
                    self.trace.record(rank, FAILED, since, makespan)
        if self.injector is None:
            assignment = self.trace.task_assignment(self.graph.n_tasks)
            tasks_lost = tasks_replayed = 0
        else:
            assignment, tasks_lost, tasks_replayed = self._tolerant_assignment()

        starts = np.zeros(self.graph.n_tasks)
        durations = np.zeros(self.graph.n_tasks)
        for rec in self.trace.tasks:
            starts[rec.tid] = rec.start
            durations[rec.tid] = rec.end - rec.start

        counters = dict(self.counters)
        if self.injector is not None:
            counters.update(self.injector.stats)
            counters["tasks_lost"] = float(tasks_lost)
            counters["tasks_replayed"] = float(tasks_replayed)
        n_tasks = self.graph.n_tasks
        completion = 1.0 if n_tasks == 0 else (n_tasks - tasks_lost) / n_tasks

        stats = self.network.stats
        return RunResult(
            model=model_name,
            n_ranks=self.n_ranks,
            n_tasks=self.graph.n_tasks,
            makespan=makespan,
            breakdown=self.trace.breakdown(makespan),
            assignment=assignment,
            task_starts=starts,
            task_durations=durations,
            finish_times=self._finish_times.copy(),
            counters=counters,
            network={
                "gets": float(stats.gets),
                "puts": float(stats.puts),
                "accumulates": float(stats.accumulates),
                "fetch_adds": float(stats.fetch_adds),
                "messages": float(stats.messages),
                "bytes_moved": float(stats.bytes_moved),
            },
            total_flops=self.graph.total_flops,
            nominal_flops_per_second=self.machine.flops_per_second,
            failed_ranks=crashed,
            completion_rate=float(completion),
            intervals=self.trace.intervals,
            sim_events=self.engine.events_dispatched,
            sim_ready_events=self.engine.ready_dispatched,
            trace_records=self.trace.records,
            sim_bucket_events=self.engine.bucket_dispatched,
            batched_costs=self.batched_costs,
            timeout_allocs=self.engine.timeout_allocs,
            grant_resumes=self.engine.grant_resumes,
            fused_ops=self.network.stats.fused_ops,
        )


class ExecutionModel(ABC):
    """Base class: subclasses implement per-rank behaviour.

    A model instance is stateless across runs; all per-run state lives in
    the harness or in locals of :meth:`rank_process`.
    """

    name: str = "abstract"

    def run(
        self,
        graph: TaskGraph,
        machine: MachineSpec,
        seed: int = 0,
        trace_intervals: bool = False,
        faults: FaultPlan | None = None,
    ) -> RunResult:
        """Simulate this model on ``graph`` over ``machine``.

        ``faults`` injects a :class:`~repro.faults.FaultPlan`; an empty
        plan is inert (bit-for-bit identical to passing None).
        """
        harness = Harness(
            graph, machine, seed=seed, trace_intervals=trace_intervals, faults=faults
        )
        self.setup(harness)
        harness.spawn_ranks(self.rank_process)
        return harness.finish(self.name)

    def setup(self, harness: Harness) -> None:
        """Per-run initialization hook (queues, counters, schedules)."""

    @abstractmethod
    def rank_process(self, harness: Harness, ctx: RankContext):
        """Generator implementing one rank's behaviour."""
