"""Distributed work stealing over one-sided operations (TASCEL-style).

Each rank owns a deque of task ids, initially filled by a static
distribution. Owners pop from the head; thieves steal from the tail of a
randomly chosen victim. Queues are protected by per-rank locks; a steal
costs the thief a lock CAS round-trip, a metadata read, a descriptor
transfer, and an unlock write — all one-sided, so the **victim spends no
CPU serving steals** (the defining property of the RMA execution model the
paper studies). Termination uses the token ring of
:mod:`repro.exec_models.termination`.

Modeled cost anatomy of one successful steal (commodity network):

    lock CAS     ~ RTT + NIC        (~3.6 us)
    metadata     ~ RTT + NIC        (~3.6 us)
    k descriptors~ RTT + k*16 B     (~3.6 us)
    unlock       ~ RTT + NIC        (~3.6 us)

i.e. ~15 us per steal — negligible against millisecond tasks, ruinous
against 10 us tasks: exactly the granularity trade-off of experiment E5.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exec_models.base import ExecutionModel, Harness
from repro.exec_models.static_ import block_assignment, cyclic_assignment
from repro.exec_models.termination import TERMINATE_TAG, TOKEN_TAG, TokenRing
from repro.runtime.comm import RankContext
from repro.simulate.engine import Resource
from repro.util import ConfigurationError, check_positive, spawn_rng

#: Bytes of the lock word / queue metadata moved by protocol operations.
_LOCK_BYTES = 8
_META_BYTES = 16


class WorkStealing(ExecutionModel):
    """Random work stealing with lock-based remote deques.

    Args:
        initial: initial task distribution — ``"block"``, ``"cyclic"``, or
            an explicit ``(n_tasks,)`` assignment array.
        steal: amount policy — ``"half"`` (ceil of half the victim's
            queue, TASCEL default) or ``"one"``.
        victim: victim selection — ``"random"`` or ``"ring"`` (cyclic scan
            starting after self).
        min_backoff / max_backoff: failed-steal exponential backoff bounds
            (simulated seconds).
    """

    def __init__(
        self,
        initial: str | np.ndarray = "block",
        steal: str = "half",
        victim: str = "random",
        min_backoff: float = 1.0e-6,
        max_backoff: float = 8.0e-6,
        park_after: int = 8,
    ) -> None:
        if isinstance(initial, str) and initial not in ("block", "cyclic"):
            raise ConfigurationError(f"initial must be 'block', 'cyclic', or an array")
        if steal not in ("half", "one", "half_cost"):
            raise ConfigurationError(
                f"steal must be 'half', 'one', or 'half_cost', got {steal!r}"
            )
        if victim not in ("random", "ring", "hierarchical"):
            raise ConfigurationError(
                f"victim must be 'random', 'ring', or 'hierarchical', got {victim!r}"
            )
        check_positive("min_backoff", min_backoff)
        check_positive("max_backoff", max_backoff)
        if max_backoff < min_backoff:
            raise ConfigurationError("max_backoff must be >= min_backoff")
        check_positive("park_after", park_after)
        self.park_after = int(park_after)
        self.initial = initial
        self.steal = steal
        self.victim = victim
        self.min_backoff = float(min_backoff)
        self.max_backoff = float(max_backoff)
        suffix = "" if steal == "half" and victim == "random" else f"({steal},{victim})"
        self.name = f"work_stealing{suffix}"

    # ------------------------------------------------------------------
    def setup(self, harness: Harness) -> None:
        n_tasks = harness.graph.n_tasks
        n_ranks = harness.n_ranks
        if isinstance(self.initial, np.ndarray):
            assignment = np.asarray(self.initial, dtype=np.int64)
            if assignment.shape != (n_tasks,):
                raise ConfigurationError(
                    f"initial assignment must be ({n_tasks},), got {assignment.shape}"
                )
        elif self.initial == "block":
            assignment = block_assignment(n_tasks, n_ranks)
        else:
            assignment = cyclic_assignment(n_tasks, n_ranks)
        queues: list[deque[int]] = [deque() for _ in range(n_ranks)]
        for tid, rank in enumerate(assignment):
            queues[rank].append(tid)
        harness.model_state["queues"] = queues
        harness.model_state["locks"] = [Resource(1) for _ in range(n_ranks)]
        harness.model_state["ring"] = TokenRing(n_ranks)
        for key in (
            "steal_attempts",
            "steal_successes",
            "tasks_stolen",
            "failed_steals",
            "token_hops",
        ):
            harness.counters[key] = 0.0

    # ------------------------------------------------------------------
    def _pop_local(self, harness: Harness, ctx: RankContext):
        """Pop one task id from the rank's own queue head (or None)."""
        locks: list[Resource] = harness.model_state["locks"]
        queue: deque[int] = harness.model_state["queues"][ctx.rank]
        yield locks[ctx.rank].acquire()
        try:
            yield from ctx.overhead_delay(Harness.LOCAL_QUEUE_OP)
            tid = queue.popleft() if queue else None
        finally:
            locks[ctx.rank].release()
        return tid

    def _choose_victim(self, ctx: RankContext, rng: np.random.Generator, scan: int) -> int:
        n = ctx.machine.n_ranks
        if self.victim == "ring":
            return (ctx.rank + 1 + scan % (n - 1)) % n
        if self.victim == "hierarchical":
            # Two same-node attempts (cheap shared-memory steals), then
            # one remote attempt, repeating — locality-first stealing.
            peers = [r for r in ctx.machine.node_peers(ctx.rank) if r != ctx.rank]
            if peers and scan % 3 < 2:
                return int(peers[rng.integers(0, len(peers))])
        victim = int(rng.integers(0, n - 1))
        return victim if victim < ctx.rank else victim + 1

    def _attempt_steal(self, harness: Harness, ctx: RankContext, victim: int):
        """One steal attempt; returns number of tasks stolen (generator)."""
        locks: list[Resource] = harness.model_state["locks"]
        queues: list[deque[int]] = harness.model_state["queues"]
        ring: TokenRing = harness.model_state["ring"]
        harness.counters["steal_attempts"] += 1.0

        # Remote lock acquisition: one CAS round-trip, then wait if held.
        yield from ctx.protocol_get(victim, _LOCK_BYTES)
        yield locks[victim].acquire()
        try:
            # Queue metadata read.
            yield from ctx.protocol_get(victim, _META_BYTES)
            available = len(queues[victim])
            if available == 0:
                harness.counters["failed_steals"] += 1.0
                return 0
            if self.steal == "half":
                k = (available + 1) // 2
            elif self.steal == "one":
                k = 1
            else:
                # half_cost: take tail tasks until half the victim's
                # remaining modeled *cost* moves (cost-aware splitting; the
                # metadata read above covers the extra bookkeeping word).
                costs = harness.graph.costs
                total = sum(costs[tid] for tid in queues[victim])
                taken = 0.0
                k = 0
                for tid in reversed(queues[victim]):
                    if k > 0 and taken >= total / 2.0:
                        break
                    taken += costs[tid]
                    k += 1
                k = min(k, available)
            # Descriptor transfer; tasks move atomically at completion.
            yield from ctx.protocol_get(victim, k * Harness.TASK_DESCRIPTOR_BYTES)
            stolen = [queues[victim].pop() for _ in range(k)]
        finally:
            locks[victim].release()
        # Commit the transfer before the unlock write: the descriptors are
        # already local after the get above, and a thief or victim dying
        # under the unlock must not leave tasks outside every queue
        # (crash recovery only scans queues and in-flight lists).
        stolen.reverse()
        queues[ctx.rank].extend(stolen)
        ring.mark_dirty(ctx.rank)
        harness.counters["steal_successes"] += 1.0
        harness.counters["tasks_stolen"] += float(k)
        # Unlock write (after release so a waiting thief proceeds now).
        yield from ctx.protocol_put(victim, _LOCK_BYTES)
        return k

    # ------------------------------------------------------------------
    def rank_process(self, harness: Harness, ctx: RankContext):
        queues: list[deque[int]] = harness.model_state["queues"]
        ring: TokenRing = harness.model_state["ring"]
        queue = queues[ctx.rank]
        n_ranks = harness.n_ranks
        rng = spawn_rng(harness.rank_seed(ctx.rank, "steal"))
        backoff = self.min_backoff
        scan = 0
        consecutive_failures = 0

        while True:
            # Drain the local queue.
            while queue:
                tid = yield from self._pop_local(harness, ctx)
                if tid is None:
                    break
                yield from harness.execute_task(ctx, harness.graph.tasks[tid])
                backoff = self.min_backoff
                consecutive_failures = 0

            if n_ranks == 1:
                return

            # Idle: handle protocol messages.
            message = ctx.try_recv()
            if message is None and consecutive_failures >= self.park_after:
                # Park: the local neighbourhood looks drained, so wait for
                # the circulating token (or terminate) instead of burning
                # NIC time on hopeless steals. The wait is untraced: it
                # shows up as idle, which is what it is. One steal attempt
                # follows every token wake-up, so residual work elsewhere
                # is still reachable.
                message = yield from ctx.recv(traced=False)
            if message is not None:
                if message.tag == TERMINATE_TAG:
                    return
                if message.tag == TOKEN_TAG:
                    declared = yield from ring.handle_token(ctx, message.payload)
                    harness.counters["token_hops"] = float(ring.hops)
                    if declared:
                        return
            yield from ring.maybe_launch(ctx)
            harness.counters["token_hops"] = float(ring.hops)

            # Steal.
            victim = self._choose_victim(ctx, rng, scan)
            scan += 1
            got = yield from self._attempt_steal(harness, ctx, victim)
            if got:
                backoff = self.min_backoff
                consecutive_failures = 0
            else:
                consecutive_failures += 1
                yield from ctx.sleep(backoff)
                backoff = min(backoff * 2.0, self.max_backoff)
