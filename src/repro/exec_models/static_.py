"""Static execution models: the schedule is fixed before execution.

These are the paper's "traditional" baselines. :class:`StaticBlock` hands
each rank a contiguous range of task ids — cheap, cache-friendly, and badly
imbalanced under screening-induced cost skew (nearby tasks have correlated
costs). :class:`StaticCyclic` deals tasks round-robin, decorrelating costs
at the price of locality. :class:`StaticAssignment` executes an arbitrary
precomputed task->rank map and is the executor half of the
inspector-executor model.
"""

from __future__ import annotations

import numpy as np

from repro.exec_models.base import ExecutionModel, Harness
from repro.runtime.comm import RankContext
from repro.util import ConfigurationError, SchedulingError


class StaticAssignment(ExecutionModel):
    """Execute a precomputed assignment; each rank runs its tasks in order.

    Args:
        assignment: ``(n_tasks,)`` rank per task. Validated against the
            harness at setup.
        name: model name recorded in results.
    """

    def __init__(self, assignment: np.ndarray, name: str = "static_assignment") -> None:
        self.assignment = np.asarray(assignment, dtype=np.int64)
        if self.assignment.ndim != 1:
            raise ConfigurationError("assignment must be a 1-D task->rank array")
        self.name = name

    def setup(self, harness: Harness) -> None:
        if self.assignment.size != harness.graph.n_tasks:
            raise SchedulingError(
                f"assignment covers {self.assignment.size} tasks, "
                f"graph has {harness.graph.n_tasks}"
            )
        if self.assignment.size and (
            self.assignment.min() < 0 or self.assignment.max() >= harness.n_ranks
        ):
            raise SchedulingError(
                f"assignment references ranks outside [0, {harness.n_ranks})"
            )
        lists: list[list[int]] = [[] for _ in range(harness.n_ranks)]
        for tid, rank in enumerate(self.assignment):
            lists[rank].append(tid)
        harness.model_state["task_lists"] = lists

    def rank_process(self, harness: Harness, ctx: RankContext):
        # The whole schedule is known up front: one burst per rank, so
        # every compute cost is evaluated in a single vectorized call.
        yield from harness.execute_tasks(
            ctx, harness.model_state["task_lists"][ctx.rank]
        )


def block_assignment(n_tasks: int, n_ranks: int) -> np.ndarray:
    """Contiguous equal-count ranges (remainder spread over leading ranks)."""
    if n_ranks <= 0:
        raise ConfigurationError(f"n_ranks must be positive, got {n_ranks}")
    return np.minimum(
        (np.arange(n_tasks, dtype=np.int64) * n_ranks) // max(n_tasks, 1),
        n_ranks - 1,
    )


def cyclic_assignment(n_tasks: int, n_ranks: int) -> np.ndarray:
    """Round-robin by task id."""
    if n_ranks <= 0:
        raise ConfigurationError(f"n_ranks must be positive, got {n_ranks}")
    return np.arange(n_tasks, dtype=np.int64) % n_ranks


class StaticBlock(StaticAssignment):
    """Contiguous block partition of the task-id range."""

    def __init__(self) -> None:
        # Assignment depends on the harness; bound at setup.
        super().__init__(np.zeros(0, dtype=np.int64), name="static_block")

    def setup(self, harness: Harness) -> None:
        self.assignment = block_assignment(harness.graph.n_tasks, harness.n_ranks)
        super().setup(harness)


class StaticCyclic(StaticAssignment):
    """Round-robin partition of the task-id range."""

    def __init__(self) -> None:
        super().__init__(np.zeros(0, dtype=np.int64), name="static_cyclic")

    def setup(self, harness: Harness) -> None:
        self.assignment = cyclic_assignment(harness.graph.n_tasks, harness.n_ranks)
        super().setup(harness)
