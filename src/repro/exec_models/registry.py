"""Name-based execution-model factory.

The study driver and the benchmarks refer to models by short names; this
registry maps them to configured instances, so an experiment sweep is just
a tuple of strings. Each registry entry is a (class, default options)
pair, and :func:`make_model` accepts extra keyword options on top of the
defaults — spelled in the *canonical* vocabulary shared with
:class:`~repro.exec_models.scf_simulation.ScfSimulation` via
:func:`normalize_model_options`, so the one-shot and whole-SCF surfaces
take the same option names.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.balance.greedy import locality_greedy, lpt_balancer
from repro.balance.partition import hypergraph_balancer
from repro.balance.semi_matching import semi_matching_balancer
from repro.exec_models.base import ExecutionModel
from repro.exec_models.counter_dynamic import CounterDynamic
from repro.exec_models.ft import FaultTolerantStatic, FaultTolerantWorkStealing
from repro.exec_models.node_counter import CounterPerNode
from repro.exec_models.inspector import InspectorExecutor
from repro.exec_models.persistence import PersistenceModel
from repro.exec_models.static_ import StaticBlock, StaticCyclic
from repro.exec_models.work_stealing import WorkStealing
from repro.util import ConfigurationError

#: Accepted alternative spellings -> canonical constructor keyword. One
#: normalizer serves every option-taking surface (``make_model``,
#: ``ScfSimulation``), so callers never have to remember which layer
#: calls the knob what.
OPTION_ALIASES: dict[str, str] = {
    "chunk": "chunk",
    "chunk_size": "chunk",
    "order": "order",
    "claim_order": "order",
    "home_rank": "home_rank",
    "steal": "steal",
    "steal_policy": "steal",
    "steal_amount": "steal",
    "victim": "victim",
    "victim_policy": "victim",
    "initial": "initial",
    "initial_distribution": "initial",
    "min_backoff": "min_backoff",
    "max_backoff": "max_backoff",
    "park_after": "park_after",
    "partition": "partition",
    "partition_policy": "partition",
    "balancer": "balancer",
    "name": "name",
    "retry": "retry",
    "token_timeout": "token_timeout",
    "n_iterations": "n_iterations",
    "capacity_aware": "capacity_aware",
}


def normalize_model_options(options: dict[str, Any]) -> dict[str, Any]:
    """Map option spellings to canonical constructor keywords.

    Rejects unknown spellings and two spellings of the same canonical
    option in one call (``steal=`` and ``steal_policy=`` together).
    """
    out: dict[str, Any] = {}
    for key, value in options.items():
        canonical = OPTION_ALIASES.get(key)
        if canonical is None:
            known = ", ".join(sorted(OPTION_ALIASES))
            raise ConfigurationError(
                f"unknown model option {key!r}; known spellings: {known}"
            )
        if canonical in out:
            raise ConfigurationError(
                f"option {canonical!r} given more than once (alias collision on {key!r})"
            )
        out[canonical] = value
    return out


_SPECS: dict[str, tuple[Callable[..., ExecutionModel], dict[str, Any]]] = {
    "static_block": (StaticBlock, {}),
    "static_cyclic": (StaticCyclic, {}),
    "counter_dynamic": (CounterDynamic, {}),
    "counter_dynamic_chunk4": (CounterDynamic, {"chunk": 4}),
    "counter_dynamic_chunk16": (CounterDynamic, {"chunk": 16}),
    "counter_dynamic_guided": (CounterDynamic, {"chunk": 1, "order": "desc_cost"}),
    "counter_per_node": (CounterPerNode, {}),
    "counter_per_node_cost": (CounterPerNode, {"partition": "cost"}),
    "ft_work_stealing": (FaultTolerantWorkStealing, {}),
    "ft_static_block": (FaultTolerantStatic, {}),
    "work_stealing": (WorkStealing, {}),
    "work_stealing_hier": (WorkStealing, {"victim": "hierarchical"}),
    "work_stealing_one": (WorkStealing, {"steal": "one"}),
    "work_stealing_half_cost": (WorkStealing, {"steal": "half_cost"}),
    "work_stealing_ring": (WorkStealing, {"victim": "ring"}),
    "work_stealing_cyclic": (WorkStealing, {"initial": "cyclic"}),
    "inspector_lpt": (InspectorExecutor, {"balancer": lpt_balancer, "name": "inspector(lpt)"}),
    "inspector_locality": (
        InspectorExecutor,
        {"balancer": locality_greedy, "name": "inspector(locality_greedy)"},
    ),
    "inspector_semi_matching": (
        InspectorExecutor,
        {"balancer": semi_matching_balancer, "name": "inspector(semi_matching)"},
    ),
    "inspector_hypergraph": (
        InspectorExecutor,
        {"balancer": hypergraph_balancer, "name": "inspector(hypergraph)"},
    ),
    "persistence": (PersistenceModel, {}),
}

MODEL_NAMES: tuple[str, ...] = tuple(sorted(_SPECS))


def model_defaults(name: str) -> dict[str, Any]:
    """The registry's configured options for ``name`` (a copy)."""
    try:
        return dict(_SPECS[name][1])
    except KeyError:
        raise ConfigurationError(
            f"unknown execution model {name!r}; known: {', '.join(MODEL_NAMES)}"
        ) from None


def make_model(name: str, **options: Any) -> ExecutionModel:
    """Instantiate an execution model by registry name.

    Extra keyword options (in any spelling
    :func:`normalize_model_options` accepts) override the registry
    defaults, e.g. ``make_model("work_stealing", steal_policy="one")``.
    """
    try:
        cls, defaults = _SPECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown execution model {name!r}; known: {', '.join(MODEL_NAMES)}"
        ) from None
    merged = {**defaults, **normalize_model_options(options)}
    try:
        return cls(**merged)
    except TypeError as exc:
        raise ConfigurationError(
            f"model {name!r} does not accept options "
            f"{sorted(set(merged) - set(defaults))}: {exc}"
        ) from None
