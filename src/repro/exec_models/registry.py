"""Name-based execution-model factory.

The study driver and the benchmarks refer to models by short names; this
registry maps them to configured instances, so an experiment sweep is just
a tuple of strings.
"""

from __future__ import annotations

from typing import Callable

from repro.balance.greedy import locality_greedy, lpt_balancer
from repro.balance.partition import hypergraph_balancer
from repro.balance.semi_matching import semi_matching_balancer
from repro.exec_models.base import ExecutionModel
from repro.exec_models.counter_dynamic import CounterDynamic
from repro.exec_models.ft import FaultTolerantStatic, FaultTolerantWorkStealing
from repro.exec_models.node_counter import CounterPerNode
from repro.exec_models.inspector import InspectorExecutor
from repro.exec_models.persistence import PersistenceModel
from repro.exec_models.static_ import StaticBlock, StaticCyclic
from repro.exec_models.work_stealing import WorkStealing
from repro.util import ConfigurationError

_FACTORIES: dict[str, Callable[[], ExecutionModel]] = {
    "static_block": StaticBlock,
    "static_cyclic": StaticCyclic,
    "counter_dynamic": CounterDynamic,
    "counter_dynamic_chunk4": lambda: CounterDynamic(chunk=4),
    "counter_dynamic_chunk16": lambda: CounterDynamic(chunk=16),
    "counter_dynamic_guided": lambda: CounterDynamic(chunk=1, order="desc_cost"),
    "counter_per_node": CounterPerNode,
    "counter_per_node_cost": lambda: CounterPerNode(partition="cost"),
    "ft_work_stealing": FaultTolerantWorkStealing,
    "ft_static_block": FaultTolerantStatic,
    "work_stealing": WorkStealing,
    "work_stealing_hier": lambda: WorkStealing(victim="hierarchical"),
    "work_stealing_one": lambda: WorkStealing(steal="one"),
    "work_stealing_half_cost": lambda: WorkStealing(steal="half_cost"),
    "work_stealing_ring": lambda: WorkStealing(victim="ring"),
    "work_stealing_cyclic": lambda: WorkStealing(initial="cyclic"),
    "inspector_lpt": lambda: InspectorExecutor(lpt_balancer, name="inspector(lpt)"),
    "inspector_locality": lambda: InspectorExecutor(
        locality_greedy, name="inspector(locality_greedy)"
    ),
    "inspector_semi_matching": lambda: InspectorExecutor(
        semi_matching_balancer, name="inspector(semi_matching)"
    ),
    "inspector_hypergraph": lambda: InspectorExecutor(
        hypergraph_balancer, name="inspector(hypergraph)"
    ),
    "persistence": PersistenceModel,
}

MODEL_NAMES: tuple[str, ...] = tuple(sorted(_FACTORIES))


def make_model(name: str) -> ExecutionModel:
    """Instantiate an execution model by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown execution model {name!r}; known: {', '.join(MODEL_NAMES)}"
        ) from None
    return factory()
