"""Centralized dynamic scheduling via a global shared counter (NXTVAL).

Every rank loops: fetch-and-add the shared counter by ``chunk``, execute
the claimed range of task ids, repeat until the counter passes the task
count. Self-scheduling this way adapts to any cost skew *if* the counter
keeps up — its home NIC serializes all claims, so throughput saturates at
``1 / atomic_service`` claims per second and queueing delay explodes past
that (experiment E6). Larger chunks amortize the bottleneck but re-create
tail imbalance; the chunk parameter is the paper's "balance between
available work units and runtime overheads" knob in its purest form.
"""

from __future__ import annotations

import numpy as np

from repro.exec_models.base import ExecutionModel, Harness
from repro.runtime.comm import RankContext
from repro.runtime.counter import GlobalCounter
from repro.util import ConfigurationError, check_positive


class CounterDynamic(ExecutionModel):
    """Self-scheduling over a shared global counter.

    Args:
        chunk: task ids claimed per fetch-and-add.
        order: ``"native"`` claims tasks in graph order; ``"desc_cost"``
            claims them in decreasing modeled cost (the classic guided
            trick — big tasks first shrinks the tail).
        home_rank: rank hosting the counter.
    """

    def __init__(self, chunk: int = 1, order: str = "native", home_rank: int = 0) -> None:
        check_positive("chunk", chunk)
        if order not in ("native", "desc_cost"):
            raise ConfigurationError(f"order must be 'native' or 'desc_cost', got {order!r}")
        self.chunk = int(chunk)
        self.order = order
        self.home_rank = int(home_rank)
        self.name = f"counter_dynamic(chunk={chunk})" if chunk != 1 else "counter_dynamic"

    def setup(self, harness: Harness) -> None:
        if not 0 <= self.home_rank < harness.n_ranks:
            raise ConfigurationError(
                f"home_rank {self.home_rank} out of range [0, {harness.n_ranks})"
            )
        if self.order == "desc_cost":
            sequence = np.argsort(-harness.graph.costs, kind="stable")
        else:
            sequence = np.arange(harness.graph.n_tasks, dtype=np.int64)
        harness.model_state["sequence"] = sequence
        harness.model_state["counter"] = GlobalCounter(self.home_rank)
        harness.counters["claims"] = 0.0

    #: Minimum claimed-chunk length routed through the vectorized burst
    #: path; short chunks (the E6 contention regime runs chunk=1) stay on
    #: the per-task path, which is cheaper than building a batch.
    BURST_THRESHOLD = 4

    def rank_process(self, harness: Harness, ctx: RankContext):
        sequence: np.ndarray = harness.model_state["sequence"]
        counter: GlobalCounter = harness.model_state["counter"]
        n_tasks = harness.graph.n_tasks
        while True:
            first = yield from counter.next(ctx, self.chunk)
            harness.counters["claims"] += 1.0
            if first >= n_tasks:
                break
            last = min(first + self.chunk, n_tasks)
            if last - first >= self.BURST_THRESHOLD:
                yield from harness.execute_tasks(
                    ctx, sequence[first:last].tolist()
                )
            else:
                for slot in range(first, last):
                    tid = int(sequence[slot])
                    yield from harness.execute_task(ctx, harness.graph.tasks[tid])
