"""Execution models: the paper's primary subject of study.

An execution model decides *which rank runs which task, when* — everything
else (the kernel, the data layout, the machine) is held fixed. The families
implemented here mirror the paper's sweep:

- :mod:`repro.exec_models.static_` -- static block / cyclic / cost-aware
  schedules fixed before execution.
- :mod:`repro.exec_models.inspector` -- inspector-executor: run a load
  balancer (semi-matching, hypergraph, greedy, ...) over the task graph's
  cost model, then execute the resulting static schedule.
- :mod:`repro.exec_models.counter_dynamic` -- centralized dynamic
  scheduling via an NXTVAL-style shared counter, with chunked claiming.
- :mod:`repro.exec_models.work_stealing` -- distributed work stealing with
  lock-based remote deques and token-ring termination detection.
- :mod:`repro.exec_models.persistence` -- persistence-based rebalancing
  across SCF iterations from measured task durations.

All models run on the simulated machine through the shared
:class:`~repro.exec_models.base.Harness`, return a uniform
:class:`~repro.exec_models.base.RunResult`, and are validated against the
exactly-once execution invariant.
"""

from repro.exec_models.base import ExecutionModel, Harness, RunResult
from repro.exec_models.static_ import StaticBlock, StaticCyclic, StaticAssignment
from repro.exec_models.counter_dynamic import CounterDynamic
from repro.exec_models.node_counter import CounterPerNode
from repro.exec_models.work_stealing import WorkStealing
from repro.exec_models.inspector import InspectorExecutor
from repro.exec_models.persistence import PersistenceModel, run_persistence
from repro.exec_models.scf_simulation import ScfSimulation, ScfSimResult
from repro.exec_models.registry import make_model, MODEL_NAMES

__all__ = [
    "ExecutionModel",
    "Harness",
    "RunResult",
    "StaticBlock",
    "StaticCyclic",
    "StaticAssignment",
    "CounterDynamic",
    "CounterPerNode",
    "WorkStealing",
    "InspectorExecutor",
    "PersistenceModel",
    "run_persistence",
    "ScfSimulation",
    "ScfSimResult",
    "make_model",
    "MODEL_NAMES",
]
