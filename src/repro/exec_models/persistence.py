"""Persistence-based load balancing across iterations.

SCF is iterative and its task costs barely change between iterations, so
measured per-task durations from iteration *i* are an excellent cost model
for iteration *i*+1 — this is "persistence-based" balancing. Iteration 1
runs a cheap static schedule (paying its imbalance once); every later
iteration runs a capacity-aware LPT schedule built from the previous
iteration's *measured* durations and *measured* per-rank throughputs, so
the scheme adapts to static performance heterogeneity (experiment E7/E8)
without any runtime scheduling overhead at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.balance.greedy import capacity_lpt
from repro.chemistry.tasks import TaskGraph
from repro.exec_models.base import ExecutionModel, Harness, RunResult
from repro.exec_models.static_ import StaticAssignment, block_assignment, cyclic_assignment
from repro.runtime.comm import RankContext
from repro.simulate.machine import MachineSpec
from repro.util import ConfigurationError, check_positive, derive_seed


def _measured_capacities(result: RunResult, graph: TaskGraph) -> np.ndarray:
    """Per-rank throughput estimate: modeled flops done / compute seconds.

    Ranks that ran no tasks get the mean capacity (no evidence either way).
    """
    flops_done = np.bincount(
        result.assignment, weights=graph.costs, minlength=result.n_ranks
    )
    seconds = np.bincount(
        result.assignment, weights=result.task_durations, minlength=result.n_ranks
    )
    capacities = np.ones(result.n_ranks)
    ran = seconds > 0
    capacities[ran] = flops_done[ran] / seconds[ran]
    if ran.any():
        capacities[~ran] = capacities[ran].mean()
    return capacities


def rebalance_from_measurements(
    result: RunResult, graph: TaskGraph, capacity_aware: bool = True
) -> np.ndarray:
    """Next-iteration assignment from one iteration's measurements."""
    durations = result.task_durations
    if capacity_aware:
        capacities = _measured_capacities(result, graph)
        # Predicted cost of a task is speed-independent (flops); measured
        # duration folds in the executing rank's speed, so convert back to
        # a rank-neutral cost before capacity-aware placement.
        neutral = durations * capacities[result.assignment]
        return capacity_lpt(neutral, capacities)
    return capacity_lpt(durations, np.ones(result.n_ranks))


@dataclass
class PersistenceHistory:
    """All iterations of a persistence-balanced run."""

    results: list[RunResult]

    @property
    def makespans(self) -> np.ndarray:
        return np.array([r.makespan for r in self.results])

    @property
    def first_iteration(self) -> RunResult:
        return self.results[0]

    @property
    def steady_state(self) -> RunResult:
        return self.results[-1]

    @property
    def improvement(self) -> float:
        """Makespan ratio iteration-1 / steady-state (>1 means it helped)."""
        last = self.results[-1].makespan
        return self.results[0].makespan / last if last > 0 else float("inf")


def run_persistence(
    graph: TaskGraph,
    machine: MachineSpec,
    n_iterations: int = 5,
    seed: int = 0,
    initial: str = "block",
    capacity_aware: bool = True,
) -> PersistenceHistory:
    """Simulate ``n_iterations`` Fock builds with persistence rebalancing."""
    check_positive("n_iterations", n_iterations)
    if initial not in ("block", "cyclic"):
        raise ConfigurationError(f"initial must be 'block' or 'cyclic', got {initial!r}")
    make_initial = block_assignment if initial == "block" else cyclic_assignment
    assignment = make_initial(graph.n_tasks, machine.n_ranks)
    results: list[RunResult] = []
    for iteration in range(n_iterations):
        model = StaticAssignment(assignment, name=f"persistence[iter={iteration}]")
        result = model.run(graph, machine, seed=derive_seed(seed, "persist", iteration))
        results.append(result)
        assignment = rebalance_from_measurements(result, graph, capacity_aware)
    return PersistenceHistory(results)


class PersistenceModel(ExecutionModel):
    """Registry-friendly wrapper: runs the iteration loop, reports steady state.

    The returned :class:`RunResult` is the final iteration's, with
    ``counters`` extended by first-iteration makespan and the improvement
    ratio so single-result reports still show the adaptation.
    """

    def __init__(
        self, n_iterations: int = 4, initial: str = "block", capacity_aware: bool = True
    ) -> None:
        check_positive("n_iterations", n_iterations)
        self.n_iterations = int(n_iterations)
        self.initial = initial
        self.capacity_aware = capacity_aware
        self.name = f"persistence(iters={n_iterations})"

    def run(
        self,
        graph: TaskGraph,
        machine: MachineSpec,
        seed: int = 0,
        trace_intervals: bool = False,
        faults=None,
    ) -> RunResult:
        if faults is not None and not faults.empty:
            raise ConfigurationError(
                "the persistence model does not support fault injection; "
                "use ft_work_stealing or ft_static_block for fault studies"
            )
        history = run_persistence(
            graph,
            machine,
            n_iterations=self.n_iterations,
            seed=seed,
            initial=self.initial,
            capacity_aware=self.capacity_aware,
        )
        final = history.steady_state
        final.model = self.name
        final.counters["first_iteration_makespan"] = history.first_iteration.makespan
        final.counters["improvement"] = history.improvement
        return final

    def rank_process(self, harness: Harness, ctx: RankContext):
        raise NotImplementedError(
            "PersistenceModel orchestrates whole runs; it has no single rank process"
        )
