"""Per-node counter scheduling: hierarchical self-scheduling without
global balancing.

The standard fix for shared-counter contention (E6) is one counter per
node: each node's ranks self-schedule over a statically pre-partitioned
slice of the task range, claiming from a counter homed on the node's
leader rank. Contention drops by a factor of the node count — but the
partition across nodes is *static*, so inter-node imbalance returns.

This is the cleanest demonstration of the paper's central observation
that "execution model design choices and assumptions can limit critical
optimizations such as global, dynamic load balancing": the model is
locally dynamic yet globally static, and under cost skew it loses to both
the contended global counter (at low P) and to work stealing (always) —
benchmark E12.
"""

from __future__ import annotations

import numpy as np

from repro.exec_models.base import ExecutionModel, Harness
from repro.runtime.comm import RankContext
from repro.runtime.counter import GlobalCounter
from repro.util import ConfigurationError, check_positive


class CounterPerNode(ExecutionModel):
    """Node-local dynamic self-scheduling over a static node partition.

    Args:
        chunk: task ids claimed per fetch-and-add on the node counter.
        partition: how the task range is split across nodes —
            ``"block"`` (contiguous, cost-oblivious: the classic choice)
            or ``"cost"`` (contiguous but cost-balanced split points,
            an inspector-lite variant).
    """

    def __init__(self, chunk: int = 1, partition: str = "block") -> None:
        check_positive("chunk", chunk)
        if partition not in ("block", "cost"):
            raise ConfigurationError(
                f"partition must be 'block' or 'cost', got {partition!r}"
            )
        self.chunk = int(chunk)
        self.partition = partition
        self.name = f"counter_per_node({partition})"

    def setup(self, harness: Harness) -> None:
        machine = harness.machine
        if machine.cores_per_node is None:
            raise ConfigurationError(
                "counter_per_node needs a node topology; build the machine "
                "with hierarchical_cluster() or set cores_per_node"
            )
        n_nodes = machine.n_nodes
        n_tasks = harness.graph.n_tasks
        if self.partition == "block":
            bounds = np.linspace(0, n_tasks, n_nodes + 1).astype(np.int64)
        else:
            # Contiguous split with near-equal cumulative cost per node.
            cum = np.concatenate([[0.0], np.cumsum(harness.graph.costs)])
            targets = np.linspace(0.0, cum[-1], n_nodes + 1)
            bounds = np.searchsorted(cum, targets).astype(np.int64)
            bounds[0], bounds[-1] = 0, n_tasks
        counters = []
        for node in range(n_nodes):
            leader = node * machine.cores_per_node
            counter = GlobalCounter(leader)
            counter.cell.value = int(bounds[node])
            counters.append(counter)
        harness.model_state["bounds"] = bounds
        harness.model_state["counters"] = counters
        harness.counters["claims"] = 0.0

    def rank_process(self, harness: Harness, ctx: RankContext):
        machine = harness.machine
        node = machine.node_of(ctx.rank)
        counter: GlobalCounter = harness.model_state["counters"][node]
        hi = int(harness.model_state["bounds"][node + 1])
        while True:
            first = yield from counter.next(ctx, self.chunk)
            harness.counters["claims"] += 1.0
            if first >= hi:
                return
            last = min(first + self.chunk, hi)
            if last - first >= 4:
                yield from harness.execute_tasks(ctx, range(first, last))
            else:
                for tid in range(first, last):
                    yield from harness.execute_task(ctx, harness.graph.tasks[tid])
