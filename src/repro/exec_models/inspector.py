"""Inspector-executor execution model.

The *inspector* runs a load balancer over the task graph's analytic cost
model (and the data distribution, for locality-aware balancers) to produce
a static assignment; the *executor* then runs it like any static schedule.
The balancer's real host-CPU cost is measured and reported in
``counters["balancer_seconds"]`` — that column is the substance of the
paper's "hypergraph partitioning is computationally expensive" comparison
(experiments E3/E4).
"""

from __future__ import annotations

import time
from typing import Callable, Protocol

import numpy as np

from repro.chemistry.tasks import TaskGraph
from repro.exec_models.base import Harness
from repro.exec_models.static_ import StaticAssignment
from repro.runtime.garrays import BlockDistribution


class Balancer(Protocol):
    """Signature every load balancer implements."""

    def __call__(
        self,
        graph: TaskGraph,
        n_ranks: int,
        distribution: BlockDistribution | None,
    ) -> np.ndarray: ...


class InspectorExecutor(StaticAssignment):
    """Run ``balancer`` at setup, then execute its static schedule.

    Args:
        balancer: callable with the :class:`Balancer` signature.
        name: model name recorded in results (e.g. ``"inspector(semi_matching)"``).
    """

    def __init__(self, balancer: Callable, name: str = "inspector") -> None:
        super().__init__(np.zeros(0, dtype=np.int64), name=name)
        self.balancer = balancer
        #: Host seconds of the last inspection (also in run counters).
        self.last_balancer_seconds: float = 0.0

    def setup(self, harness: Harness) -> None:
        start = time.perf_counter()
        self.assignment = np.asarray(
            self.balancer(harness.graph, harness.n_ranks, harness.density.distribution),
            dtype=np.int64,
        )
        self.last_balancer_seconds = time.perf_counter() - start
        harness.counters["balancer_seconds"] = self.last_balancer_seconds
        super().setup(harness)
