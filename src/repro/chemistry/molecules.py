"""Molecular geometries for the case-study workloads.

The paper's kernel operates on medium-sized molecular systems whose spatial
extent creates screening-induced sparsity (and hence task-cost skew). Three
generators cover the regimes used throughout the benchmarks:

- :func:`water_cluster` -- compact 3-D clusters (the classic SCF-benchmark
  input family at PNNL);
- :func:`linear_alkane` -- quasi-1-D chains, maximal screening sparsity;
- :func:`random_cluster` -- randomized dense blobs for property tests.

Coordinates are in Bohr (atomic units) throughout the library.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import ConfigurationError, check_positive, spawn_rng

#: Nuclear charges for the elements the built-in basis supports.
ATOMIC_NUMBERS: dict[str, int] = {"H": 1, "C": 6, "N": 7, "O": 8}

#: Angstrom -> Bohr conversion.
ANGSTROM = 1.8897259886


@dataclass(frozen=True)
class Molecule:
    """An immutable molecular geometry.

    Attributes:
        symbols: element symbol per atom, e.g. ``("O", "H", "H")``.
        coords: ``(n_atoms, 3)`` array of positions in Bohr.
        charge: total molecular charge (affects electron count).
    """

    symbols: tuple[str, ...]
    coords: np.ndarray
    charge: int = 0

    def __post_init__(self) -> None:
        coords = np.asarray(self.coords, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ConfigurationError(
                f"coords must have shape (n_atoms, 3), got {coords.shape}"
            )
        if len(self.symbols) != coords.shape[0]:
            raise ConfigurationError(
                f"{len(self.symbols)} symbols but {coords.shape[0]} coordinates"
            )
        unknown = sorted(set(self.symbols) - set(ATOMIC_NUMBERS))
        if unknown:
            raise ConfigurationError(f"unsupported elements: {unknown}")
        coords.setflags(write=False)
        object.__setattr__(self, "coords", coords)
        object.__setattr__(self, "symbols", tuple(self.symbols))

    @property
    def n_atoms(self) -> int:
        return len(self.symbols)

    @property
    def atomic_numbers(self) -> np.ndarray:
        """``(n_atoms,)`` integer array of nuclear charges."""
        return np.array([ATOMIC_NUMBERS[s] for s in self.symbols], dtype=np.int64)

    @property
    def n_electrons(self) -> int:
        return int(self.atomic_numbers.sum()) - self.charge

    @property
    def formula(self) -> str:
        """Hill-convention molecular formula, e.g. ``"C4H10"``, ``"H16O8"``."""
        counts: dict[str, int] = {}
        for symbol in self.symbols:
            counts[symbol] = counts.get(symbol, 0) + 1
        ordered = [s for s in ("C", "H") if s in counts]
        ordered += sorted(s for s in counts if s not in ("C", "H"))
        return "".join(
            f"{s}{counts[s]}" if counts[s] > 1 else s for s in ordered
        )

    def translated(self, shift: np.ndarray) -> "Molecule":
        """Return a copy translated by ``shift`` (Bohr)."""
        return Molecule(self.symbols, self.coords + np.asarray(shift), self.charge)

    def __add__(self, other: "Molecule") -> "Molecule":
        """Concatenate two geometries into one system."""
        return Molecule(
            self.symbols + other.symbols,
            np.vstack([self.coords, other.coords]),
            self.charge + other.charge,
        )


def nuclear_repulsion(molecule: Molecule) -> float:
    """Classical nuclear-nuclear repulsion energy in Hartree."""
    z = molecule.atomic_numbers.astype(np.float64)
    diff = molecule.coords[:, None, :] - molecule.coords[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=-1))
    zz = np.outer(z, z)
    iu = np.triu_indices(molecule.n_atoms, k=1)
    return float((zz[iu] / dist[iu]).sum())


def to_xyz(molecule: Molecule, comment: str = "") -> str:
    """Serialize a molecule in XYZ format (coordinates in Angstrom)."""
    if "\n" in comment:
        raise ConfigurationError("XYZ comment must be a single line")
    lines = [str(molecule.n_atoms), comment]
    for symbol, xyz in zip(molecule.symbols, molecule.coords / ANGSTROM):
        lines.append(f"{symbol:2s} {xyz[0]: .10f} {xyz[1]: .10f} {xyz[2]: .10f}")
    return "\n".join(lines) + "\n"


def from_xyz(text: str, charge: int = 0) -> Molecule:
    """Parse XYZ-format text (coordinates in Angstrom) into a molecule."""
    lines = [line for line in text.splitlines()]
    if len(lines) < 2:
        raise ConfigurationError("XYZ input needs a count line and a comment line")
    try:
        n_atoms = int(lines[0].split()[0])
    except (ValueError, IndexError):
        raise ConfigurationError(f"bad XYZ atom count line: {lines[0]!r}") from None
    body = [line for line in lines[2:] if line.strip()]
    if len(body) < n_atoms:
        raise ConfigurationError(
            f"XYZ declares {n_atoms} atoms but provides {len(body)} coordinate lines"
        )
    symbols: list[str] = []
    coords: list[list[float]] = []
    for line in body[:n_atoms]:
        parts = line.split()
        if len(parts) < 4:
            raise ConfigurationError(f"bad XYZ coordinate line: {line!r}")
        symbols.append(parts[0])
        try:
            coords.append([float(parts[1]), float(parts[2]), float(parts[3])])
        except ValueError:
            raise ConfigurationError(f"bad XYZ coordinate line: {line!r}") from None
    return Molecule(tuple(symbols), np.asarray(coords) * ANGSTROM, charge)


def _water_monomer() -> Molecule:
    """A single water molecule in its experimental geometry (Bohr)."""
    r_oh = 0.9572 * ANGSTROM
    theta = np.deg2rad(104.52)
    h1 = np.array([r_oh, 0.0, 0.0])
    h2 = np.array([r_oh * np.cos(theta), r_oh * np.sin(theta), 0.0])
    return Molecule(("O", "H", "H"), np.vstack([np.zeros(3), h1, h2]))


def water_cluster(n_monomers: int, seed: int = 0, spacing: float = 5.2) -> Molecule:
    """Build an ``n_monomers``-water cluster on a jittered cubic lattice.

    Monomers sit on the tightest cubic lattice that holds them, each with a
    random rigid rotation and a small positional jitter so no two clusters
    with different seeds are alike. ``spacing`` is the lattice constant in
    Bohr (default ~2.75 A, a liquid-water-like O-O distance).
    """
    check_positive("n_monomers", n_monomers)
    check_positive("spacing", spacing)
    rng = spawn_rng(seed, "water_cluster", n_monomers)
    side = int(np.ceil(n_monomers ** (1.0 / 3.0)))
    mono = _water_monomer()
    parts: list[Molecule] = []
    placed = 0
    for ix in range(side):
        for iy in range(side):
            for iz in range(side):
                if placed >= n_monomers:
                    break
                rot = _random_rotation(rng)
                jitter = rng.uniform(-0.35, 0.35, size=3)
                origin = spacing * np.array([ix, iy, iz], dtype=float) + jitter
                coords = mono.coords @ rot.T + origin
                parts.append(Molecule(mono.symbols, coords))
                placed += 1
    cluster = parts[0]
    for part in parts[1:]:
        cluster = cluster + part
    return cluster


def linear_alkane(n_carbons: int) -> Molecule:
    """An idealized all-anti alkane chain C_n H_{2n+2}.

    Quasi-one-dimensional systems maximize Schwarz screening: distant
    shell pairs vanish, producing the strongly skewed task-cost
    distributions the load-balancing study depends on.
    """
    check_positive("n_carbons", n_carbons)
    r_cc = 1.54 * ANGSTROM
    r_ch = 1.09 * ANGSTROM
    half = np.deg2rad(109.47 / 2.0)
    dx, dz = r_cc * np.sin(half), r_cc * np.cos(half)
    symbols: list[str] = []
    coords: list[np.ndarray] = []
    for i in range(n_carbons):
        c = np.array([i * dx, 0.0, (i % 2) * dz])
        symbols.append("C")
        coords.append(c)
        # Two out-of-plane hydrogens per carbon; chain-end carbons get an
        # extra axial hydrogen each to close the valence.
        ydir = 1.0 if i % 2 == 0 else -1.0
        for sy in (1.0, -1.0):
            h = c + np.array([0.0, sy * r_ch * np.sin(half), -ydir * r_ch * np.cos(half)])
            symbols.append("H")
            coords.append(h)
    # End-cap hydrogens along the chain axis.
    first_c = np.array([0.0, 0.0, 0.0])
    last_c = np.array([(n_carbons - 1) * dx, 0.0, ((n_carbons - 1) % 2) * dz])
    symbols.append("H")
    coords.append(first_c + np.array([-r_ch, 0.0, 0.0]))
    symbols.append("H")
    coords.append(last_c + np.array([r_ch, 0.0, 0.0]))
    return Molecule(tuple(symbols), np.vstack(coords))


def random_cluster(
    n_atoms: int,
    seed: int = 0,
    elements: tuple[str, ...] = ("H", "C", "N", "O"),
    min_dist: float = 1.8,
    box: float | None = None,
) -> Molecule:
    """Random cluster of ``n_atoms`` with a minimum inter-atomic distance.

    Atoms are drawn uniformly in a cube sized for roughly liquid-like
    density (or ``box`` Bohr if given) and resampled until all pairs are at
    least ``min_dist`` apart. Used by property tests to exercise integral
    and screening code on unstructured geometries.
    """
    check_positive("n_atoms", n_atoms)
    check_positive("min_dist", min_dist)
    rng = spawn_rng(seed, "random_cluster", n_atoms)
    side = box if box is not None else max(2.5 * min_dist, 1.6 * n_atoms ** (1.0 / 3.0) * min_dist)
    coords: list[np.ndarray] = []
    attempts = 0
    while len(coords) < n_atoms:
        candidate = rng.uniform(0.0, side, size=3)
        if all(np.linalg.norm(candidate - c) >= min_dist for c in coords):
            coords.append(candidate)
        attempts += 1
        if attempts > 2000 * n_atoms:
            # The box is too tight for the requested separation; grow it.
            side *= 1.3
            coords.clear()
            attempts = 0
    symbols = tuple(rng.choice(elements) for _ in range(n_atoms))
    return Molecule(symbols, np.vstack(coords))


def _random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Uniform random 3-D rotation matrix (QR of a Gaussian matrix)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q
