"""General (any angular momentum) integral engine via McMurchie-Davidson.

Drop-in replacement for the s-only :class:`~repro.chemistry.integrals.
IntegralEngine`, with the same interface contract (``pair_data`` /
``pair_batch`` / ``eri_pair_pair`` / ``eri_batch_matrix``), so screening,
task kernels, Fock builds, and every execution model work unchanged on
bases with p shells (STO-3G and friends).

Representation: a shell pair expands into a flat table of **Hermite
primitives** — entries ``(p, P, coefficient, (t, u, v))`` where the
coefficient folds contraction weights and the 3-D Hermite expansion
coefficient ``E_{tuv}`` (exponential prefactor included). The ERI between
two tables is then a pure double sum of Hermite Coulomb integrals:

    (ij|kl) = 2 pi^{5/2} sum_{m in bra} sum_{n in ket}
              c_m c_n (-1)^{|tuv_n|} R_{tuv_m + tuv_n}(alpha, P_m - Q_n)
              / (p_m q_n sqrt(p_m + q_n))

evaluated in vectorized chunks. For an s-only basis every table entry has
``tuv = (0,0,0)`` and this reduces exactly to the fast engine's formula
(tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chemistry.basis import BasisSet
from repro.chemistry.mcmurchie import (
    hermite_coulomb,
    hermite_expansion,
    kinetic_prim,
    nuclear_prim,
    overlap_prim,
)
from repro.chemistry.molecules import Molecule

_TWO_PI_POW = 2.0 * np.pi**2.5
#: Row-chunk size for the Hermite interaction product (memory bound:
#: ~n_R_arrays * chunk * n_cols * 8 bytes transient).
_CHUNK = 32


@dataclass(frozen=True)
class HermitePairData:
    """Hermite-primitive table of one shell pair."""

    p: np.ndarray
    center: np.ndarray
    coef: np.ndarray
    tuv: np.ndarray  # (n, 3) int

    @property
    def nprim(self) -> int:
        return int(self.p.size)


@dataclass(frozen=True)
class HermiteBatch:
    """Concatenated Hermite tables for a list of shell pairs."""

    p: np.ndarray
    center: np.ndarray
    coef: np.ndarray
    tuv: np.ndarray
    seg: np.ndarray
    n_pairs: int

    @property
    def nprim(self) -> int:
        return int(self.p.size)


class GeneralIntegralEngine:
    """Caching MD integral evaluator (any Cartesian angular momentum).

    Args:
        basis: the basis set.
        prim_cutoff: Hermite-primitive entries with ``|coef|`` below this
            are dropped (0.0 keeps everything).
    """

    def __init__(self, basis: BasisSet, prim_cutoff: float = 0.0) -> None:
        self.basis = basis
        self.prim_cutoff = float(prim_cutoff)
        self._pair_cache: dict[tuple[int, int], HermitePairData] = {}

    # ------------------------------------------------------------------
    def pair_data(self, i: int, j: int) -> HermitePairData:
        """Hermite table for shell pair ``(i, j)`` (symmetric, cached)."""
        key = (i, j) if i <= j else (j, i)
        cached = self._pair_cache.get(key)
        if cached is not None:
            return cached
        sh_i = self.basis.shells[key[0]]
        sh_j = self.basis.shells[key[1]]
        ps: list[float] = []
        centers: list[np.ndarray] = []
        coefs: list[float] = []
        tuvs: list[tuple[int, int, int]] = []
        for a, ca in zip(sh_i.exponents, sh_i.coefficients):
            for b, cb in zip(sh_j.exponents, sh_j.coefficients):
                p = a + b
                center = (a * sh_i.center + b * sh_j.center) / p
                expansion = hermite_expansion(
                    sh_i.powers, sh_j.powers, float(a), float(b), sh_i.center, sh_j.center
                )
                for tuv, e_val in expansion.items():
                    coef = ca * cb * e_val
                    if self.prim_cutoff > 0.0 and abs(coef) < self.prim_cutoff:
                        continue
                    ps.append(p)
                    centers.append(center)
                    coefs.append(coef)
                    tuvs.append(tuv)
        if not ps:
            # Keep at least a null entry so shapes stay sane.
            data = HermitePairData(
                np.ones(1), np.zeros((1, 3)), np.zeros(1), np.zeros((1, 3), dtype=np.int64)
            )
        else:
            data = HermitePairData(
                np.array(ps),
                np.vstack(centers),
                np.array(coefs),
                np.array(tuvs, dtype=np.int64),
            )
        self._pair_cache[key] = data
        return data

    def pair_batch(self, pairs: list[tuple[int, int]]) -> HermiteBatch:
        if not pairs:
            return HermiteBatch(
                np.empty(0),
                np.empty((0, 3)),
                np.empty(0),
                np.empty((0, 3), dtype=np.int64),
                np.empty(0, dtype=np.int64),
                0,
            )
        tables = [self.pair_data(i, j) for i, j in pairs]
        return HermiteBatch(
            np.concatenate([t.p for t in tables]),
            np.vstack([t.center for t in tables]),
            np.concatenate([t.coef for t in tables]),
            np.vstack([t.tuv for t in tables]),
            np.concatenate(
                [np.full(t.nprim, idx, dtype=np.int64) for idx, t in enumerate(tables)]
            ),
            len(pairs),
        )

    # ------------------------------------------------------------------
    def eri_batch_matrix(self, bra: HermiteBatch, ket: HermiteBatch) -> np.ndarray:
        """``(bra.n_pairs, ket.n_pairs)`` contracted ERIs."""
        out = np.zeros((bra.n_pairs, ket.n_pairs))
        if bra.nprim == 0 or ket.nprim == 0:
            return out
        order = int(bra.tuv.sum(axis=1).max() + ket.tuv.sum(axis=1).max())
        ket_sign = np.where(ket.tuv.sum(axis=1) % 2 == 1, -1.0, 1.0)
        q = ket.p
        for lo in range(0, bra.nprim, _CHUNK):
            hi = min(lo + _CHUNK, bra.nprim)
            p = bra.p[lo:hi, None]
            pq = p * q[None, :]
            alpha = pq / (p + q[None, :])
            sep = bra.center[lo:hi, None, :] - ket.center[None, :, :]
            r_table = hermite_coulomb(order, alpha, sep)
            t_idx = bra.tuv[lo:hi, 0][:, None] + ket.tuv[:, 0][None, :]
            u_idx = bra.tuv[lo:hi, 1][:, None] + ket.tuv[:, 1][None, :]
            v_idx = bra.tuv[lo:hi, 2][:, None] + ket.tuv[:, 2][None, :]
            vals = np.zeros_like(alpha)
            for (t, u, v), r_vals in r_table.items():
                mask = (t_idx == t) & (u_idx == u) & (v_idx == v)
                if mask.any():
                    vals[mask] = r_vals[mask]
            vals *= (
                _TWO_PI_POW
                / (pq * np.sqrt(p + q[None, :]))
                * bra.coef[lo:hi, None]
                * (ket.coef * ket_sign)[None, :]
            )
            col_sum = np.zeros((hi - lo, ket.n_pairs))
            np.add.at(col_sum.T, ket.seg, vals.T)
            np.add.at(out, bra.seg[lo:hi], col_sum)
        return out

    def eri_pair_pair(self, bra: HermitePairData, ket: HermitePairData) -> float:
        """Single contracted ERI from two Hermite tables."""
        bra_batch = HermiteBatch(
            bra.p, bra.center, bra.coef, bra.tuv, np.zeros(bra.nprim, dtype=np.int64), 1
        )
        ket_batch = HermiteBatch(
            ket.p, ket.center, ket.coef, ket.tuv, np.zeros(ket.nprim, dtype=np.int64), 1
        )
        return float(self.eri_batch_matrix(bra_batch, ket_batch)[0, 0])

    def eri_block(
        self, bra_pairs: list[tuple[int, int]], ket_pairs: list[tuple[int, int]]
    ) -> np.ndarray:
        return self.eri_batch_matrix(self.pair_batch(bra_pairs), self.pair_batch(ket_pairs))


# ----------------------------------------------------------------------
# General one-electron builders (scalar contraction loops; these matrices
# are built once per problem, not per task).
# ----------------------------------------------------------------------
def _contracted(basis: BasisSet, i: int, j: int, prim_fn) -> float:
    sh_i = basis.shells[i]
    sh_j = basis.shells[j]
    total = 0.0
    for a, ca in zip(sh_i.exponents, sh_i.coefficients):
        for b, cb in zip(sh_j.exponents, sh_j.coefficients):
            total += ca * cb * prim_fn(
                sh_i.powers, sh_j.powers, float(a), float(b), sh_i.center, sh_j.center
            )
    return total


def overlap_matrix_general(basis: BasisSet) -> np.ndarray:
    n = basis.n_basis
    s = np.empty((n, n))
    for i in range(n):
        for j in range(i, n):
            s[i, j] = s[j, i] = _contracted(basis, i, j, overlap_prim)
    return s


def kinetic_matrix_general(basis: BasisSet) -> np.ndarray:
    n = basis.n_basis
    t = np.empty((n, n))
    for i in range(n):
        for j in range(i, n):
            t[i, j] = t[j, i] = _contracted(basis, i, j, kinetic_prim)
    return t


def nuclear_attraction_matrix_general(
    basis: BasisSet, molecule: Molecule | None = None
) -> np.ndarray:
    mol = molecule if molecule is not None else basis.molecule
    charges = mol.atomic_numbers.astype(np.float64)
    n = basis.n_basis
    v = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            total = 0.0
            for z, rc in zip(charges, mol.coords):
                total -= z * _contracted(
                    basis,
                    i,
                    j,
                    lambda la, lb, a, b, ra, rb, rc=rc: nuclear_prim(
                        la, lb, a, b, ra, rb, rc
                    ),
                )
            v[i, j] = v[j, i] = total
    return v


def make_engine(basis: BasisSet, prim_cutoff: float = 0.0):
    """The right engine for a basis: fast s-only path when possible."""
    from repro.chemistry.integrals import IntegralEngine

    if basis.max_angular_momentum == 0:
        return IntegralEngine(basis, prim_cutoff)
    return GeneralIntegralEngine(basis, prim_cutoff)
