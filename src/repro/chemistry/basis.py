"""Contracted Gaussian shells, the built-in basis, and shell-block tilings.

The library restricts itself to **s-type** shells so that every integral has
a closed form (see :mod:`repro.chemistry.integrals`); variety in contraction
depth (1-6 primitives per shell) supplies the per-task cost heterogeneity
the scheduling study needs. Each contracted shell carries exactly one basis
function, so ``n_basis == n_shells`` and block indexing is uniform.

The built-in basis is an s-only analogue of a split-valence set: heavier
atoms get deeply contracted core shells (expensive in integral kernels) plus
diffuse valence shells; hydrogen gets a light two-shell description.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chemistry.molecules import Molecule
from repro.util import ConfigurationError, check_positive

#: Built-in s-only basis: element -> list of shells, each shell a list of
#: (exponent, contraction-coefficient) primitive pairs. Exponents follow the
#: even-tempered progressions of standard minimal/split-valence sets.
DEFAULT_BASIS: dict[str, list[list[tuple[float, float]]]] = {
    "H": [
        [(18.731137, 0.0334946), (2.8253937, 0.2347269), (0.6401217, 0.8137573)],
        [(0.1612778, 1.0)],
    ],
    "C": [
        [
            (3047.5249, 0.0018347),
            (457.36951, 0.0140373),
            (103.94869, 0.0688426),
            (29.210155, 0.2321844),
            (9.2866630, 0.4679413),
            (3.1639270, 0.3623120),
        ],
        [(7.8682724, -0.1193324), (1.8812885, -0.1608542), (0.5442493, 1.1434564)],
        [(0.1687144, 1.0)],
    ],
    "N": [
        [
            (4173.5110, 0.0018348),
            (627.45790, 0.0139950),
            (142.90210, 0.0685870),
            (40.234330, 0.2322410),
            (12.820210, 0.4690700),
            (4.3904370, 0.3604550),
        ],
        [(11.626358, -0.1149610), (2.7162800, -0.1691180), (0.7722180, 1.1458520)],
        [(0.2120313, 1.0)],
    ],
    "O": [
        [
            (5484.6717, 0.0018311),
            (825.23495, 0.0139501),
            (188.04696, 0.0684451),
            (52.964500, 0.2327143),
            (16.897570, 0.4701930),
            (5.7996353, 0.3585209),
        ],
        [(15.539616, -0.1107775), (3.5999336, -0.1480263), (1.0137618, 1.1307670)],
        [(0.2700058, 1.0)],
    ],
}


@dataclass(frozen=True)
class Shell:
    """A contracted Cartesian Gaussian shell: one basis function.

    Attributes:
        center: ``(3,)`` position in Bohr.
        exponents: ``(nprim,)`` primitive exponents.
        coefficients: ``(nprim,)`` contraction coefficients with the
            per-primitive normalization already folded in, then rescaled
            so the contracted function has unit self-overlap.
        atom_index: index of the owning atom in the molecule.
        powers: Cartesian angular momentum ``(i, j, k)`` — ``(0, 0, 0)``
            for s, ``(1, 0, 0)`` for p_x, etc. Each Cartesian component is
            its own shell, so ``n_basis == n_shells`` always holds.
    """

    center: np.ndarray
    exponents: np.ndarray
    coefficients: np.ndarray
    atom_index: int
    powers: tuple[int, int, int] = (0, 0, 0)

    def __post_init__(self) -> None:
        if len(self.powers) != 3 or any(p < 0 for p in self.powers):
            raise ConfigurationError(f"invalid Cartesian powers {self.powers!r}")
        object.__setattr__(self, "powers", tuple(int(p) for p in self.powers))
        center = np.asarray(self.center, dtype=np.float64)
        exps = np.asarray(self.exponents, dtype=np.float64)
        coefs = np.asarray(self.coefficients, dtype=np.float64)
        if center.shape != (3,):
            raise ConfigurationError(f"shell center must be (3,), got {center.shape}")
        if exps.shape != coefs.shape or exps.ndim != 1 or exps.size == 0:
            raise ConfigurationError("exponents/coefficients must be equal-length 1-D")
        if np.any(exps <= 0):
            raise ConfigurationError("all primitive exponents must be positive")
        for arr in (center, exps, coefs):
            arr.setflags(write=False)
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "exponents", exps)
        object.__setattr__(self, "coefficients", coefs)

    @property
    def nprim(self) -> int:
        return int(self.exponents.size)

    @property
    def angular_momentum(self) -> int:
        return sum(self.powers)


def _normalize_shell(
    center: np.ndarray,
    prims: list[tuple[float, float]],
    atom: int,
    powers: tuple[int, int, int] = (0, 0, 0),
) -> Shell:
    """Build a :class:`Shell` with normalized contraction coefficients."""
    exps = np.array([p[0] for p in prims], dtype=np.float64)
    raw = np.array([p[1] for p in prims], dtype=np.float64)
    if powers == (0, 0, 0):
        # s functions: closed forms (fast path, no Hermite machinery).
        coefs = raw * (2.0 * exps / np.pi) ** 0.75
        p_sum = exps[:, None] + exps[None, :]
        s_self = (coefs[:, None] * coefs[None, :] * (np.pi / p_sum) ** 1.5).sum()
    else:
        from repro.chemistry.mcmurchie import overlap_prim, primitive_norm

        coefs = raw * np.array([primitive_norm(powers, a) for a in exps])
        origin = np.zeros(3)
        s_self = 0.0
        for ca, a in zip(coefs, exps):
            for cb, b in zip(coefs, exps):
                s_self += ca * cb * overlap_prim(powers, powers, a, b, origin, origin)
    coefs = coefs / np.sqrt(s_self)
    return Shell(center, exps, coefs, atom, powers)


@dataclass(frozen=True)
class BasisSet:
    """All shells of a molecule, in atom order.

    ``shells[i]`` is basis function *i*; ``n_basis == len(shells)``.
    """

    shells: tuple[Shell, ...]
    molecule: Molecule

    @property
    def n_basis(self) -> int:
        return len(self.shells)

    @property
    def centers(self) -> np.ndarray:
        """``(n_basis, 3)`` array of shell centers."""
        return np.vstack([sh.center for sh in self.shells])

    @property
    def primitive_counts(self) -> np.ndarray:
        """``(n_basis,)`` number of primitives per shell."""
        return np.array([sh.nprim for sh in self.shells], dtype=np.int64)

    @property
    def max_angular_momentum(self) -> int:
        """Largest total Cartesian power (0 for an s-only basis)."""
        return max((sh.angular_momentum for sh in self.shells), default=0)


def build_basis(molecule: Molecule, basis: dict[str, list[list[tuple[float, float]]]] | None = None) -> BasisSet:
    """Construct the basis set for a molecule.

    Args:
        molecule: the geometry.
        basis: element -> shell definitions; defaults to
            :data:`DEFAULT_BASIS`.
    """
    table = DEFAULT_BASIS if basis is None else basis
    shells: list[Shell] = []
    for atom_idx, symbol in enumerate(molecule.symbols):
        if symbol not in table:
            raise ConfigurationError(f"no basis for element {symbol!r}")
        for prims in table[symbol]:
            shells.append(_normalize_shell(molecule.coords[atom_idx], prims, atom_idx))
    return BasisSet(tuple(shells), molecule)


@dataclass(frozen=True)
class BlockStructure:
    """A tiling of the basis-function index range into contiguous blocks.

    Blocks are the granularity unit of the whole study: distributed arrays
    are blocked by them, tasks are quartets of them, and sweeping the block
    size is how experiment E5 trades task count against per-task overhead.

    Attributes:
        offsets: ``(n_blocks + 1,)`` block boundary indices;
            block *b* covers ``[offsets[b], offsets[b+1])``.
    """

    offsets: np.ndarray

    def __post_init__(self) -> None:
        off = np.asarray(self.offsets, dtype=np.int64)
        if off.ndim != 1 or off.size < 2:
            raise ConfigurationError("offsets must be 1-D with >= 2 entries")
        if off[0] != 0 or np.any(np.diff(off) <= 0):
            raise ConfigurationError("offsets must start at 0 and strictly increase")
        off.setflags(write=False)
        object.__setattr__(self, "offsets", off)

    @classmethod
    def uniform(cls, n_basis: int, block_size: int) -> "BlockStructure":
        """Tile ``n_basis`` functions into blocks of ``block_size`` (last may be short)."""
        check_positive("n_basis", n_basis)
        check_positive("block_size", block_size)
        bounds = list(range(0, n_basis, block_size)) + [n_basis]
        return cls(np.array(sorted(set(bounds)), dtype=np.int64))

    @classmethod
    def by_atom(cls, basis: BasisSet) -> "BlockStructure":
        """One block per atom (shells are stored in atom order)."""
        bounds = [0]
        for i in range(1, basis.n_basis):
            if basis.shells[i].atom_index != basis.shells[i - 1].atom_index:
                bounds.append(i)
        bounds.append(basis.n_basis)
        return cls(np.array(bounds, dtype=np.int64))

    @property
    def n_blocks(self) -> int:
        return int(self.offsets.size - 1)

    @property
    def n_basis(self) -> int:
        return int(self.offsets[-1])

    def block_range(self, b: int) -> tuple[int, int]:
        """Half-open index range ``(lo, hi)`` of block ``b``."""
        return int(self.offsets[b]), int(self.offsets[b + 1])

    def block_size(self, b: int) -> int:
        lo, hi = self.block_range(b)
        return hi - lo

    def block_of(self, index: int) -> int:
        """The block containing basis-function ``index``."""
        if not 0 <= index < self.n_basis:
            raise ConfigurationError(f"index {index} out of range [0, {self.n_basis})")
        return int(np.searchsorted(self.offsets, index, side="right") - 1)

    def sizes(self) -> np.ndarray:
        """``(n_blocks,)`` array of block sizes."""
        return np.diff(self.offsets)
