"""Standard basis sets with angular momentum: STO-3G.

STO-3G data (EMSL / original Hehre-Stewart-Pople fits): every first-row
atom shares the same contraction-coefficient pattern; only the exponents
scale. The 2sp shells share exponents between the 2s and 2p contractions,
as published.

Cartesian p components expand to three shells (p_x, p_y, p_z), keeping
the library-wide invariant ``n_basis == n_shells``.
"""

from __future__ import annotations

from repro.chemistry.basis import BasisSet, Shell, _normalize_shell
from repro.chemistry.molecules import Molecule
from repro.util import ConfigurationError

_S_COEFS_1S = (0.15432897, 0.53532814, 0.44463454)
_S_COEFS_2S = (-0.09996723, 0.39951283, 0.70011547)
_P_COEFS_2P = (0.15591627, 0.60768372, 0.39195739)

#: element -> list of (shell_type, exponents) with shell_type in
#: {"1s", "2sp"}; coefficients follow the universal STO-3G patterns.
_STO3G_EXPONENTS: dict[str, list[tuple[str, tuple[float, float, float]]]] = {
    "H": [("1s", (3.42525091, 0.62391373, 0.16885540))],
    "C": [
        ("1s", (71.6168370, 13.0450960, 3.5305122)),
        ("2sp", (2.9412494, 0.6834831, 0.2222899)),
    ],
    "N": [
        ("1s", (99.1061690, 18.0523120, 4.8856602)),
        ("2sp", (3.7804559, 0.8784966, 0.2857144)),
    ],
    "O": [
        ("1s", (130.7093200, 23.8088610, 6.4436083)),
        ("2sp", (5.0331513, 1.1695961, 0.3803890)),
    ],
}

_P_POWERS = ((1, 0, 0), (0, 1, 0), (0, 0, 1))


def build_basis_sto3g(molecule: Molecule) -> BasisSet:
    """Construct the STO-3G basis (s and p shells) for a molecule."""
    shells: list[Shell] = []
    for atom_idx, symbol in enumerate(molecule.symbols):
        if symbol not in _STO3G_EXPONENTS:
            raise ConfigurationError(f"no STO-3G data for element {symbol!r}")
        center = molecule.coords[atom_idx]
        for shell_type, exponents in _STO3G_EXPONENTS[symbol]:
            if shell_type == "1s":
                prims = list(zip(exponents, _S_COEFS_1S))
                shells.append(_normalize_shell(center, prims, atom_idx))
            else:  # 2sp: one s shell + three Cartesian p shells.
                s_prims = list(zip(exponents, _S_COEFS_2S))
                shells.append(_normalize_shell(center, s_prims, atom_idx))
                p_prims = list(zip(exponents, _P_COEFS_2P))
                for powers in _P_POWERS:
                    shells.append(
                        _normalize_shell(center, p_prims, atom_idx, powers)
                    )
    return BasisSet(tuple(shells), molecule)
